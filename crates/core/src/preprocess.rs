//! Pre-processing: converting the edge-array input into adjacency
//! lists and grids, with the three construction strategies of §3.2 and
//! wall-clock accounting for the paper's end-to-end view.

use std::time::Instant;

use egraph_parallel::ops::parallel_init;
use egraph_parallel::{
    broadcast_current, current_num_threads, current_worker_index, parallel_for, DEFAULT_GRAIN,
};

use crate::layout::ccsr::{encode_vertex, encoded_len};
use crate::layout::{Adjacency, AdjacencyList, CcsrAdjacency, CcsrList, EdgeDirection, Grid};
use crate::types::{EdgeList, EdgeRecord};
use crate::util::UnsyncSlice;

/// Below this many edges the dynamic grouping paths run serially; the
/// per-worker block machinery is not worth its setup cost on tiny
/// inputs, and the serial path produces the identical output.
const DYNAMIC_SERIAL_CUTOFF: usize = 4 * DEFAULT_GRAIN;

/// A raw pointer that may cross thread boundaries. Every dereference
/// site carries its own disjointness argument.
struct SendPtr<T>(*mut T);

// SAFETY: the wrapper only moves the pointer between threads; the
// `unsafe` blocks that dereference it guarantee disjoint access.
unsafe impl<T> Send for SendPtr<T> {}
// SAFETY: same argument.
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    #[inline]
    fn get(&self) -> *mut T {
        self.0
    }
}

/// How per-vertex (or per-cell) edge arrays are constructed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Grow per-vertex arrays while scanning the input. No sorting, but
    /// reallocations and poor locality; fully overlappable with
    /// loading (§3.4).
    Dynamic,
    /// Two passes: count degrees, then scatter to final offsets.
    /// Pass-optimal but cache-hostile; the counting pass can overlap
    /// with loading.
    CountSort,
    /// Parallel 8-bit-digit radix sort; sequential bucket writes give
    /// the best locality (Table 2) but nothing overlaps with loading.
    RadixSort,
}

impl Strategy {
    /// All strategies, in the paper's presentation order.
    pub const ALL: [Strategy; 3] = [Strategy::Dynamic, Strategy::CountSort, Strategy::RadixSort];

    /// Display name used in experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::Dynamic => "dynamic",
            Strategy::CountSort => "count-sort",
            Strategy::RadixSort => "radix-sort",
        }
    }
}

/// Wall-clock cost of one pre-processing run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PreprocessStats {
    /// The strategy that was used.
    pub strategy: Strategy,
    /// Total seconds spent building the layout.
    pub seconds: f64,
}

/// Builder for adjacency-list layouts.
///
/// # Examples
///
/// ```
/// use egraph_core::preprocess::{CsrBuilder, Strategy};
/// use egraph_core::layout::EdgeDirection;
/// use egraph_core::types::{Edge, EdgeList};
///
/// let edges = EdgeList::new(3, vec![Edge::new(0, 1), Edge::new(0, 2)]).unwrap();
/// let adj = CsrBuilder::new(Strategy::RadixSort, EdgeDirection::Out).build(&edges);
/// assert_eq!(adj.out().degree(0), 2);
/// ```
#[derive(Debug, Clone)]
pub struct CsrBuilder {
    strategy: Strategy,
    direction: EdgeDirection,
    sort_neighbors: bool,
}

impl CsrBuilder {
    /// Creates a builder with the given strategy and edge direction.
    pub fn new(strategy: Strategy, direction: EdgeDirection) -> Self {
        Self {
            strategy,
            direction,
            sort_neighbors: false,
        }
    }

    /// Additionally sorts each per-vertex array by neighbor id (the
    /// "adj. sorted" variant of §5).
    pub fn sort_neighbors(mut self, yes: bool) -> Self {
        self.sort_neighbors = yes;
        self
    }

    /// Builds the layout.
    pub fn build<E: EdgeRecord>(&self, input: &EdgeList<E>) -> AdjacencyList<E> {
        self.build_timed(input).0
    }

    /// Builds the layout, returning the pre-processing cost alongside.
    pub fn build_timed<E: EdgeRecord>(
        &self,
        input: &EdgeList<E>,
    ) -> (AdjacencyList<E>, PreprocessStats) {
        let _span = egraph_parallel::timeline::span(
            egraph_parallel::timeline::SpanKind::Phase,
            "preprocess_csr",
            self.strategy.name(),
        );
        let start = Instant::now();
        let out = match self.direction {
            EdgeDirection::Out | EdgeDirection::Both => {
                Some(build_one_direction(input, self.strategy, false))
            }
            EdgeDirection::In => None,
        };
        let inc = match self.direction {
            EdgeDirection::In | EdgeDirection::Both => {
                Some(build_one_direction(input, self.strategy, true))
            }
            EdgeDirection::Out => None,
        };
        let mut list = AdjacencyList::new(out, inc);
        if self.sort_neighbors {
            if let Some(adj) = list.out_mut() {
                adj.sort_neighbor_arrays();
            }
            if let Some(adj) = list.incoming_mut() {
                adj.sort_neighbor_arrays();
            }
        }
        let stats = PreprocessStats {
            strategy: self.strategy,
            seconds: start.elapsed().as_secs_f64(),
        };
        (list, stats)
    }
}

/// Builds one direction of adjacency (`by_dst = true` groups by
/// destination, producing an in-adjacency).
pub fn build_one_direction<E: EdgeRecord>(
    input: &EdgeList<E>,
    strategy: Strategy,
    by_dst: bool,
) -> Adjacency<E> {
    let nv = input.num_vertices();
    let key = move |e: &E| -> u64 {
        if by_dst {
            e.dst() as u64
        } else {
            e.src() as u64
        }
    };
    match strategy {
        Strategy::Dynamic => {
            let lists = dynamic_group(input.edges(), nv, key);
            Adjacency::from_per_vertex(nv, lists, by_dst)
        }
        Strategy::CountSort => {
            let sorted = egraph_sort::count_sort_by_key(input.edges(), nv.max(1), key);
            let mut offsets = sorted.offsets;
            offsets.truncate(nv + 1);
            if nv == 0 {
                offsets = vec![0];
            }
            Adjacency::from_csr(nv, offsets, sorted.sorted, by_dst)
        }
        Strategy::RadixSort => {
            let mut edges = input.edges().to_vec();
            let bits = egraph_sort::key_bits(nv);
            egraph_sort::radix_sort_by_key(&mut edges, bits, key);
            let offsets = offsets_from_sorted(&edges, nv, key);
            Adjacency::from_csr(nv, offsets, edges, by_dst)
        }
    }
}

/// Groups edges into growable per-vertex vectors — the "dynamically
/// allocating and resizing" technique.
///
/// Workers never contend on a vertex: each worker scans a contiguous
/// input block into **private** shard buffers (a shard is a contiguous
/// vertex range), then a parallel merge walks each shard's buffers in
/// ascending worker order, so no locks or atomics touch the per-vertex
/// lists. Because blocks are contiguous and merged in worker order,
/// every vertex sees its edges in global input order — the result is
/// identical at any thread count (and to the serial path).
fn dynamic_group<E: EdgeRecord>(
    edges: &[E],
    nv: usize,
    key: impl Fn(&E) -> u64 + Sync,
) -> Vec<Vec<E>> {
    if nv == 0 {
        return Vec::new();
    }
    let workers = current_num_threads();
    if edges.len() < DYNAMIC_SERIAL_CUTOFF || workers == 1 || current_worker_index().is_some() {
        let mut lists: Vec<Vec<E>> = (0..nv).map(|_| Vec::new()).collect();
        for e in edges {
            lists[key(e) as usize].push(*e);
        }
        return lists;
    }

    // Phase 1: each worker scans its contiguous block into private
    // per-shard buffers. A few shards per worker keeps the later merge
    // load-balanced without allocating `workers * nv` vectors.
    let num_shards = (4 * workers).min(nv);
    let shard_size = nv.div_ceil(num_shards);
    let block = edges.len().div_ceil(workers);
    let mut sharded: Vec<Vec<Vec<E>>> = (0..workers)
        .map(|_| (0..num_shards).map(|_| Vec::new()).collect())
        .collect();
    {
        let rows = SendPtr(sharded.as_mut_ptr());
        broadcast_current(&|worker| {
            let w = worker.index();
            let start = (w * block).min(edges.len());
            let end = ((w + 1) * block).min(edges.len());
            // SAFETY: each worker index occurs exactly once per
            // top-level region, so row `w` has a single writer.
            let row = unsafe { &mut *rows.get().add(w) };
            for e in &edges[start..end] {
                row[key(e) as usize / shard_size].push(*e);
            }
        });
    }

    // Phase 2: merge shards in parallel. Each shard owns a disjoint
    // vertex range, so per-vertex pushes need no synchronization.
    let mut lists: Vec<Vec<E>> = (0..nv).map(|_| Vec::new()).collect();
    {
        let out = UnsyncSlice::new(&mut lists);
        let sharded = &sharded;
        parallel_for(0..num_shards, 1, |shards| {
            for s in shards {
                for row in sharded {
                    for e in &row[s] {
                        // SAFETY: `key(e) / shard_size == s`, and shard
                        // `s` is processed by exactly one loop
                        // iteration across all workers.
                        unsafe { out.update(key(e) as usize, |list| list.push(*e)) };
                    }
                }
            }
        });
    }
    lists
}

/// Groups edges into flat cell-major storage (offsets + edge array)
/// with growable per-cell buffers — the grid flavor of the dynamic
/// strategy.
///
/// Same shape as [`dynamic_group`]: per-worker private buffers over
/// contiguous input blocks, then an atomics-free parallel scatter that
/// concatenates each cell's buffers in ascending worker order into its
/// exclusive output range. Output is identical at any thread count.
fn dynamic_cells<E: EdgeRecord>(
    edges: &[E],
    num_cells: usize,
    cell_of: impl Fn(&E) -> usize + Sync,
    map_edge: impl Fn(&E) -> E + Sync,
) -> (Vec<u64>, Vec<E>) {
    let workers = current_num_threads();
    if edges.len() < DYNAMIC_SERIAL_CUTOFF || workers == 1 || current_worker_index().is_some() {
        let mut cells: Vec<Vec<E>> = (0..num_cells).map(|_| Vec::new()).collect();
        for e in edges {
            cells[cell_of(e)].push(map_edge(e));
        }
        let mut offsets = Vec::with_capacity(num_cells + 1);
        let mut out = Vec::with_capacity(edges.len());
        offsets.push(0u64);
        for cell in cells {
            out.extend_from_slice(&cell);
            offsets.push(out.len() as u64);
        }
        return (offsets, out);
    }

    // Phase 1: per-worker private cell buffers over contiguous blocks.
    let block = edges.len().div_ceil(workers);
    let mut rows: Vec<Vec<Vec<E>>> = (0..workers)
        .map(|_| (0..num_cells).map(|_| Vec::new()).collect())
        .collect();
    {
        let rows_ptr = SendPtr(rows.as_mut_ptr());
        broadcast_current(&|worker| {
            let w = worker.index();
            let start = (w * block).min(edges.len());
            let end = ((w + 1) * block).min(edges.len());
            // SAFETY: each worker index occurs exactly once per
            // top-level region, so row `w` has a single writer.
            let row = unsafe { &mut *rows_ptr.get().add(w) };
            for e in &edges[start..end] {
                row[cell_of(e)].push(map_edge(e));
            }
        });
    }

    // Per-cell totals summed over workers, then an exclusive prefix
    // sum hands every cell a disjoint output range.
    let totals = parallel_init(num_cells, 1024, |c| {
        rows.iter().map(|row| row[c].len() as u64).sum::<u64>()
    });
    let mut offsets = Vec::with_capacity(num_cells + 1);
    offsets.push(0u64);
    for t in totals {
        offsets.push(offsets.last().copied().unwrap_or(0) + t);
    }

    // Phase 2: scatter each cell's buffers, worker-major, into its
    // exclusive range of the output.
    let total = *offsets.last().unwrap() as usize;
    let mut out: Vec<E> = Vec::with_capacity(total);
    {
        let out_ptr = SendPtr(out.as_mut_ptr());
        let rows = &rows;
        let offsets = &offsets;
        parallel_for(0..num_cells, 256, |cells| {
            for c in cells {
                let mut cursor = offsets[c] as usize;
                for row in rows {
                    let buf = &row[c];
                    // SAFETY: cell `c` is handled by exactly one loop
                    // iteration, and `offsets[c]..offsets[c + 1]` is
                    // its exclusive slice of the reserved output.
                    unsafe {
                        std::ptr::copy_nonoverlapping(
                            buf.as_ptr(),
                            out_ptr.get().add(cursor),
                            buf.len(),
                        );
                    }
                    cursor += buf.len();
                }
                debug_assert_eq!(cursor, offsets[c + 1] as usize);
            }
        });
    }
    // SAFETY: the scatter ranges tile `0..total` exactly.
    unsafe { out.set_len(total) };
    (offsets, out)
}

/// Computes the CSR offset table of an already-sorted edge array by
/// binary-searching each vertex boundary (cache-friendly and parallel,
/// unlike a histogram pass).
fn offsets_from_sorted<E: EdgeRecord>(
    edges: &[E],
    nv: usize,
    key: impl Fn(&E) -> u64 + Sync,
) -> Vec<u64> {
    parallel_init(nv + 1, 4096, |v| {
        edges.partition_point(|e| key(e) < v as u64) as u64
    })
}

/// Builder for grid layouts.
///
/// # Examples
///
/// ```
/// use egraph_core::preprocess::{GridBuilder, Strategy};
/// use egraph_core::types::{Edge, EdgeList};
///
/// let edges = EdgeList::new(4, vec![Edge::new(0, 3), Edge::new(2, 1)]).unwrap();
/// let grid = GridBuilder::new(Strategy::RadixSort).side(2).build(&edges);
/// assert_eq!(grid.cell(0, 1), &[Edge::new(0, 3)]);
/// assert_eq!(grid.cell(1, 0), &[Edge::new(2, 1)]);
/// ```
#[derive(Debug, Clone)]
pub struct GridBuilder {
    strategy: Strategy,
    side: usize,
    transposed: bool,
}

impl GridBuilder {
    /// Creates a builder with the default 256×256 grid.
    pub fn new(strategy: Strategy) -> Self {
        Self {
            strategy,
            side: crate::layout::grid::DEFAULT_GRID_SIDE,
            transposed: false,
        }
    }

    /// Sets the grid side P (the grid gets P×P cells).
    pub fn side(mut self, side: usize) -> Self {
        assert!(side > 0, "grid side must be positive");
        self.side = side;
        self
    }

    /// Stores every edge reversed. A transposed grid makes row
    /// iteration exclusive over the *receiving* vertex of the original
    /// graph, which is how pull-mode grid computation runs without
    /// locks (§6.1.2).
    pub fn transposed(mut self, yes: bool) -> Self {
        self.transposed = yes;
        self
    }

    /// Builds the grid.
    pub fn build<E: EdgeRecord>(&self, input: &EdgeList<E>) -> Grid<E> {
        self.build_timed(input).0
    }

    /// Builds the grid, returning the pre-processing cost alongside.
    pub fn build_timed<E: EdgeRecord>(&self, input: &EdgeList<E>) -> (Grid<E>, PreprocessStats) {
        let _span = egraph_parallel::timeline::span(
            egraph_parallel::timeline::SpanKind::Phase,
            "preprocess_grid",
            self.strategy.name(),
        );
        let start = Instant::now();
        let nv = input.num_vertices();
        let side = self.side;
        let range_len = nv.div_ceil(side).max(1);
        let num_cells = side * side;
        let transposed = self.transposed;
        let cell_key = move |e: &E| -> u64 {
            let (src, dst) = if transposed {
                (e.dst(), e.src())
            } else {
                (e.src(), e.dst())
            };
            (src as usize / range_len * side + dst as usize / range_len) as u64
        };
        let map_edge = move |e: &E| -> E {
            if transposed {
                e.reversed()
            } else {
                *e
            }
        };

        let grid = match self.strategy {
            Strategy::RadixSort => {
                let mut edges: Vec<E> = input.edges().iter().map(map_edge).collect();
                let bits = egraph_sort::key_bits(num_cells);
                // After mapping, the key no longer needs transposition.
                let key = move |e: &E| -> u64 {
                    (e.src() as usize / range_len * side + e.dst() as usize / range_len) as u64
                };
                egraph_sort::radix_sort_by_key(&mut edges, bits, key);
                let offsets = parallel_init(num_cells + 1, 1024, |c| {
                    edges.partition_point(|e| key(e) < c as u64) as u64
                });
                Grid::from_parts(nv, side, offsets, edges)
            }
            Strategy::CountSort => {
                let mapped: Vec<E> = input.edges().iter().map(map_edge).collect();
                let key = move |e: &E| -> u64 {
                    (e.src() as usize / range_len * side + e.dst() as usize / range_len) as u64
                };
                let sorted = egraph_sort::count_sort_by_key(&mapped, num_cells, key);
                Grid::from_parts(nv, side, sorted.offsets, sorted.sorted)
            }
            Strategy::Dynamic => {
                let (offsets, edges) =
                    dynamic_cells(input.edges(), num_cells, |e| cell_key(e) as usize, map_edge);
                Grid::from_parts(nv, side, offsets, edges)
            }
        };
        let stats = PreprocessStats {
            strategy: self.strategy,
            seconds: start.elapsed().as_secs_f64(),
        };
        (grid, stats)
    }
}

/// Builder for compressed-CSR layouts (§ccsr of DESIGN.md): sorted
/// neighbor lists encoded as first-neighbor-delta plus byte-varint
/// gaps, chunked so workers decode one vertex without touching its
/// neighbors' chunks.
///
/// Neighbor lists are always sorted — gap encoding requires it — so a
/// ccsr build is exactly a `CsrBuilder::sort_neighbors(true)` build
/// followed by [`compress_adjacency`] on each direction.
///
/// # Examples
///
/// ```
/// use egraph_core::preprocess::{CcsrBuilder, Strategy};
/// use egraph_core::layout::EdgeDirection;
/// use egraph_core::types::{Edge, EdgeList};
///
/// let edges = EdgeList::new(3, vec![Edge::new(0, 2), Edge::new(0, 1)]).unwrap();
/// let ccsr = CcsrBuilder::new(Strategy::RadixSort, EdgeDirection::Out).build(&edges);
/// assert_eq!(ccsr.out().decode_neighbors(0).unwrap(), vec![1, 2]);
/// ```
#[derive(Debug, Clone)]
pub struct CcsrBuilder {
    strategy: Strategy,
    direction: EdgeDirection,
}

impl CcsrBuilder {
    /// Creates a builder with the given strategy and edge direction.
    pub fn new(strategy: Strategy, direction: EdgeDirection) -> Self {
        Self {
            strategy,
            direction,
        }
    }

    /// Builds the layout.
    pub fn build<E: EdgeRecord>(&self, input: &EdgeList<E>) -> CcsrList<E> {
        self.build_timed(input).0
    }

    /// Builds the layout, returning the pre-processing cost alongside.
    /// The cost covers both the intermediate sorted-CSR build and the
    /// compression passes — pre-processing is end-to-end, as
    /// everywhere else in the repo.
    pub fn build_timed<E: EdgeRecord>(
        &self,
        input: &EdgeList<E>,
    ) -> (CcsrList<E>, PreprocessStats) {
        let _span = egraph_parallel::timeline::span(
            egraph_parallel::timeline::SpanKind::Phase,
            "preprocess_ccsr",
            self.strategy.name(),
        );
        let start = Instant::now();
        let csr = CsrBuilder::new(self.strategy, self.direction)
            .sort_neighbors(true)
            .build(input);
        let list = compress_sorted_csr(&csr);
        let stats = PreprocessStats {
            strategy: self.strategy,
            seconds: start.elapsed().as_secs_f64(),
        };
        (list, stats)
    }
}

/// Compresses every direction of an already-neighbor-sorted adjacency
/// list. Panics (inside [`compress_adjacency`]) if a neighbor array is
/// not sorted.
pub fn compress_sorted_csr<E: EdgeRecord>(csr: &AdjacencyList<E>) -> CcsrList<E> {
    CcsrList::new(
        csr.out_opt().map(compress_adjacency),
        csr.incoming_opt().map(compress_adjacency),
    )
}

/// Encodes one neighbor-sorted [`Adjacency`] into its compressed form,
/// in parallel: pass 1 measures every vertex's encoded stream length,
/// a prefix sum hands each vertex an exclusive byte range, pass 2
/// encodes into those disjoint ranges with no synchronization.
///
/// # Panics
///
/// Panics if any neighbor array is not sorted by neighbor id (build
/// the input with `CsrBuilder::sort_neighbors(true)`).
pub fn compress_adjacency<E: EdgeRecord>(adj: &Adjacency<E>) -> CcsrAdjacency<E> {
    let nv = adj.num_vertices();
    let by_dst = adj.is_by_dst();
    let nbr = move |e: &E| -> u32 {
        if by_dst {
            e.src()
        } else {
            e.dst()
        }
    };

    // Pass 1: per-vertex encoded byte lengths, then serial prefix sums
    // for the byte and edge offset tables (O(nv) additions — cheap
    // next to the encode passes).
    let lens = parallel_init(nv, 1 << 12, |v| {
        let ids: Vec<u32> = adj.neighbors(v as u32).iter().map(nbr).collect();
        encoded_len(v as u32, &ids) as u64
    });
    let mut byte_offsets = Vec::with_capacity(nv + 1);
    byte_offsets.push(0u64);
    let mut edge_offsets = Vec::with_capacity(nv + 1);
    edge_offsets.push(0u64);
    for v in 0..nv {
        byte_offsets.push(byte_offsets[v] + lens[v]);
        edge_offsets.push(edge_offsets[v] + adj.degree(v as u32) as u64);
    }
    let total_bytes = *byte_offsets.last().unwrap() as usize;
    let total_edges = *edge_offsets.last().unwrap() as usize;

    // Pass 2: encode each vertex into its exclusive byte range.
    let mut bytes: Vec<u8> = Vec::with_capacity(total_bytes);
    {
        let out_ptr = SendPtr(bytes.as_mut_ptr());
        let byte_offsets = &byte_offsets;
        parallel_for(0..nv, 1 << 10, |vs| {
            let mut ids: Vec<u32> = Vec::new();
            let mut buf: Vec<u8> = Vec::new();
            for v in vs {
                ids.clear();
                ids.extend(adj.neighbors(v as u32).iter().map(nbr));
                buf.clear();
                encode_vertex(v as u32, &ids, &mut buf);
                debug_assert_eq!(buf.len() as u64, byte_offsets[v + 1] - byte_offsets[v]);
                // SAFETY: vertex `v` is processed by exactly one loop
                // iteration, and `byte_offsets[v]..byte_offsets[v + 1]`
                // is its exclusive slice of the reserved output.
                unsafe {
                    std::ptr::copy_nonoverlapping(
                        buf.as_ptr(),
                        out_ptr.get().add(byte_offsets[v] as usize),
                        buf.len(),
                    );
                }
            }
        });
    }
    // SAFETY: the encode ranges tile `0..total_bytes` exactly (pass 1
    // measured with the same `encoded_len` the encoder asserts against).
    unsafe { bytes.set_len(total_bytes) };

    // Weights stay uncompressed in a flat side array aligned with the
    // edge offsets — delta-coding f32s buys nothing.
    let weights = if E::WEIGHTED {
        let mut w = vec![0.0f32; total_edges];
        {
            let ws = UnsyncSlice::new(&mut w);
            let edge_offsets = &edge_offsets;
            parallel_for(0..nv, 1 << 10, |vs| {
                for v in vs {
                    let base = edge_offsets[v] as usize;
                    for (k, e) in adj.neighbors(v as u32).iter().enumerate() {
                        // SAFETY: vertex `v` has a single writer and
                        // `edge_offsets[v]..edge_offsets[v + 1]` is its
                        // exclusive range.
                        unsafe { ws.write(base + k, e.weight()) };
                    }
                }
            });
        }
        w
    } else {
        Vec::new()
    };

    CcsrAdjacency::from_parts(nv, by_dst, edge_offsets, byte_offsets, bytes, weights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Edge;

    fn sample_input() -> EdgeList<Edge> {
        EdgeList::new(
            4,
            vec![
                Edge::new(0, 1),
                Edge::new(1, 0),
                Edge::new(0, 2),
                Edge::new(0, 3),
                Edge::new(2, 3),
            ],
        )
        .unwrap()
    }

    fn degrees_of(adj: &Adjacency<Edge>) -> Vec<usize> {
        (0..adj.num_vertices())
            .map(|v| adj.degree(v as u32))
            .collect()
    }

    #[test]
    fn all_strategies_agree_on_out_degrees() {
        let input = sample_input();
        for strategy in Strategy::ALL {
            let adj = CsrBuilder::new(strategy, EdgeDirection::Out).build(&input);
            assert_eq!(degrees_of(adj.out()), vec![3, 1, 1, 0], "{strategy:?}");
        }
    }

    #[test]
    fn all_strategies_agree_on_in_degrees() {
        let input = sample_input();
        for strategy in Strategy::ALL {
            let adj = CsrBuilder::new(strategy, EdgeDirection::In).build(&input);
            assert_eq!(degrees_of(adj.incoming()), vec![1, 1, 1, 2], "{strategy:?}");
        }
    }

    #[test]
    fn both_directions_built_together() {
        let input = sample_input();
        let (adj, stats) =
            CsrBuilder::new(Strategy::RadixSort, EdgeDirection::Both).build_timed(&input);
        assert!(adj.out_opt().is_some() && adj.incoming_opt().is_some());
        assert!(stats.seconds >= 0.0);
    }

    #[test]
    fn neighbors_contain_expected_edges() {
        let input = sample_input();
        let adj = CsrBuilder::new(Strategy::CountSort, EdgeDirection::Out).build(&input);
        let mut dsts: Vec<u32> = adj.out().neighbors(0).iter().map(|e| e.dst).collect();
        dsts.sort_unstable();
        assert_eq!(dsts, vec![1, 2, 3]);
    }

    #[test]
    fn sorted_neighbors_are_sorted() {
        let input = sample_input();
        let adj = CsrBuilder::new(Strategy::RadixSort, EdgeDirection::Out)
            .sort_neighbors(true)
            .build(&input);
        let dsts: Vec<u32> = adj.out().neighbors(0).iter().map(|e| e.dst).collect();
        assert_eq!(dsts, vec![1, 2, 3]);
    }

    #[test]
    fn grid_strategies_agree() {
        let input = sample_input();
        let reference = GridBuilder::new(Strategy::RadixSort).side(2).build(&input);
        for strategy in [Strategy::CountSort, Strategy::Dynamic] {
            let grid = GridBuilder::new(strategy).side(2).build(&input);
            for r in 0..2 {
                for c in 0..2 {
                    let mut a: Vec<(u32, u32)> = reference
                        .cell(r, c)
                        .iter()
                        .map(|e| (e.src, e.dst))
                        .collect();
                    let mut b: Vec<(u32, u32)> =
                        grid.cell(r, c).iter().map(|e| (e.src, e.dst)).collect();
                    a.sort_unstable();
                    b.sort_unstable();
                    assert_eq!(a, b, "{strategy:?} cell ({r},{c})");
                }
            }
        }
    }

    #[test]
    fn transposed_grid_reverses_edges() {
        let input = EdgeList::new(4, vec![Edge::new(0, 3)]).unwrap();
        let grid = GridBuilder::new(Strategy::RadixSort)
            .side(2)
            .transposed(true)
            .build(&input);
        // The reversed edge (3, 0) lives in cell (1, 0).
        assert_eq!(grid.cell(1, 0), &[Edge::new(3, 0)]);
        assert!(grid.cell(0, 1).is_empty());
    }

    #[test]
    fn empty_graph_builds() {
        let input: EdgeList<Edge> = EdgeList::new(0, vec![]).unwrap();
        for strategy in Strategy::ALL {
            let adj = CsrBuilder::new(strategy, EdgeDirection::Out).build(&input);
            assert_eq!(adj.num_vertices(), 0);
            assert_eq!(adj.num_edges(), 0);
        }
    }

    #[test]
    fn dynamic_and_count_sort_preserve_input_order() {
        // Construction must be *stable*: each vertex's neighbor list
        // equals the input-order reference exactly (not just as a
        // multiset). Stability makes the layout a pure function of the
        // input, i.e. bit-identical at any thread count. The input is
        // large enough to take the parallel grouping paths and skewed
        // so a hub vertex collects a long cross-block list.
        let nv = 500usize;
        let mut state = 99u64;
        let mut edges = Vec::new();
        for i in 0..30_000u32 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let src = if i % 4 == 0 {
                7
            } else {
                ((state >> 33) % nv as u64) as u32
            };
            edges.push(Edge::new(src, i % nv as u32));
        }
        let input = EdgeList::new(nv, edges.clone()).unwrap();
        let mut reference: Vec<Vec<u32>> = vec![Vec::new(); nv];
        for e in &edges {
            reference[e.src as usize].push(e.dst);
        }
        for strategy in [Strategy::Dynamic, Strategy::CountSort] {
            let adj = CsrBuilder::new(strategy, EdgeDirection::Out).build(&input);
            for v in 0..nv as u32 {
                let got: Vec<u32> = adj.out().neighbors(v).iter().map(|e| e.dst).collect();
                assert_eq!(got, reference[v as usize], "{strategy:?} vertex {v}");
            }
        }
    }

    #[test]
    fn dynamic_grid_preserves_input_order_per_cell() {
        let nv = 256usize;
        let side = 4;
        let mut state = 5u64;
        let mut edges = Vec::new();
        for _ in 0..40_000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let src = ((state >> 33) % nv as u64) as u32;
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let dst = ((state >> 33) % nv as u64) as u32;
            edges.push(Edge::new(src, dst));
        }
        let input = EdgeList::new(nv, edges.clone()).unwrap();
        let grid = GridBuilder::new(Strategy::Dynamic).side(side).build(&input);
        let range_len = nv.div_ceil(side);
        let mut reference: Vec<Vec<(u32, u32)>> = vec![Vec::new(); side * side];
        for e in &edges {
            reference[e.src as usize / range_len * side + e.dst as usize / range_len]
                .push((e.src, e.dst));
        }
        for r in 0..side {
            for c in 0..side {
                let got: Vec<(u32, u32)> = grid.cell(r, c).iter().map(|e| (e.src, e.dst)).collect();
                assert_eq!(got, reference[r * side + c], "cell ({r},{c})");
            }
        }
    }

    #[test]
    fn ccsr_roundtrips_sample_graph() {
        let input = sample_input();
        for strategy in Strategy::ALL {
            let (ccsr, stats) = CcsrBuilder::new(strategy, EdgeDirection::Both).build_timed(&input);
            assert!(stats.seconds >= 0.0);
            assert_eq!(ccsr.num_vertices(), 4);
            assert_eq!(ccsr.num_edges(), 5);
            assert_eq!(ccsr.out().decode_neighbors(0).unwrap(), vec![1, 2, 3]);
            assert_eq!(ccsr.incoming().decode_neighbors(3).unwrap(), vec![0, 2]);
            ccsr.out().validate().unwrap();
            ccsr.incoming().validate().unwrap();
        }
    }

    #[test]
    fn ccsr_parallel_encoder_matches_sorted_csr() {
        // Large skewed multigraph (hub vertex, duplicates, self-loops)
        // so the parallel passes actually split work; every vertex's
        // decoded list must equal the sorted CSR's neighbor ids.
        let nv = 700usize;
        let mut state = 42u64;
        let mut edges = Vec::new();
        for i in 0..50_000u32 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let src = if i % 5 == 0 {
                3
            } else {
                ((state >> 33) % nv as u64) as u32
            };
            edges.push(Edge::new(src, ((state >> 11) % nv as u64) as u32));
        }
        let input = EdgeList::new(nv, edges).unwrap();
        let csr = CsrBuilder::new(Strategy::RadixSort, EdgeDirection::Both)
            .sort_neighbors(true)
            .build(&input);
        let ccsr = compress_sorted_csr(&csr);
        for v in 0..nv as u32 {
            let expect: Vec<u32> = csr.out().neighbors(v).iter().map(|e| e.dst).collect();
            assert_eq!(ccsr.out().decode_neighbors(v).unwrap(), expect, "out {v}");
            let expect: Vec<u32> = csr.incoming().neighbors(v).iter().map(|e| e.src).collect();
            assert_eq!(
                ccsr.incoming().decode_neighbors(v).unwrap(),
                expect,
                "in {v}"
            );
        }
        assert!(ccsr.resident_bytes() > 0);
    }

    #[test]
    fn ccsr_preserves_weights_in_csr_order() {
        use crate::types::WEdge;
        let edges = vec![
            WEdge::new(0, 2, 2.5),
            WEdge::new(0, 1, 1.5),
            WEdge::new(2, 0, 9.0),
            WEdge::new(0, 1, 7.0),
        ];
        let input = EdgeList::new(3, edges).unwrap();
        let ccsr = CcsrBuilder::new(Strategy::CountSort, EdgeDirection::Out).build(&input);
        assert_eq!(ccsr.out().decode_neighbors(0).unwrap(), vec![1, 1, 2]);
        // Sorting by neighbor id is stable, so the duplicate (0→1)
        // edges keep input order: 1.5 then 7.0.
        assert_eq!(ccsr.out().weights_of(0), &[1.5, 7.0, 2.5]);
        assert_eq!(ccsr.out().weights_of(2), &[9.0]);
    }

    #[test]
    fn ccsr_empty_graph_builds() {
        let input: EdgeList<Edge> = EdgeList::new(0, vec![]).unwrap();
        let ccsr = CcsrBuilder::new(Strategy::Dynamic, EdgeDirection::Both).build(&input);
        assert_eq!(ccsr.num_vertices(), 0);
        assert_eq!(ccsr.num_edges(), 0);
    }

    #[test]
    fn large_random_graph_all_strategies_equal() {
        // Deterministic pseudo-random multigraph with self-loops and
        // duplicates; every strategy must produce identical neighbor
        // multisets.
        let nv = 1000usize;
        let mut state = 12345u64;
        let mut edges = Vec::new();
        for _ in 0..20_000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let src = ((state >> 33) % nv as u64) as u32;
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let dst = ((state >> 33) % nv as u64) as u32;
            edges.push(Edge::new(src, dst));
        }
        let input = EdgeList::new(nv, edges).unwrap();
        let reference = CsrBuilder::new(Strategy::RadixSort, EdgeDirection::Out).build(&input);
        for strategy in [Strategy::CountSort, Strategy::Dynamic] {
            let adj = CsrBuilder::new(strategy, EdgeDirection::Out).build(&input);
            for v in 0..nv as u32 {
                let mut a: Vec<u32> = reference.out().neighbors(v).iter().map(|e| e.dst).collect();
                let mut b: Vec<u32> = adj.out().neighbors(v).iter().map(|e| e.dst).collect();
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "{strategy:?} vertex {v}");
            }
        }
    }
}

//! EverythingGraph: a single system implementing the techniques of the
//! major multicore graph-processing frameworks, with every technique
//! individually selectable.
//!
//! This crate is the primary contribution of the reproduction of
//! *"Everything you always wanted to know about multicore graph
//! processing but were afraid to ask"* (USENIX ATC'17). It provides:
//!
//! * the canonical **edge-array input** ([`types::EdgeList`]),
//! * the four **data layouts** — edge array, adjacency list
//!   ([`layout::AdjacencyList`]), compressed CSR ([`layout::CcsrList`])
//!   and grid ([`layout::Grid`]),
//! * the three **pre-processing strategies** — dynamic, count sort and
//!   radix sort ([`preprocess`]),
//! * the **execution engine** with vertex-centric, edge-centric and
//!   grid iteration in push and pull modes ([`engine`]), with
//!   synchronization by striped locks, atomics, or structural
//!   exclusivity (lock free),
//! * the six study **algorithms** ([`algo`]): BFS, WCC, SSSP, PageRank,
//!   SpMV and ALS,
//! * **NUMA-aware partitioning and execution modeling** ([`numa_sim`]),
//! * end-to-end **time accounting** ([`metrics`]) and the §9 decision
//!   **roadmap** ([`roadmap`]).
//!
//! # Examples
//!
//! ```
//! use egraph_core::prelude::*;
//! use egraph_core::algo::bfs;
//!
//! // A tiny directed graph as an edge array…
//! let input = EdgeList::new(4, vec![
//!     Edge::new(0, 1), Edge::new(1, 2), Edge::new(2, 3),
//! ]).unwrap();
//! // …pre-processed into an out-adjacency with radix sort…
//! let adj = CsrBuilder::new(Strategy::RadixSort, EdgeDirection::Out).build(&input);
//! // …and traversed with push-mode BFS.
//! let result = bfs::push(&adj, 0);
//! assert_eq!(result.reachable_count(), 4);
//! assert_eq!(result.level[3], 3);
//! ```

pub mod algo;
pub mod engine;
pub mod exec;
pub mod explain;
pub mod frontier;
pub mod inspect;
pub mod layout;
pub mod linalg;
pub mod metrics;
pub mod numa_sim;
pub mod preprocess;
pub mod roadmap;
pub mod serve;
pub mod simd;
pub mod telemetry;
pub mod trace_diff;
pub mod types;
pub mod util;
pub mod variant;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use crate::exec::ExecCtx;
    pub use crate::frontier::{FrontierKind, VertexSubset};
    pub use crate::inspect::{summarize, GraphSummary};
    pub use crate::layout::{
        Adjacency, AdjacencyList, CcsrAdjacency, CcsrError, CcsrList, CompactStats, DeltaAdjacency,
        DeltaBatch, DeltaError, DeltaGraph, DeltaList, DeltaLog, DeltaOp, EdgeDirection, EpochCell,
        GraphSnapshot, Grid, NeighborAccess, VertexLayout,
    };
    pub use crate::metrics::{timed, IterStat, StepMode, TimeBreakdown};
    pub use crate::preprocess::{CcsrBuilder, CsrBuilder, GridBuilder, PreprocessStats, Strategy};
    pub use crate::telemetry::{
        ExecContext, IterRecord, MemProbe, NullProbe, NullRecorder, Recorder, RunTrace, Span,
        TraceFormat, TraceRecorder,
    };
    pub use crate::types::{Edge, EdgeList, EdgeRecord, VertexId, WEdge, INVALID_VERTEX};
    pub use crate::variant::{
        run_variant, Algo, Direction, Layout, PreparedGraph, RunParams, SyncMode, VariantError,
        VariantId, VariantOutput, VariantRun,
    };
}

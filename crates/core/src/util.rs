//! Concurrency utilities shared by the engine and the algorithms:
//! atomic bitmaps, striped per-vertex locks and exclusive-access slice
//! wrappers.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

/// A fixed-size bitmap whose bits can be set concurrently.
///
/// Backs dense frontiers and per-vertex "visited" flags.
#[derive(Debug)]
pub struct AtomicBitmap {
    bits: Vec<AtomicU64>,
    len: usize,
}

impl AtomicBitmap {
    /// Creates a bitmap of `len` zero bits.
    pub fn new(len: usize) -> Self {
        Self {
            bits: (0..len.div_ceil(64)).map(|_| AtomicU64::new(0)).collect(),
            len,
        }
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitmap has zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Atomically sets bit `i`; returns `true` if this call flipped it
    /// from 0 to 1 (i.e. the caller won the race).
    #[inline]
    pub fn set(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let mask = 1u64 << (i % 64);
        let prev = self.bits[i / 64].fetch_or(mask, Ordering::Relaxed);
        prev & mask == 0
    }

    /// Reads bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.bits[i / 64].load(Ordering::Relaxed) & (1u64 << (i % 64)) != 0
    }

    /// Software-prefetches the cache line holding bit `i` (a no-op
    /// without the `simd` feature; see [`crate::simd::prefetch_read`]).
    /// Out-of-range indices are ignored — it is only a hint.
    #[inline]
    pub fn prefetch(&self, i: usize) {
        if let Some(word) = self.bits.get(i / 64) {
            crate::simd::prefetch_read(word as *const AtomicU64);
        }
    }

    /// Counts set bits, in parallel.
    pub fn count_ones(&self) -> usize {
        egraph_parallel::parallel_reduce(
            0..self.bits.len(),
            1 << 14,
            || 0usize,
            |acc, r| {
                acc + self.bits[r]
                    .iter()
                    .map(|w| w.load(Ordering::Relaxed).count_ones() as usize)
                    .sum::<usize>()
            },
            |a, b| a + b,
        )
    }

    /// Sums `f(i)` over every set bit, as a parallel reduction over
    /// per-worker partials (no shared accumulator).
    pub fn sum_over_set(&self, f: impl Fn(usize) -> usize + Sync) -> usize {
        egraph_parallel::parallel_reduce(
            0..self.bits.len(),
            1 << 10,
            || 0usize,
            |mut acc, r| {
                for wi in r {
                    let mut word = self.bits[wi].load(Ordering::Relaxed);
                    while word != 0 {
                        let bit = word.trailing_zeros() as usize;
                        acc += f(wi * 64 + bit);
                        word &= word - 1;
                    }
                }
                acc
            },
            |a, b| a + b,
        )
    }

    /// Clears all bits.
    pub fn clear(&self) {
        egraph_parallel::parallel_for(0..self.bits.len(), 1 << 14, |r| {
            for w in &self.bits[r] {
                w.store(0, Ordering::Relaxed);
            }
        });
    }

    /// Calls `f(i)` for every set bit, in parallel.
    pub fn for_each_set(&self, f: impl Fn(usize) + Sync) {
        egraph_parallel::parallel_for(0..self.bits.len(), 1 << 10, |r| {
            for wi in r {
                let mut word = self.bits[wi].load(Ordering::Relaxed);
                while word != 0 {
                    let bit = word.trailing_zeros() as usize;
                    f(wi * 64 + bit);
                    word &= word - 1;
                }
            }
        });
    }

    /// Collects the indices of set bits, sorted ascending.
    pub fn to_vec(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.count_ones());
        for (wi, w) in self.bits.iter().enumerate() {
            let mut word = w.load(Ordering::Relaxed);
            while word != 0 {
                let bit = word.trailing_zeros() as usize;
                out.push((wi * 64 + bit) as u32);
                word &= word - 1;
            }
        }
        out
    }
}

/// Striped per-vertex locks: the paper's "push with locks" strategy.
///
/// "In push mode, a vertex pushes updates to all its neighbors, and
/// thus needs to lock them to update their metadata." (§6.1.2). Using
/// one real mutex per vertex would be memory-prohibitive; like
/// practical systems we stripe vertices over a fixed pool of locks.
#[derive(Debug)]
pub struct StripedLocks {
    locks: Vec<Mutex<()>>,
    mask: usize,
}

impl StripedLocks {
    /// Default number of stripes (a multiple of any realistic core
    /// count, small enough to stay cache-resident).
    pub const DEFAULT_STRIPES: usize = 4096;

    /// Creates a pool with `stripes` locks (rounded up to a power of
    /// two).
    pub fn new(stripes: usize) -> Self {
        let stripes = stripes.next_power_of_two().max(1);
        Self {
            locks: (0..stripes).map(|_| Mutex::new(())).collect(),
            mask: stripes - 1,
        }
    }

    /// Runs `f` while holding the lock guarding vertex `v`.
    #[inline]
    pub fn with<R>(&self, v: u32, f: impl FnOnce() -> R) -> R {
        let _guard = self.locks[v as usize & self.mask].lock();
        f()
    }
}

impl Default for StripedLocks {
    fn default() -> Self {
        Self::new(Self::DEFAULT_STRIPES)
    }
}

/// A shared slice whose elements may be written without synchronization
/// by callers that guarantee exclusive access per element.
///
/// This is what makes the paper's lock-free modes expressible in Rust:
/// pull mode gives each destination vertex exactly one writer (itself),
/// and grid rows/columns give each worker an exclusive vertex range, so
/// the data race the type system fears is excluded structurally.
#[derive(Debug)]
pub struct UnsyncSlice<'a, T> {
    data: &'a [UnsafeCell<T>],
}

// SAFETY: the wrapper only hands out raw element access through
// `unsafe` methods whose contracts require the caller to guarantee
// exclusivity (see below); with those contracts upheld, concurrent use
// cannot alias.
unsafe impl<T: Send> Send for UnsyncSlice<'_, T> {}
// SAFETY: same contract-based exclusivity argument.
unsafe impl<T: Send> Sync for UnsyncSlice<'_, T> {}

impl<'a, T> UnsyncSlice<'a, T> {
    /// Wraps an exclusive slice.
    pub fn new(data: &'a mut [T]) -> Self {
        // SAFETY: `&mut [T]` proves exclusive ownership for `'a`, and
        // `UnsafeCell<T>` has the same layout as `T`.
        let cells = unsafe { &*(data as *mut [T] as *const [UnsafeCell<T>]) };
        Self { data: cells }
    }

    /// Slice length.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the slice is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Writes `value` to element `i` without synchronization.
    ///
    /// # Safety
    ///
    /// No other thread may concurrently read or write element `i`.
    #[inline]
    pub unsafe fn write(&self, i: usize, value: T) {
        *self.data[i].get() = value;
    }

    /// Reads element `i` without synchronization.
    ///
    /// # Safety
    ///
    /// No other thread may concurrently write element `i`.
    #[inline]
    pub unsafe fn read(&self, i: usize) -> T
    where
        T: Copy,
    {
        *self.data[i].get()
    }

    /// Applies `f` to element `i` in place without synchronization.
    ///
    /// # Safety
    ///
    /// No other thread may concurrently access element `i`.
    #[inline]
    pub unsafe fn update(&self, i: usize, f: impl FnOnce(&mut T)) {
        f(&mut *self.data[i].get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use egraph_parallel::parallel_for;

    #[test]
    fn bitmap_set_get_count() {
        let b = AtomicBitmap::new(130);
        assert!(b.set(0));
        assert!(!b.set(0));
        assert!(b.set(64));
        assert!(b.set(129));
        assert!(b.get(129));
        assert!(!b.get(128));
        assert_eq!(b.count_ones(), 3);
        assert_eq!(b.to_vec(), vec![0, 64, 129]);
    }

    #[test]
    fn bitmap_concurrent_set_once() {
        let b = AtomicBitmap::new(10_000);
        let winners = std::sync::atomic::AtomicUsize::new(0);
        parallel_for(0..40_000, 64, |r| {
            for i in r {
                if b.set(i % 10_000) {
                    winners.fetch_add(1, Ordering::Relaxed);
                }
            }
        });
        assert_eq!(winners.load(Ordering::Relaxed), 10_000);
        assert_eq!(b.count_ones(), 10_000);
    }

    #[test]
    fn bitmap_clear_and_for_each() {
        let b = AtomicBitmap::new(256);
        for i in (0..256).step_by(3) {
            b.set(i);
        }
        let seen = AtomicBitmap::new(256);
        b.for_each_set(|i| {
            assert!(seen.set(i));
        });
        assert_eq!(seen.count_ones(), b.count_ones());
        b.clear();
        assert_eq!(b.count_ones(), 0);
    }

    #[test]
    fn striped_locks_serialize_increments() {
        let locks = StripedLocks::new(8);
        let mut counter = 0u64;
        let cell = UnsyncSlice::new(std::slice::from_mut(&mut counter));
        parallel_for(0..10_000, 16, |r| {
            for _ in r {
                locks.with(0, || {
                    // SAFETY: all increments of element 0 are serialized
                    // by the stripe lock for vertex 0.
                    unsafe { cell.update(0, |c| *c += 1) };
                });
            }
        });
        assert_eq!(counter, 10_000);
    }

    #[test]
    fn unsync_slice_disjoint_parallel_writes() {
        let mut data = vec![0u32; 10_000];
        {
            let s = UnsyncSlice::new(&mut data);
            parallel_for(0..10_000, 128, |r| {
                for i in r {
                    // SAFETY: each index is written by exactly one
                    // iteration of the disjoint parallel ranges.
                    unsafe { s.write(i, i as u32) };
                }
            });
        }
        for (i, &x) in data.iter().enumerate() {
            assert_eq!(x, i as u32);
        }
    }

    #[test]
    fn empty_bitmap() {
        let b = AtomicBitmap::new(0);
        assert!(b.is_empty());
        assert_eq!(b.count_ones(), 0);
        assert!(b.to_vec().is_empty());
    }
}

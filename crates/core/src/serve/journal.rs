//! The serve flight recorder: a lock-free fixed-size ring journal of
//! per-query lifecycle events.
//!
//! Every answered (or disconnected) query deposits one [`QueryEvent`]
//! carrying its identity, its monotonic stage stamps and its result
//! checksum, so a live daemon can always explain its last N queries —
//! `GET /debug/queries?n=K` dumps the tail as NDJSON, and the
//! `--slow-query-ms` log renders the same event for outliers.
//!
//! Each slot is an independent seqlock: a writer claims a global
//! position with one `fetch_add`, flips the slot's sequence odd while
//! the payload words are stored, and flips it even (position-derived,
//! so each lap around the ring has a distinct generation) when done.
//! Readers re-check the sequence after copying and drop any slot that
//! changed under them — a dump never blocks writers and never yields a
//! torn event. The payload itself is a fixed array of relaxed atomic
//! words, so the protocol stays well-defined (and miri-clean) without
//! volatile reads.

use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::time::Instant;

use super::engine::QueryKind;

/// How a query left the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventOutcome {
    /// The result was delivered to the submitter.
    Answered,
    /// The submitter dropped its receiver mid-flight; the lane ran but
    /// the result was discarded.
    Disconnected,
}

impl EventOutcome {
    /// The NDJSON spelling.
    pub fn name(&self) -> &'static str {
        match self {
            EventOutcome::Answered => "ok",
            EventOutcome::Disconnected => "disconnected",
        }
    }
}

/// One query's lifecycle, stamped in microseconds since the journal's
/// epoch (the engine start). `enqueued ≤ started ≤ executed ≤ done`:
/// admission-queue wait, wave execution, then demux/write-back.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryEvent {
    /// Engine-assigned sequential query id.
    pub id: u64,
    /// The wave that answered this query.
    pub wave: u64,
    /// This query's bit lane within the wave.
    pub lane: u8,
    /// How many queries shared the wave.
    pub wave_size: u8,
    /// The algorithm run.
    pub kind: QueryKind,
    /// The graph epoch the wave executed against (bumps on every
    /// `update`/compact publish), so a dump can tell which snapshot of
    /// a mutating graph answered each query.
    pub epoch: u64,
    /// The source vertex.
    pub source: u32,
    /// Depth bound (k-hop only; 0 otherwise).
    pub depth: u32,
    /// Admission stamp, µs since the journal epoch.
    pub enqueued_us: u64,
    /// Wave launch stamp.
    pub started_us: u64,
    /// Kernel completion stamp.
    pub executed_us: u64,
    /// Demux completion stamp (after the result send).
    pub done_us: u64,
    /// FNV-1a checksum of the per-vertex answer.
    pub checksum: u64,
    /// Delivered or discarded.
    pub outcome: EventOutcome,
}

impl QueryEvent {
    /// Admission-queue wait, µs.
    pub fn queue_us(&self) -> u64 {
        self.started_us.saturating_sub(self.enqueued_us)
    }

    /// Wave kernel execution, µs.
    pub fn exec_us(&self) -> u64 {
        self.executed_us.saturating_sub(self.started_us)
    }

    /// Demux / write-back, µs.
    pub fn demux_us(&self) -> u64 {
        self.done_us.saturating_sub(self.executed_us)
    }

    /// End-to-end admission-to-demux, µs.
    pub fn total_us(&self) -> u64 {
        self.done_us.saturating_sub(self.enqueued_us)
    }

    /// Renders the event as one NDJSON line (no trailing newline). The
    /// checksum is hex-quoted because u64 overflows JSON's exact
    /// integer range.
    pub fn to_ndjson(&self) -> String {
        format!(
            concat!(
                r#"{{"id":{},"kind":"{}","source":{},"depth":{},"wave":{},"lane":{},"#,
                r#""wave_size":{},"epoch":{},"enqueued_us":{},"queue_us":{},"exec_us":{},"#,
                r#""demux_us":{},"total_us":{},"checksum":"{:#018x}","outcome":"{}"}}"#
            ),
            self.id,
            self.kind.name(),
            self.source,
            self.depth,
            self.wave,
            self.lane,
            self.wave_size,
            self.epoch,
            self.enqueued_us,
            self.queue_us(),
            self.exec_us(),
            self.demux_us(),
            self.total_us(),
            self.checksum,
            self.outcome.name(),
        )
    }
}

/// Payload words per slot (see [`encode`]).
const WORDS: usize = 10;

fn encode(e: &QueryEvent) -> [u64; WORDS] {
    let kind = match e.kind {
        QueryKind::Bfs => 0u64,
        QueryKind::Sssp => 1,
        QueryKind::KHop => 2,
    };
    let outcome = match e.outcome {
        EventOutcome::Answered => 0u64,
        EventOutcome::Disconnected => 1,
    };
    [
        e.id,
        e.wave,
        u64::from(e.lane) | (u64::from(e.wave_size) << 8) | (kind << 16) | (outcome << 24),
        u64::from(e.source) | (u64::from(e.depth) << 32),
        e.enqueued_us,
        e.started_us,
        e.executed_us,
        e.done_us,
        e.checksum,
        e.epoch,
    ]
}

fn decode(w: [u64; WORDS]) -> QueryEvent {
    QueryEvent {
        id: w[0],
        wave: w[1],
        lane: (w[2] & 0xff) as u8,
        wave_size: ((w[2] >> 8) & 0xff) as u8,
        kind: match (w[2] >> 16) & 0xff {
            1 => QueryKind::Sssp,
            2 => QueryKind::KHop,
            _ => QueryKind::Bfs,
        },
        source: (w[3] & 0xffff_ffff) as u32,
        depth: (w[3] >> 32) as u32,
        enqueued_us: w[4],
        started_us: w[5],
        executed_us: w[6],
        done_us: w[7],
        checksum: w[8],
        epoch: w[9],
        outcome: if (w[2] >> 24) & 0xff == 0 {
            EventOutcome::Answered
        } else {
            EventOutcome::Disconnected
        },
    }
}

/// One seqlock-protected ring slot. `seq` for global position `p` in a
/// ring of capacity `c` moves `2·(p/c) → 2·(p/c)+1` (writing) →
/// `2·(p/c)+2` (complete), so every lap has a distinct even value and a
/// reader can tell "my position" from "already overwritten".
struct Slot {
    seq: AtomicU64,
    words: [AtomicU64; WORDS],
}

impl Slot {
    fn new() -> Self {
        Self {
            seq: AtomicU64::new(0),
            words: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// The fixed-size lock-free ring journal. Writers never block readers
/// and vice versa; capacity 0 disables recording entirely (used by the
/// overhead-measurement mode of `exp_serve_latency`).
pub struct QueryJournal {
    epoch: Instant,
    slots: Box<[Slot]>,
    head: AtomicU64,
}

impl std::fmt::Debug for QueryJournal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryJournal")
            .field("capacity", &self.slots.len())
            .field("recorded", &self.recorded())
            .finish()
    }
}

impl QueryJournal {
    /// A journal holding the most recent `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Self {
            epoch: Instant::now(),
            slots: (0..capacity).map(|_| Slot::new()).collect(),
            head: AtomicU64::new(0),
        }
    }

    /// Whether recording is on (capacity > 0).
    pub fn enabled(&self) -> bool {
        !self.slots.is_empty()
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Microseconds from the journal epoch to `t` (0 for stamps that
    /// predate the epoch, which cannot happen for engine-issued stamps).
    pub fn micros_since_epoch(&self, t: Instant) -> u64 {
        t.saturating_duration_since(self.epoch).as_micros() as u64
    }

    /// Total events ever recorded (not capped by capacity).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Deposits one event, overwriting the oldest once the ring is
    /// full. Lock-free: claiming a position is one `fetch_add`; the
    /// only wait is the (lap-collision) spin for a previous tenant of
    /// the same slot to finish its store.
    pub fn record(&self, event: QueryEvent) {
        if self.slots.is_empty() {
            return;
        }
        let cap = self.slots.len() as u64;
        let pos = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(pos % cap) as usize];
        let generation = pos / cap;
        let writing = generation * 2 + 1;
        while slot
            .seq
            .compare_exchange_weak(
                generation * 2,
                writing,
                Ordering::Acquire,
                Ordering::Relaxed,
            )
            .is_err()
        {
            std::hint::spin_loop();
        }
        for (word, value) in slot.words.iter().zip(encode(&event)) {
            word.store(value, Ordering::Relaxed);
        }
        slot.seq.store(generation * 2 + 2, Ordering::Release);
    }

    /// The most recent `n` events, oldest first. Slots that were
    /// mid-overwrite during the walk are skipped rather than returned
    /// torn, so a dump racing heavy traffic may return fewer events
    /// than asked.
    pub fn dump(&self, n: usize) -> Vec<QueryEvent> {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        if cap == 0 || head == 0 {
            return Vec::new();
        }
        let take = (n as u64).min(head).min(cap);
        let mut out = Vec::with_capacity(take as usize);
        for pos in (head - take)..head {
            let slot = &self.slots[(pos % cap) as usize];
            let complete = (pos / cap) * 2 + 2;
            if slot.seq.load(Ordering::Acquire) != complete {
                continue;
            }
            let words: [u64; WORDS] =
                std::array::from_fn(|i| slot.words[i].load(Ordering::Relaxed));
            // Promote the relaxed payload loads to acquire before the
            // re-check, the seqlock reader protocol.
            fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) != complete {
                continue;
            }
            out.push(decode(words));
        }
        out
    }

    /// [`Self::dump`] rendered as NDJSON, one event per line, oldest
    /// first, with a trailing newline when non-empty.
    pub fn dump_ndjson(&self, n: usize) -> String {
        let mut out = String::new();
        for event in self.dump(n) {
            out.push_str(&event.to_ndjson());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(id: u64) -> QueryEvent {
        QueryEvent {
            id,
            wave: id / 4,
            lane: (id % 4) as u8,
            wave_size: 4,
            kind: QueryKind::Bfs,
            epoch: 1 + id % 3,
            source: id as u32,
            depth: 0,
            enqueued_us: id * 10,
            started_us: id * 10 + 3,
            executed_us: id * 10 + 7,
            done_us: id * 10 + 8,
            checksum: id.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            outcome: EventOutcome::Answered,
        }
    }

    #[test]
    fn roundtrips_through_the_packed_words() {
        let e = QueryEvent {
            kind: QueryKind::KHop,
            depth: 3,
            outcome: EventOutcome::Disconnected,
            ..event(77)
        };
        assert_eq!(decode(encode(&e)), e);
    }

    #[test]
    fn dump_returns_the_tail_oldest_first() {
        let j = QueryJournal::new(8);
        for id in 0..5 {
            j.record(event(id));
        }
        let tail = j.dump(3);
        assert_eq!(tail.iter().map(|e| e.id).collect::<Vec<_>>(), vec![2, 3, 4]);
        assert_eq!(j.recorded(), 5);
    }

    #[test]
    fn wrap_around_keeps_only_the_most_recent_capacity_events() {
        let j = QueryJournal::new(4);
        for id in 0..11 {
            j.record(event(id));
        }
        let all = j.dump(usize::MAX);
        assert_eq!(
            all.iter().map(|e| e.id).collect::<Vec<_>>(),
            vec![7, 8, 9, 10]
        );
    }

    #[test]
    fn zero_capacity_disables_recording() {
        let j = QueryJournal::new(0);
        assert!(!j.enabled());
        j.record(event(1));
        assert!(j.dump(10).is_empty());
        assert_eq!(j.dump_ndjson(10), "");
    }

    #[test]
    fn ndjson_lines_carry_the_stage_durations() {
        let j = QueryJournal::new(2);
        j.record(event(5));
        let dump = j.dump_ndjson(1);
        assert!(dump.ends_with('\n'));
        let line = dump.trim_end();
        assert!(line.starts_with(r#"{"id":5,"kind":"bfs""#), "{line}");
        assert!(line.contains(r#""queue_us":3"#), "{line}");
        assert!(line.contains(r#""exec_us":4"#), "{line}");
        assert!(line.contains(r#""demux_us":1"#), "{line}");
        assert!(line.contains(r#""epoch":3"#), "{line}");
        assert!(line.contains(r#""outcome":"ok""#), "{line}");
    }

    #[test]
    fn stage_durations_saturate_rather_than_underflow() {
        let e = QueryEvent {
            started_us: 0,
            enqueued_us: 10,
            ..event(1)
        };
        assert_eq!(e.queue_us(), 0);
    }
}

//! `egraph serve`: a long-lived daemon answering concurrent point
//! queries over one shared read-optimized CSR.
//!
//! The paper's batch model gives all cores to one algorithm invocation;
//! a query-serving workload instead wants many small traversals per
//! second against a graph that never changes between requests. The
//! mechanism that reconciles the two is **query batching**: the
//! admission queue ([`engine`]) groups up to [`wave::MAX_WAVE`] pending
//! same-algorithm queries into a wave, and one *multi-source* kernel
//! ([`wave`]) answers the whole wave with a single shared edge scan —
//! a bit-packed frontier holds one `u64` lane word per vertex, one bit
//! per query, so wave cost grows with the union of the frontiers, not
//! the sum. Per-query results are demuxed on completion and are
//! bit-identical to their single-query baselines.
//!
//! The TCP front-end ([`daemon`]) speaks newline-delimited JSON and
//! answers HTTP `GET /healthz` on the same port (`loading` → `ready`
//! around the resident layout build) so load balancers can gate on
//! graph-load completion.

pub mod daemon;
pub mod engine;
pub mod journal;
pub mod wave;

pub use daemon::ServeDaemon;
pub use engine::{
    Query, QueryKind, QueryOutcome, QueryValues, ServeConfig, ServeEngine, ServeGraph,
    WavePerfStatus,
};
pub use journal::{EventOutcome, QueryEvent, QueryJournal};
pub use wave::{multi_bfs, multi_sssp, MAX_WAVE};

//! The TCP front-end: newline-delimited JSON over the same plain
//! `std::net::TcpListener` scaffolding `egraph-metrics` proved out.
//!
//! # Wire protocol
//!
//! One request per line, one response per line, both JSON objects:
//!
//! ```text
//! → {"id":1,"algo":"bfs","source":42}
//! ← {"id":1,"ok":true,"algo":"bfs","source":42,"wave_size":17,
//!    "wait_us":812,"exec_us":5241,"reachable":261904,
//!    "checksum":"c0ffee..."}
//! ```
//!
//! Fields: `algo` is `bfs` | `sssp` | `khop` (`khop` takes `depth`);
//! `"values":true` asks for the full per-vertex array in the response
//! (levels for bfs/khop, distances for sssp — large!). `id` is echoed
//! verbatim so clients may pipeline. Errors come back on the same line
//! slot: `{"id":1,"ok":false,"error":"..."}`. The connection stays
//! open until the client closes it.
//!
//! The daemon also answers plain HTTP `GET /healthz` on the query port
//! (`200 ok layout=<adj|grid|ccsr> resident_bytes=<N>` once the layout
//! build finished, `503 loading` before) so load balancers can gate on
//! graph-load completion — and operators can see what the index costs —
//! without a second port.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use egraph_metrics::BindError;

use crate::telemetry::json::{self, Value};
use crate::types::VertexId;

use super::engine::{
    Query, QueryKind, QueryOutcome, QueryValues, ServeConfig, ServeEngine, ServeGraph,
};

/// A running `egraph serve` daemon: the batching engine plus the TCP
/// accept loop. Dropping it stops accepting, drains in-flight queries
/// and joins every connection thread.
pub struct ServeDaemon {
    addr: SocketAddr,
    engine: Arc<ServeEngine>,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for ServeDaemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeDaemon")
            .field("addr", &self.addr)
            .finish()
    }
}

impl ServeDaemon {
    /// Binds `addr` (port `0` for ephemeral), starts the engine (the
    /// resident layout build proceeds in the background; `/healthz`
    /// reports `loading` until it completes, then the chosen layout
    /// and its resident bytes) and begins accepting connections.
    ///
    /// # Errors
    ///
    /// [`BindError`] naming the offending address when the listener
    /// cannot be established.
    pub fn start(addr: &str, graph: ServeGraph, config: ServeConfig) -> Result<Self, BindError> {
        let wrap = |e: std::io::Error| BindError::new(addr, e);
        let listener = TcpListener::bind(addr).map_err(wrap)?;
        listener.set_nonblocking(true).map_err(wrap)?;
        let bound = listener.local_addr().map_err(wrap)?;
        let engine = Arc::new(ServeEngine::start(graph, config));
        let stop = Arc::new(AtomicBool::new(false));
        let accept = {
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("egraph-serve-accept".into())
                .spawn(move || accept_loop(listener, &engine, &stop))
                .map_err(wrap)?
        };
        Ok(Self {
            addr: bound,
            engine,
            stop: stop.clone(),
            accept: Some(accept),
        })
    }

    /// The bound address (resolves port 0 to the real ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether the engine finished building the CSR.
    pub fn ready(&self) -> bool {
        self.engine.ready()
    }

    /// Blocks until the engine is ready.
    pub fn wait_ready(&self) {
        self.engine.wait_ready();
    }

    /// Stops accepting connections, drains in-flight queries and joins
    /// the accept loop.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServeDaemon {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(listener: TcpListener, engine: &Arc<ServeEngine>, stop: &Arc<AtomicBool>) {
    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                let engine = Arc::clone(engine);
                let stop = Arc::clone(stop);
                if let Ok(handle) = std::thread::Builder::new()
                    .name("egraph-serve-conn".into())
                    .spawn(move || {
                        let _ = handle_connection(stream, &engine, &stop);
                    })
                {
                    connections.push(handle);
                }
                connections.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    for handle in connections {
        let _ = handle.join();
    }
}

fn handle_connection(
    stream: TcpStream,
    engine: &ServeEngine,
    stop: &AtomicBool,
) -> std::io::Result<()> {
    // A finite read timeout lets the handler notice `stop` between
    // requests from an idle client.
    stream.set_read_timeout(Some(Duration::from_millis(250)))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        if stop.load(Ordering::Relaxed) {
            return Ok(());
        }
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()), // client closed
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(e) => return Err(e),
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        // Health probes reuse the query port: answer one HTTP request
        // and close, exactly what a load balancer expects.
        if trimmed.starts_with("GET ") {
            let (status, body) = if engine.ready() {
                (
                    "200 OK",
                    format!(
                        "ok layout={} resident_bytes={}\n",
                        engine.layout_name(),
                        engine.resident_bytes()
                    ),
                )
            } else {
                ("503 Service Unavailable", "loading\n".to_string())
            };
            let response = format!(
                "HTTP/1.1 {status}\r\nContent-Type: text/plain; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
                body.len()
            );
            writer.write_all(response.as_bytes())?;
            return writer.flush();
        }
        let response = answer(trimmed, engine);
        writer.write_all(response.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
    }
}

/// Parses one request line and produces the response line (no trailing
/// newline).
fn answer(line: &str, engine: &ServeEngine) -> String {
    let (id, parsed) = match parse_request(line) {
        Ok(x) => x,
        Err((id, msg)) => return error_response(&id, &msg),
    };
    let (query, want_values) = parsed;
    let rx = match engine.submit(query) {
        Ok(rx) => rx,
        Err(e) => return error_response(&id, &e.to_string()),
    };
    match rx.recv() {
        Ok(outcome) => ok_response(&id, query, &outcome, want_values),
        Err(_) => error_response(&id, "engine shut down before the query completed"),
    }
}

/// `(id-as-json, ((query, want_values)))` or `(id-as-json, message)`.
#[allow(clippy::type_complexity)]
fn parse_request(line: &str) -> Result<(String, (Query, bool)), (String, String)> {
    let value = json::parse(line).map_err(|e| ("null".to_string(), format!("bad json: {e}")))?;
    let obj = match value.as_object() {
        Some(o) => o,
        None => {
            return Err((
                "null".to_string(),
                "request must be a json object".to_string(),
            ))
        }
    };
    let field = |name: &str| obj.iter().find(|(k, _)| k == name).map(|(_, v)| v);
    let id = match field("id") {
        Some(Value::Number(n)) => json::number(*n),
        Some(Value::String(s)) => json::string(s),
        _ => "null".to_string(),
    };
    let fail = |msg: String| (id.clone(), msg);
    let algo = field("algo")
        .and_then(Value::as_str)
        .ok_or_else(|| fail("missing field: algo".to_string()))?;
    let kind = match algo {
        "bfs" => QueryKind::Bfs,
        "sssp" => QueryKind::Sssp,
        "khop" => QueryKind::KHop,
        other => {
            return Err(fail(format!(
                "unknown algo '{other}' (expected bfs, sssp or khop)"
            )))
        }
    };
    let source = field("source")
        .and_then(Value::as_number)
        .ok_or_else(|| fail("missing field: source".to_string()))?;
    if source < 0.0 || source.fract() != 0.0 || source > f64::from(u32::MAX) {
        return Err(fail(format!("source must be a vertex id, got {source}")));
    }
    let depth = match (kind, field("depth").and_then(Value::as_number)) {
        (QueryKind::KHop, Some(d)) if d >= 0.0 && d.fract() == 0.0 => d as u32,
        (QueryKind::KHop, Some(d)) => return Err(fail(format!("bad depth {d}"))),
        (QueryKind::KHop, None) => return Err(fail("khop needs a depth field".to_string())),
        _ => 0,
    };
    let want_values = matches!(field("values"), Some(Value::Bool(true)));
    Ok((
        id,
        (
            Query {
                kind,
                source: source as VertexId,
                depth,
            },
            want_values,
        ),
    ))
}

fn ok_response(id: &str, query: Query, outcome: &QueryOutcome, want_values: bool) -> String {
    let mut out = String::with_capacity(160);
    out.push_str(&format!(
        "{{\"id\":{id},\"ok\":true,\"algo\":{},\"source\":{},\"wave_size\":{},\"wait_us\":{},\"exec_us\":{},\"reachable\":{},\"checksum\":\"{:016x}\"",
        json::string(query.kind.name()),
        query.source,
        outcome.wave_size,
        (outcome.wait_seconds * 1e6).round() as u64,
        (outcome.exec_seconds * 1e6).round() as u64,
        outcome.values.reachable(),
        outcome.values.checksum(),
    ));
    if want_values {
        out.push_str(",\"values\":[");
        match &outcome.values {
            QueryValues::Levels(levels) => {
                for (i, &l) in levels.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if l == u32::MAX {
                        out.push_str("null");
                    } else {
                        out.push_str(&l.to_string());
                    }
                }
            }
            QueryValues::Dists(dists) => {
                for (i, &d) in dists.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&json::number(f64::from(d)));
                }
            }
        }
        out.push(']');
    }
    out.push('}');
    out
}

fn error_response(id: &str, message: &str) -> String {
    format!(
        "{{\"id\":{id},\"ok\":false,\"error\":{}}}",
        json::string(message)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Edge, EdgeList};
    use std::io::{BufRead, BufReader, Read, Write};
    use std::net::TcpStream;

    fn daemon_on_chain(nv: usize) -> ServeDaemon {
        let edges = (0..nv as u32 - 1).map(|v| Edge::new(v, v + 1)).collect();
        let graph = EdgeList::new(nv, edges).unwrap();
        ServeDaemon::start(
            "127.0.0.1:0",
            ServeGraph::Unweighted(graph),
            ServeConfig {
                threads: 1,
                metrics: false,
                ..ServeConfig::default()
            },
        )
        .expect("bind ephemeral port")
    }

    fn roundtrip(addr: std::net::SocketAddr, request: &str) -> Value {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(request.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        reader.read_line(&mut line).expect("response line");
        json::parse(line.trim()).expect("valid json response")
    }

    fn get_field<'a>(v: &'a Value, name: &str) -> &'a Value {
        v.as_object()
            .unwrap()
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .unwrap_or(&Value::Null)
    }

    #[test]
    fn daemon_answers_bfs_over_the_wire() {
        let daemon = daemon_on_chain(16);
        let response = roundtrip(
            daemon.addr(),
            r#"{"id":7,"algo":"bfs","source":0,"values":true}"#,
        );
        assert_eq!(get_field(&response, "ok"), &Value::Bool(true));
        assert_eq!(get_field(&response, "id").as_number(), Some(7.0));
        assert_eq!(get_field(&response, "reachable").as_number(), Some(16.0));
        let values = get_field(&response, "values").as_array().unwrap();
        assert_eq!(values[3].as_number(), Some(3.0));
        daemon.shutdown();
    }

    #[test]
    fn daemon_reports_errors_in_band() {
        let daemon = daemon_on_chain(4);
        let response = roundtrip(daemon.addr(), r#"{"id":"q1","algo":"sssp","source":0}"#);
        assert_eq!(get_field(&response, "ok"), &Value::Bool(false));
        assert!(get_field(&response, "error")
            .as_str()
            .unwrap()
            .contains("weighted"));
        let response = roundtrip(daemon.addr(), "not json at all");
        assert_eq!(get_field(&response, "ok"), &Value::Bool(false));
        daemon.shutdown();
    }

    #[test]
    fn daemon_serves_healthz_on_the_query_port() {
        let daemon = daemon_on_chain(4);
        daemon.wait_ready();
        let mut stream = TcpStream::connect(daemon.addr()).unwrap();
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        BufReader::new(stream)
            .read_to_string(&mut response)
            .unwrap();
        assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
        let body = response.rsplit("\r\n\r\n").next().unwrap();
        assert!(
            body.starts_with("ok layout=adj resident_bytes="),
            "{response}"
        );
        let bytes: u64 = body
            .trim()
            .rsplit('=')
            .next()
            .unwrap()
            .parse()
            .expect("resident_bytes is numeric");
        assert!(bytes > 0, "{response}");
        daemon.shutdown();
    }
}

//! The TCP front-end: newline-delimited JSON over the same plain
//! `std::net::TcpListener` scaffolding `egraph-metrics` proved out.
//!
//! # Wire protocol
//!
//! One request per line, one response per line, both JSON objects:
//!
//! ```text
//! → {"id":1,"algo":"bfs","source":42}
//! ← {"id":1,"ok":true,"algo":"bfs","source":42,"wave_size":17,
//!    "wait_us":812,"exec_us":5241,"demux_us":36,"reachable":261904,
//!    "checksum":"c0ffee..."}
//! ```
//!
//! Fields: `algo` is `bfs` | `sssp` | `khop` (`khop` takes `depth`);
//! `"values":true` asks for the full per-vertex array in the response
//! (levels for bfs/khop, distances for sssp — large!). `id` is echoed
//! verbatim so clients may pipeline. Errors come back on the same line
//! slot: `{"id":1,"ok":false,"error":"..."}`. The connection stays
//! open until the client closes it.
//!
//! Lines carrying an `op` field instead of `algo` mutate the served
//! graph (DESIGN.md §16):
//!
//! ```text
//! → {"op":"insert","src":3,"dst":9}          (also "delete"; weighted
//! ← {"ok":true,"op":"update","applied":1,     graphs take "weight")
//!    "pending":4}
//! → {"op":"compact"}
//! ← {"ok":true,"op":"compact","epoch":2,"merged_ops":4,
//!    "resident_bytes":123456}
//! ```
//!
//! Updates append to a pending log; queries keep answering from the
//! current snapshot until `compact` merges the log, rebuilds the
//! resident layout and publishes it under a bumped epoch — in-flight
//! waves finish on the snapshot they started with.
//!
//! The daemon also answers plain HTTP on the query port, so load
//! balancers and operators need no second port:
//!
//! - `GET /healthz` — `200 ok layout=<adj|grid|ccsr|delta>
//!   resident_bytes=<N> queue_depth=<Q> inflight=<I> epoch=<E>
//!   pending_ops=<P>` once the layout build finished (`503 loading`
//!   before); queue depth and inflight let a balancer shed load before
//!   saturation, and epoch confirms whether an update stream landed.
//! - `GET /debug/queries?n=K` — the flight recorder's last `K` query
//!   events (default 64, capped by the ring capacity) as NDJSON,
//!   oldest first: every live daemon can always explain its recent
//!   queries.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use egraph_metrics::BindError;

use crate::telemetry::json::{self, Value};
use crate::types::VertexId;

use super::engine::{
    Query, QueryKind, QueryOutcome, QueryValues, ServeConfig, ServeEngine, ServeGraph,
};

/// A running `egraph serve` daemon: the batching engine plus the TCP
/// accept loop. Dropping it stops accepting, drains in-flight queries
/// and joins every connection thread.
pub struct ServeDaemon {
    addr: SocketAddr,
    engine: Arc<ServeEngine>,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for ServeDaemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeDaemon")
            .field("addr", &self.addr)
            .finish()
    }
}

impl ServeDaemon {
    /// Binds `addr` (port `0` for ephemeral), starts the engine (the
    /// resident layout build proceeds in the background; `/healthz`
    /// reports `loading` until it completes, then the chosen layout
    /// and its resident bytes) and begins accepting connections.
    ///
    /// # Errors
    ///
    /// [`BindError`] naming the offending address when the listener
    /// cannot be established.
    pub fn start(addr: &str, graph: ServeGraph, config: ServeConfig) -> Result<Self, BindError> {
        let wrap = |e: std::io::Error| BindError::new(addr, e);
        let listener = TcpListener::bind(addr).map_err(wrap)?;
        listener.set_nonblocking(true).map_err(wrap)?;
        let bound = listener.local_addr().map_err(wrap)?;
        let engine = Arc::new(ServeEngine::start(graph, config));
        let stop = Arc::new(AtomicBool::new(false));
        let accept = {
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("egraph-serve-accept".into())
                .spawn(move || accept_loop(listener, &engine, &stop))
                .map_err(wrap)?
        };
        Ok(Self {
            addr: bound,
            engine,
            stop: stop.clone(),
            accept: Some(accept),
        })
    }

    /// The bound address (resolves port 0 to the real ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether the engine finished building the CSR.
    pub fn ready(&self) -> bool {
        self.engine.ready()
    }

    /// Blocks until the engine is ready.
    pub fn wait_ready(&self) {
        self.engine.wait_ready();
    }

    /// Stops accepting connections, drains in-flight queries and joins
    /// the accept loop.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServeDaemon {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(listener: TcpListener, engine: &Arc<ServeEngine>, stop: &Arc<AtomicBool>) {
    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                let engine = Arc::clone(engine);
                let stop = Arc::clone(stop);
                if let Ok(handle) = std::thread::Builder::new()
                    .name("egraph-serve-conn".into())
                    .spawn(move || {
                        let _ = handle_connection(stream, &engine, &stop);
                    })
                {
                    connections.push(handle);
                }
                connections.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    for handle in connections {
        let _ = handle.join();
    }
}

fn handle_connection(
    stream: TcpStream,
    engine: &ServeEngine,
    stop: &AtomicBool,
) -> std::io::Result<()> {
    // A finite read timeout lets the handler notice `stop` between
    // requests from an idle client.
    stream.set_read_timeout(Some(Duration::from_millis(250)))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        if stop.load(Ordering::Relaxed) {
            return Ok(());
        }
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()), // client closed
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(e) => return Err(e),
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        // HTTP probes reuse the query port: answer one request and
        // close, exactly what a load balancer (or curl) expects.
        if trimmed.starts_with("GET ") {
            let path = trimmed.split_whitespace().nth(1).unwrap_or("/healthz");
            let (status, content_type, body) = http_get(path, engine);
            let response = format!(
                "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
                body.len()
            );
            writer.write_all(response.as_bytes())?;
            return writer.flush();
        }
        let response = answer(trimmed, engine);
        writer.write_all(response.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
    }
}

const TEXT_PLAIN: &str = "text/plain; charset=utf-8";

/// Routes one HTTP GET on the query port:
/// `(status line, content type, body)`.
fn http_get(path: &str, engine: &ServeEngine) -> (&'static str, &'static str, String) {
    let (route, params) = match path.split_once('?') {
        Some((route, params)) => (route, params),
        None => (path, ""),
    };
    match route {
        "/healthz" | "/" => {
            if engine.ready() {
                (
                    "200 OK",
                    TEXT_PLAIN,
                    format!(
                        "ok layout={} resident_bytes={} queue_depth={} inflight={} epoch={} pending_ops={}\n",
                        engine.layout_name(),
                        engine.resident_bytes(),
                        engine.queue_depth(),
                        engine.inflight(),
                        engine.epoch(),
                        engine.pending_ops()
                    ),
                )
            } else {
                ("503 Service Unavailable", TEXT_PLAIN, "loading\n".into())
            }
        }
        "/debug/queries" => {
            let n = params
                .split('&')
                .find_map(|p| p.strip_prefix("n="))
                .map_or(Ok(64), str::parse::<usize>);
            match n {
                Ok(n) => (
                    "200 OK",
                    "application/x-ndjson",
                    engine.journal().dump_ndjson(n),
                ),
                Err(_) => (
                    "400 Bad Request",
                    TEXT_PLAIN,
                    "query parameter n must be a non-negative integer\n".into(),
                ),
            }
        }
        _ => (
            "404 Not Found",
            TEXT_PLAIN,
            "not found (try /healthz or /debug/queries?n=K)\n".into(),
        ),
    }
}

/// Parses one request line and produces the response line (no trailing
/// newline).
fn answer(line: &str, engine: &ServeEngine) -> String {
    if let Some(response) = answer_update(line, engine) {
        return response;
    }
    let (id, parsed) = match parse_request(line) {
        Ok(x) => x,
        Err((id, msg)) => return error_response(&id, &msg),
    };
    let (query, want_values) = parsed;
    let rx = match engine.submit(query) {
        Ok(rx) => rx,
        Err(e) => return error_response(&id, &e.to_string()),
    };
    match rx.recv() {
        Ok(outcome) => ok_response(&id, query, &outcome, want_values),
        Err(_) => error_response(&id, "engine shut down before the query completed"),
    }
}

/// Handles a graph-mutation line (one with an `op` field); `None`
/// routes the line to the query path.
fn answer_update(line: &str, engine: &ServeEngine) -> Option<String> {
    let value = json::parse(line).ok()?;
    let obj = value.as_object()?;
    let field = |name: &str| obj.iter().find(|(k, _)| k == name).map(|(_, v)| v);
    let op = field("op").and_then(Value::as_str)?;
    let id = match field("id") {
        Some(Value::Number(n)) => json::number(*n),
        Some(Value::String(s)) => json::string(s),
        _ => "null".to_string(),
    };
    if op == "compact" {
        let c = engine.compact();
        return Some(format!(
            "{{\"id\":{id},\"ok\":true,\"op\":\"compact\",\"epoch\":{},\"merged_ops\":{},\"resident_bytes\":{}}}",
            c.epoch, c.merged_ops, c.resident_bytes
        ));
    }
    // insert/delete lines (and unknown ops, which come back as the
    // typed parse error) are handed to the engine verbatim.
    Some(match engine.apply_update(line) {
        Ok(applied) => format!(
            "{{\"id\":{id},\"ok\":true,\"op\":\"update\",\"applied\":{applied},\"pending\":{}}}",
            engine.pending_ops()
        ),
        Err(e) => error_response(&id, &e.to_string()),
    })
}

/// `(id-as-json, ((query, want_values)))` or `(id-as-json, message)`.
#[allow(clippy::type_complexity)]
fn parse_request(line: &str) -> Result<(String, (Query, bool)), (String, String)> {
    let value = json::parse(line).map_err(|e| ("null".to_string(), format!("bad json: {e}")))?;
    let obj = match value.as_object() {
        Some(o) => o,
        None => {
            return Err((
                "null".to_string(),
                "request must be a json object".to_string(),
            ))
        }
    };
    let field = |name: &str| obj.iter().find(|(k, _)| k == name).map(|(_, v)| v);
    let id = match field("id") {
        Some(Value::Number(n)) => json::number(*n),
        Some(Value::String(s)) => json::string(s),
        _ => "null".to_string(),
    };
    let fail = |msg: String| (id.clone(), msg);
    let algo = field("algo")
        .and_then(Value::as_str)
        .ok_or_else(|| fail("missing field: algo".to_string()))?;
    let kind = match algo {
        "bfs" => QueryKind::Bfs,
        "sssp" => QueryKind::Sssp,
        "khop" => QueryKind::KHop,
        other => {
            return Err(fail(format!(
                "unknown algo '{other}' (expected bfs, sssp or khop)"
            )))
        }
    };
    let source = field("source")
        .and_then(Value::as_number)
        .ok_or_else(|| fail("missing field: source".to_string()))?;
    if source < 0.0 || source.fract() != 0.0 || source > f64::from(u32::MAX) {
        return Err(fail(format!("source must be a vertex id, got {source}")));
    }
    let depth = match (kind, field("depth").and_then(Value::as_number)) {
        (QueryKind::KHop, Some(d)) if d >= 0.0 && d.fract() == 0.0 => d as u32,
        (QueryKind::KHop, Some(d)) => return Err(fail(format!("bad depth {d}"))),
        (QueryKind::KHop, None) => return Err(fail("khop needs a depth field".to_string())),
        _ => 0,
    };
    let want_values = matches!(field("values"), Some(Value::Bool(true)));
    Ok((
        id,
        (
            Query {
                kind,
                source: source as VertexId,
                depth,
            },
            want_values,
        ),
    ))
}

fn ok_response(id: &str, query: Query, outcome: &QueryOutcome, want_values: bool) -> String {
    let mut out = String::with_capacity(160);
    out.push_str(&format!(
        "{{\"id\":{id},\"ok\":true,\"algo\":{},\"source\":{},\"wave_size\":{},\"wait_us\":{},\"exec_us\":{},\"demux_us\":{},\"reachable\":{},\"checksum\":\"{:016x}\"",
        json::string(query.kind.name()),
        query.source,
        outcome.wave_size,
        (outcome.wait_seconds * 1e6).round() as u64,
        (outcome.exec_seconds * 1e6).round() as u64,
        (outcome.demux_seconds * 1e6).round() as u64,
        outcome.values.reachable(),
        outcome.checksum,
    ));
    if want_values {
        out.push_str(",\"values\":[");
        match &outcome.values {
            QueryValues::Levels(levels) => {
                for (i, &l) in levels.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if l == u32::MAX {
                        out.push_str("null");
                    } else {
                        out.push_str(&l.to_string());
                    }
                }
            }
            QueryValues::Dists(dists) => {
                for (i, &d) in dists.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&json::number(f64::from(d)));
                }
            }
        }
        out.push(']');
    }
    out.push('}');
    out
}

fn error_response(id: &str, message: &str) -> String {
    format!(
        "{{\"id\":{id},\"ok\":false,\"error\":{}}}",
        json::string(message)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Edge, EdgeList};
    use std::io::{BufRead, BufReader, Read, Write};
    use std::net::TcpStream;

    fn daemon_on_chain(nv: usize) -> ServeDaemon {
        let edges = (0..nv as u32 - 1).map(|v| Edge::new(v, v + 1)).collect();
        let graph = EdgeList::new(nv, edges).unwrap();
        ServeDaemon::start(
            "127.0.0.1:0",
            ServeGraph::Unweighted(graph),
            ServeConfig {
                threads: 1,
                metrics: false,
                ..ServeConfig::default()
            },
        )
        .expect("bind ephemeral port")
    }

    fn roundtrip(addr: std::net::SocketAddr, request: &str) -> Value {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(request.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        reader.read_line(&mut line).expect("response line");
        json::parse(line.trim()).expect("valid json response")
    }

    fn get_field<'a>(v: &'a Value, name: &str) -> &'a Value {
        v.as_object()
            .unwrap()
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .unwrap_or(&Value::Null)
    }

    #[test]
    fn daemon_answers_bfs_over_the_wire() {
        let daemon = daemon_on_chain(16);
        let response = roundtrip(
            daemon.addr(),
            r#"{"id":7,"algo":"bfs","source":0,"values":true}"#,
        );
        assert_eq!(get_field(&response, "ok"), &Value::Bool(true));
        assert_eq!(get_field(&response, "id").as_number(), Some(7.0));
        assert_eq!(get_field(&response, "reachable").as_number(), Some(16.0));
        let values = get_field(&response, "values").as_array().unwrap();
        assert_eq!(values[3].as_number(), Some(3.0));
        daemon.shutdown();
    }

    #[test]
    fn daemon_reports_errors_in_band() {
        let daemon = daemon_on_chain(4);
        let response = roundtrip(daemon.addr(), r#"{"id":"q1","algo":"sssp","source":0}"#);
        assert_eq!(get_field(&response, "ok"), &Value::Bool(false));
        assert!(get_field(&response, "error")
            .as_str()
            .unwrap()
            .contains("weighted"));
        let response = roundtrip(daemon.addr(), "not json at all");
        assert_eq!(get_field(&response, "ok"), &Value::Bool(false));
        daemon.shutdown();
    }

    fn http_get_raw(addr: std::net::SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
            .unwrap();
        let mut response = String::new();
        BufReader::new(stream)
            .read_to_string(&mut response)
            .unwrap();
        response
    }

    #[test]
    fn daemon_serves_healthz_on_the_query_port() {
        let daemon = daemon_on_chain(4);
        daemon.wait_ready();
        let response = http_get_raw(daemon.addr(), "/healthz");
        assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
        let body = response.rsplit("\r\n\r\n").next().unwrap();
        assert!(
            body.starts_with("ok layout=adj resident_bytes="),
            "{response}"
        );
        // Every key=value field parses; resident bytes are non-zero and
        // the idle daemon reports empty queue and no inflight queries.
        let field = |key: &str| -> u64 {
            body.split_whitespace()
                .find_map(|tok| tok.strip_prefix(&format!("{key}=")))
                .unwrap_or_else(|| panic!("missing {key} in {body}"))
                .parse()
                .unwrap_or_else(|_| panic!("{key} not numeric in {body}"))
        };
        assert!(field("resident_bytes") > 0, "{response}");
        assert_eq!(field("queue_depth"), 0, "{response}");
        assert_eq!(field("inflight"), 0, "{response}");
        daemon.shutdown();
    }

    #[test]
    fn debug_queries_returns_the_last_events_as_ndjson() {
        let daemon = daemon_on_chain(16);
        daemon.wait_ready();
        for source in 0..3 {
            let response = roundtrip(
                daemon.addr(),
                &format!(r#"{{"id":{source},"algo":"bfs","source":{source}}}"#),
            );
            assert_eq!(get_field(&response, "ok"), &Value::Bool(true));
        }
        // The journal deposit happens just after the result send; give
        // the scheduler a beat before dumping.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let body = loop {
            let response = http_get_raw(daemon.addr(), "/debug/queries?n=2");
            assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
            assert!(response.contains("application/x-ndjson"), "{response}");
            let body = response.rsplit("\r\n\r\n").next().unwrap().to_string();
            if body.lines().count() == 2 || std::time::Instant::now() >= deadline {
                break body;
            }
            std::thread::sleep(Duration::from_millis(5));
        };
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len(), 2, "{body}");
        for line in &lines {
            let event = json::parse(line).expect("ndjson line parses");
            assert_eq!(get_field(&event, "kind").as_str(), Some("bfs"));
            assert_eq!(get_field(&event, "outcome").as_str(), Some("ok"));
            assert!(get_field(&event, "total_us").as_number().is_some());
            // No update has run, so every wave executed against the
            // initially published snapshot (epoch 1).
            assert_eq!(get_field(&event, "epoch").as_number(), Some(1.0));
        }
        // Oldest first: the last line is the most recent query.
        let last = json::parse(lines[1]).unwrap();
        assert_eq!(get_field(&last, "source").as_number(), Some(2.0));
        daemon.shutdown();
    }

    #[test]
    fn update_ops_mutate_the_graph_over_the_wire() {
        let daemon = daemon_on_chain(16);
        daemon.wait_ready();

        // Insert a shortcut, confirm it is pending, compact, and watch
        // the answer (and the healthz epoch) change.
        let response = roundtrip(daemon.addr(), r#"{"id":1,"op":"insert","src":0,"dst":15}"#);
        assert_eq!(get_field(&response, "ok"), &Value::Bool(true));
        assert_eq!(get_field(&response, "applied").as_number(), Some(1.0));
        assert_eq!(get_field(&response, "pending").as_number(), Some(1.0));

        let response = roundtrip(daemon.addr(), r#"{"id":2,"op":"compact"}"#);
        assert_eq!(get_field(&response, "ok"), &Value::Bool(true));
        assert_eq!(get_field(&response, "epoch").as_number(), Some(2.0));
        assert_eq!(get_field(&response, "merged_ops").as_number(), Some(1.0));

        let response = roundtrip(
            daemon.addr(),
            r#"{"id":3,"algo":"bfs","source":0,"values":true}"#,
        );
        let values = get_field(&response, "values").as_array().unwrap();
        assert_eq!(values[15].as_number(), Some(1.0), "shortcut landed");

        let health = http_get_raw(daemon.addr(), "/healthz");
        let body = health.rsplit("\r\n\r\n").next().unwrap();
        assert!(body.contains("epoch=2"), "{health}");
        assert!(body.contains("pending_ops=0"), "{health}");

        // The post-compact query's flight-recorder event is stamped
        // with the epoch its wave executed against. The deposit trails
        // the result send, so poll briefly.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let response = http_get_raw(daemon.addr(), "/debug/queries?n=1");
            let body = response.rsplit("\r\n\r\n").next().unwrap().to_string();
            if let Some(line) = body.lines().last() {
                let event = json::parse(line).expect("ndjson line parses");
                if get_field(&event, "epoch").as_number() == Some(2.0) {
                    break;
                }
            }
            assert!(
                std::time::Instant::now() < deadline,
                "journal never showed an epoch-2 event: {body}"
            );
            std::thread::sleep(Duration::from_millis(5));
        }

        // Malformed and unknown ops come back as in-band typed errors.
        let response = roundtrip(daemon.addr(), r#"{"id":4,"op":"explode","src":0,"dst":1}"#);
        assert_eq!(get_field(&response, "ok"), &Value::Bool(false));
        assert!(get_field(&response, "error")
            .as_str()
            .unwrap()
            .contains("unknown op"));
        let response = roundtrip(daemon.addr(), r#"{"id":5,"op":"insert","src":0}"#);
        assert_eq!(get_field(&response, "ok"), &Value::Bool(false));
        daemon.shutdown();
    }

    #[test]
    fn unknown_paths_and_bad_parameters_get_http_errors() {
        let daemon = daemon_on_chain(4);
        daemon.wait_ready();
        let response = http_get_raw(daemon.addr(), "/nope");
        assert!(response.starts_with("HTTP/1.1 404"), "{response}");
        let response = http_get_raw(daemon.addr(), "/debug/queries?n=potato");
        assert!(response.starts_with("HTTP/1.1 400"), "{response}");
        daemon.shutdown();
    }
}

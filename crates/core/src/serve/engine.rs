//! The batching query engine: an admission queue, a scheduler thread
//! that groups pending same-algorithm queries into waves, and the
//! demultiplexed per-query results.
//!
//! Life of a query: [`ServeEngine::submit`] validates it, enqueues a
//! pending entry and wakes the scheduler. The scheduler waits up to the
//! configured batching window for more same-kind queries (or until
//! [`ServeConfig::max_wave`] are pending), extracts them as one wave,
//! runs the matching multi-source kernel from [`super::wave`] under the
//! engine's thread pool, and sends each lane's result back through the
//! per-query channel. Callers block on their receiver — typically one
//! connection-handler thread per client — so the engine is naturally
//! concurrent without any async machinery.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use egraph_parallel::ThreadPool;
use egraph_perf::{CounterKind, PerfCounters};

use crate::exec::ExecCtx;
use crate::layout::{
    AdjacencyList, CcsrList, DeltaBatch, DeltaError, DeltaList, DeltaLog, EdgeDirection, EpochCell,
    Grid, VertexLayout,
};
use crate::preprocess::{CcsrBuilder, CsrBuilder, GridBuilder, Strategy};
use crate::types::{Edge, EdgeList, VertexId, WEdge};
use crate::variant::{default_grid_side, Algo, Layout, VariantError};

use super::journal::{EventOutcome, QueryEvent, QueryJournal};
use super::wave::{multi_bfs, multi_bfs_grid, multi_sssp, multi_sssp_grid, MAX_WAVE};

/// Tuning knobs for the serve engine.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads for wave execution (0 = all hardware threads).
    pub threads: usize,
    /// Largest wave the scheduler forms; clamped to `1..=`[`MAX_WAVE`].
    pub max_wave: usize,
    /// How long an admitted query may wait for companions before its
    /// wave is launched anyway.
    pub batch_window: Duration,
    /// Publish per-query metrics on the global registry.
    pub metrics: bool,
    /// The resident layout waves traverse: [`Layout::Adjacency`]
    /// (default), [`Layout::Grid`] or [`Layout::Ccsr`].
    /// [`Layout::EdgeList`] has no servable index and panics at
    /// start-up.
    pub layout: Layout,
    /// Flight-recorder ring capacity in events (0 disables recording —
    /// only the overhead-measurement mode of `exp_serve_latency` does).
    pub journal_capacity: usize,
    /// Emit the full flight-recorder event on stderr for any query
    /// whose admission-to-demux latency reaches this threshold.
    pub slow_query: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            threads: 0,
            max_wave: MAX_WAVE,
            batch_window: Duration::from_millis(2),
            metrics: true,
            layout: Layout::Adjacency,
            journal_capacity: 1024,
            slow_query: None,
        }
    }
}

/// Which hardware counters the engine samples per executed wave — the
/// typed shape of graceful degradation: when a kind is unavailable its
/// wave histograms are simply not registered (never a panic), and the
/// reason is kept here for `/healthz`-style introspection.
#[derive(Debug, Clone)]
pub struct WavePerfStatus {
    /// Kinds sampled on every wave and exported as histograms.
    pub available: Vec<CounterKind>,
    /// Kinds that could not be opened, with the OS-level reason.
    pub unavailable: Vec<(CounterKind, String)>,
}

/// The counter kinds the wave sampler cares about (the paper's
/// cache-sharing argument needs misses + refs; instructions anchor the
/// work per wave).
const WAVE_KINDS: [CounterKind; 3] = [
    CounterKind::LlcLoadMisses,
    CounterKind::LlcLoads,
    CounterKind::Instructions,
];

/// The graph a serve engine answers queries about.
#[derive(Debug)]
pub enum ServeGraph {
    /// An unweighted edge list: BFS and k-hop queries only.
    Unweighted(EdgeList<Edge>),
    /// A weighted edge list: additionally serves SSSP.
    Weighted(EdgeList<WEdge>),
}

impl ServeGraph {
    fn num_vertices(&self) -> usize {
        match self {
            ServeGraph::Unweighted(g) => g.num_vertices(),
            ServeGraph::Weighted(g) => g.num_vertices(),
        }
    }

    fn weighted(&self) -> bool {
        matches!(self, ServeGraph::Weighted(_))
    }
}

/// The resident layout the engine traverses, built at start-up and
/// rebuilt by [`ServeEngine::compact`] (published via an epoch flip so
/// in-flight waves keep their snapshot).
enum Resident {
    AdjUnweighted(AdjacencyList<Edge>),
    AdjWeighted(AdjacencyList<WEdge>),
    GridUnweighted(Grid<Edge>),
    GridWeighted(Grid<WEdge>),
    CcsrUnweighted(CcsrList<Edge>),
    CcsrWeighted(CcsrList<WEdge>),
    DeltaUnweighted(DeltaList<Edge>),
    DeltaWeighted(DeltaList<WEdge>),
}

impl Resident {
    /// Builds the configured layout (radix sort, the §5 pick for large
    /// inputs; neighbor-sorted so adj and ccsr traverse identical
    /// orders).
    fn build_unweighted(g: &EdgeList<Edge>, layout: Layout) -> Self {
        match layout {
            Layout::Adjacency => Resident::AdjUnweighted(
                CsrBuilder::new(Strategy::RadixSort, EdgeDirection::Out)
                    .sort_neighbors(true)
                    .build(g),
            ),
            Layout::Grid => Resident::GridUnweighted(
                GridBuilder::new(Strategy::RadixSort)
                    .side(default_grid_side(g.num_vertices()))
                    .build(g),
            ),
            Layout::Ccsr => Resident::CcsrUnweighted(
                CcsrBuilder::new(Strategy::RadixSort, EdgeDirection::Out).build(g),
            ),
            Layout::Delta => {
                let (out, inc) = CsrBuilder::new(Strategy::RadixSort, EdgeDirection::Out)
                    .sort_neighbors(true)
                    .build(g)
                    .into_parts();
                Resident::DeltaUnweighted(DeltaList::new(out, inc, &DeltaLog::new()))
            }
            Layout::EdgeList => {
                panic!("the edge layout has no servable per-vertex index; use adj, grid or ccsr")
            }
        }
    }

    fn build_weighted(g: &EdgeList<WEdge>, layout: Layout) -> Self {
        match layout {
            Layout::Adjacency => Resident::AdjWeighted(
                CsrBuilder::new(Strategy::RadixSort, EdgeDirection::Out)
                    .sort_neighbors(true)
                    .build(g),
            ),
            Layout::Grid => Resident::GridWeighted(
                GridBuilder::new(Strategy::RadixSort)
                    .side(default_grid_side(g.num_vertices()))
                    .build(g),
            ),
            Layout::Ccsr => Resident::CcsrWeighted(
                CcsrBuilder::new(Strategy::RadixSort, EdgeDirection::Out).build(g),
            ),
            Layout::Delta => {
                let (out, inc) = CsrBuilder::new(Strategy::RadixSort, EdgeDirection::Out)
                    .sort_neighbors(true)
                    .build(g)
                    .into_parts();
                Resident::DeltaWeighted(DeltaList::new(out, inc, &DeltaLog::new()))
            }
            Layout::EdgeList => {
                panic!("the edge layout has no servable per-vertex index; use adj, grid or ccsr")
            }
        }
    }

    /// Resident heap bytes of the built layout — reported by
    /// `/healthz`.
    fn resident_bytes(&self) -> u64 {
        match self {
            Resident::AdjUnweighted(a) => a.resident_bytes(),
            Resident::AdjWeighted(a) => a.resident_bytes(),
            Resident::GridUnweighted(g) => g.resident_bytes(),
            Resident::GridWeighted(g) => g.resident_bytes(),
            Resident::CcsrUnweighted(c) => c.resident_bytes(),
            Resident::CcsrWeighted(c) => c.resident_bytes(),
            Resident::DeltaUnweighted(d) => d.resident_bytes(),
            Resident::DeltaWeighted(d) => d.resident_bytes(),
        }
    }
}

/// The authoritative graph behind the resident layout: the merged edge
/// array plus the pending (applied but not yet compacted) delta log.
/// Updates lock this; query waves never do — they read the epoch cell.
enum MutableGraph {
    Unweighted {
        edges: EdgeList<Edge>,
        log: DeltaLog<Edge>,
    },
    Weighted {
        edges: EdgeList<WEdge>,
        log: DeltaLog<WEdge>,
    },
}

impl MutableGraph {
    fn new(graph: ServeGraph) -> Self {
        match graph {
            ServeGraph::Unweighted(edges) => MutableGraph::Unweighted {
                edges,
                log: DeltaLog::new(),
            },
            ServeGraph::Weighted(edges) => MutableGraph::Weighted {
                edges,
                log: DeltaLog::new(),
            },
        }
    }

    fn pending_ops(&self) -> usize {
        match self {
            MutableGraph::Unweighted { log, .. } => log.len(),
            MutableGraph::Weighted { log, .. } => log.len(),
        }
    }

    /// Parses and appends an NDJSON delta stream; all-or-nothing — a
    /// malformed or out-of-range line rejects the whole text.
    fn apply(&mut self, ndjson: &str) -> Result<usize, DeltaError> {
        match self {
            MutableGraph::Unweighted { edges, log } => {
                let batch = DeltaBatch::<Edge>::parse_ndjson(ndjson)?;
                batch.validate(edges.num_vertices())?;
                log.append(&batch);
                Ok(batch.len())
            }
            MutableGraph::Weighted { edges, log } => {
                let batch = DeltaBatch::<WEdge>::parse_ndjson(ndjson)?;
                batch.validate(edges.num_vertices())?;
                log.append(&batch);
                Ok(batch.len())
            }
        }
    }

    /// Replays the pending log into the edge array and clears it,
    /// returning how many ops were merged.
    fn merge_pending(&mut self) -> usize {
        match self {
            MutableGraph::Unweighted { edges, log } => {
                let merged_ops = log.len();
                if merged_ops > 0 {
                    *edges = log.merge_into(edges);
                    *log = DeltaLog::new();
                }
                merged_ops
            }
            MutableGraph::Weighted { edges, log } => {
                let merged_ops = log.len();
                if merged_ops > 0 {
                    *edges = log.merge_into(edges);
                    *log = DeltaLog::new();
                }
                merged_ops
            }
        }
    }

    /// Builds the resident layout of the *merged* graph (current edges,
    /// pending log ignored — callers merge first).
    fn build_resident(&self, layout: Layout) -> Resident {
        match self {
            MutableGraph::Unweighted { edges, .. } => Resident::build_unweighted(edges, layout),
            MutableGraph::Weighted { edges, .. } => Resident::build_weighted(edges, layout),
        }
    }
}

/// What [`ServeEngine::compact`] reports back to the caller (and the
/// daemon puts on the wire).
#[derive(Debug, Clone, Copy)]
pub struct ServeCompaction {
    /// The epoch of the published snapshot (unchanged when the log was
    /// empty).
    pub epoch: u64,
    /// How many delta ops were merged into the new snapshot.
    pub merged_ops: usize,
    /// Resident heap bytes of the (re)built layout.
    pub resident_bytes: u64,
    /// Wall seconds spent merging and rebuilding.
    pub seconds: f64,
}

/// The algorithm of a point query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryKind {
    /// Full BFS levels from a source.
    Bfs,
    /// Single-source shortest-path distances (weighted graphs only).
    Sssp,
    /// BFS levels truncated at a depth bound.
    KHop,
}

impl QueryKind {
    /// The wire / metrics name.
    pub fn name(&self) -> &'static str {
        match self {
            QueryKind::Bfs => "bfs",
            QueryKind::Sssp => "sssp",
            QueryKind::KHop => "khop",
        }
    }

    /// Queries of different kinds never share a wave; k-hop queries
    /// with different depth bounds may (the kernel runs to the deepest
    /// bound and each lane is truncated afterwards).
    fn batch_key(&self) -> u8 {
        match self {
            QueryKind::Bfs => 0,
            QueryKind::Sssp => 1,
            QueryKind::KHop => 2,
        }
    }
}

/// One point query.
#[derive(Debug, Clone, Copy)]
pub struct Query {
    /// The algorithm to run.
    pub kind: QueryKind,
    /// The source vertex.
    pub source: VertexId,
    /// Depth bound for [`QueryKind::KHop`]; ignored otherwise.
    pub depth: u32,
}

/// Per-query result values.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryValues {
    /// BFS / k-hop levels, `u32::MAX` = unreached.
    Levels(Vec<u32>),
    /// SSSP distances, `f32::INFINITY` = unreachable.
    Dists(Vec<f32>),
}

impl QueryValues {
    /// Number of vertices reached from the source.
    pub fn reachable(&self) -> usize {
        match self {
            QueryValues::Levels(l) => l.iter().filter(|&&x| x != u32::MAX).count(),
            QueryValues::Dists(d) => d.iter().filter(|&&x| x.is_finite()).count(),
        }
    }

    /// FNV-1a 64 checksum over the raw value bits in vertex order —
    /// the integration tests and the qps experiment compare this
    /// against the single-query baseline.
    pub fn checksum(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |word: u32| {
            for byte in word.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(PRIME);
            }
        };
        match self {
            QueryValues::Levels(l) => l.iter().for_each(|&x| eat(x)),
            QueryValues::Dists(d) => d.iter().for_each(|&x| eat(x.to_bits())),
        }
        h
    }
}

/// What a completed query hands back to its submitter.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The per-vertex answer.
    pub values: QueryValues,
    /// FNV-1a checksum of `values` ([`QueryValues::checksum`]),
    /// computed once at demux so the daemon and the flight recorder
    /// agree without rehashing.
    pub checksum: u64,
    /// How many queries shared this wave's edge scan.
    pub wave_size: usize,
    /// Seconds spent queued before the wave launched.
    pub wait_seconds: f64,
    /// Seconds of kernel execution for the whole wave.
    pub exec_seconds: f64,
    /// Seconds between kernel completion and this query's result send
    /// (k-hop truncation, checksumming and earlier lanes' demux).
    pub demux_seconds: f64,
}

struct Pending {
    id: u64,
    query: Query,
    enqueued: Instant,
    tx: mpsc::Sender<QueryOutcome>,
}

#[derive(Default)]
struct Admission {
    queue: VecDeque<Pending>,
    stopping: bool,
}

struct Shared {
    admission: Mutex<Admission>,
    wake: Condvar,
    inflight: AtomicU64,
}

/// The three lifecycle-stage histograms (plus the end-to-end total)
/// for one `{algo, layout}` label set.
struct StageHists {
    queue: egraph_metrics::Histogram,
    exec: egraph_metrics::Histogram,
    demux: egraph_metrics::Histogram,
    total: egraph_metrics::Histogram,
}

impl StageHists {
    fn new(algo: &'static str, layout: &'static str) -> Self {
        let r = egraph_metrics::global();
        let labels: &[(&str, &str)] = &[("algo", algo), ("layout", layout)];
        Self {
            queue: r.histogram_seconds_with_labels(
                "egraph_serve_queue_seconds",
                "Admission-queue wait before the query's wave launched.",
                labels,
            ),
            exec: r.histogram_seconds_with_labels(
                "egraph_serve_exec_seconds",
                "Multi-source kernel execution for the query's wave.",
                labels,
            ),
            demux: r.histogram_seconds_with_labels(
                "egraph_serve_demux_seconds",
                "Demux/write-back from kernel completion to the result send.",
                labels,
            ),
            total: r.histogram_seconds_with_labels(
                "egraph_serve_query_seconds",
                "End-to-end per-query latency (admission to demux).",
                labels,
            ),
        }
    }
}

/// Per-wave hardware-counter histograms for the kinds that opened.
/// Each field is `None` when its counter is unavailable — the series
/// then never appears on `/metrics`, the typed graceful degradation
/// the batch path already uses.
struct WaveCounterHists {
    llc_misses: Option<[egraph_metrics::Histogram; 3]>,
    llc_loads: Option<[egraph_metrics::Histogram; 3]>,
    instructions: Option<[egraph_metrics::Histogram; 3]>,
}

impl WaveCounterHists {
    fn new(status: &WavePerfStatus, layout: &'static str) -> Self {
        let per_algo = |name: &'static str, help: &'static str, lo: i32, hi: i32| {
            [QueryKind::Bfs, QueryKind::Sssp, QueryKind::KHop].map(|k| {
                egraph_metrics::global().histogram_with_bounds(
                    name,
                    help,
                    &[("algo", k.name()), ("layout", layout)],
                    egraph_metrics::Histogram::log2_bounds(lo, hi),
                )
            })
        };
        let open = |kind: CounterKind| status.available.contains(&kind);
        Self {
            llc_misses: open(CounterKind::LlcLoadMisses).then(|| {
                per_algo(
                    "egraph_serve_wave_llc_misses",
                    "Last-level-cache load misses per executed wave.",
                    10,
                    34,
                )
            }),
            llc_loads: open(CounterKind::LlcLoads).then(|| {
                per_algo(
                    "egraph_serve_wave_llc_loads",
                    "Last-level-cache load references per executed wave.",
                    10,
                    34,
                )
            }),
            instructions: open(CounterKind::Instructions).then(|| {
                per_algo(
                    "egraph_serve_wave_instructions",
                    "Instructions retired per executed wave.",
                    16,
                    40,
                )
            }),
        }
    }

    /// A disabled set (metrics off): nothing registered, nothing observed.
    fn disabled() -> Self {
        Self {
            llc_misses: None,
            llc_loads: None,
            instructions: None,
        }
    }

    fn observe(&self, sample: &egraph_perf::CounterSample, algo_idx: usize) {
        let pairs = [
            (&self.llc_misses, CounterKind::LlcLoadMisses),
            (&self.llc_loads, CounterKind::LlcLoads),
            (&self.instructions, CounterKind::Instructions),
        ];
        for (hists, kind) in pairs {
            if let (Some(hists), Some(value)) = (hists, sample.get(kind)) {
                hists[algo_idx].observe(value as f64);
            }
        }
    }
}

struct Metrics {
    queries_total: [egraph_metrics::Counter; 3],
    /// Stage histograms indexed by [`QueryKind::batch_key`].
    stages: [StageHists; 3],
    wave_size: egraph_metrics::Histogram,
    waves_total: egraph_metrics::Counter,
    inflight: egraph_metrics::Gauge,
    queue_depth: egraph_metrics::Gauge,
}

impl Metrics {
    fn new(layout: &'static str) -> Self {
        let r = egraph_metrics::global();
        let kinds = [QueryKind::Bfs, QueryKind::Sssp, QueryKind::KHop];
        let queries_total = kinds.map(|k| {
            r.counter_with_labels(
                "egraph_serve_queries_total",
                "Point queries answered by the serve engine.",
                &[("algo", k.name())],
            )
        });
        Self {
            queries_total,
            stages: kinds.map(|k| StageHists::new(k.name(), layout)),
            wave_size: r.histogram_with_bounds(
                "egraph_serve_wave_size",
                "Queries sharing one multi-source wave.",
                &[],
                vec![1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0],
            ),
            waves_total: r.counter(
                "egraph_serve_waves_total",
                "Multi-source waves executed by the serve engine.",
            ),
            inflight: r.gauge(
                "egraph_serve_inflight",
                "Queries admitted but not yet answered.",
            ),
            queue_depth: r.gauge(
                "egraph_serve_queue_depth",
                "Queries waiting in the admission queue.",
            ),
        }
    }
}

/// The graph state shared between the engine handle (updates,
/// compaction) and the scheduler (wave execution): the mutable merged
/// graph plus the epoch-published resident snapshot. Waves only touch
/// the epoch cell, so updates and compaction never block readers.
struct GraphState {
    mutated: Mutex<MutableGraph>,
    resident: EpochCell<Option<Resident>>,
}

/// A running batched-query engine. Dropping it drains the admission
/// queue and joins the scheduler.
pub struct ServeEngine {
    shared: Arc<Shared>,
    state: Arc<GraphState>,
    scheduler: Option<JoinHandle<()>>,
    num_vertices: usize,
    weighted: bool,
    layout: Layout,
    resident_bytes: Arc<AtomicU64>,
    ready: Arc<AtomicBool>,
    journal: Arc<QueryJournal>,
    wave_perf: Arc<OnceLock<WavePerfStatus>>,
    next_id: AtomicU64,
}

impl std::fmt::Debug for ServeEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeEngine")
            .field("num_vertices", &self.num_vertices)
            .field("weighted", &self.weighted)
            .field("layout", &self.layout)
            .finish()
    }
}

impl ServeEngine {
    /// Builds the configured read-optimized layout (radix sort, the §5
    /// pick for large inputs) and starts the scheduler thread.
    ///
    /// # Panics
    ///
    /// Panics if [`ServeConfig::layout`] is [`Layout::EdgeList`], which
    /// has no servable per-vertex index.
    pub fn start(graph: ServeGraph, config: ServeConfig) -> Self {
        assert!(
            config.layout != Layout::EdgeList,
            "the edge layout has no servable per-vertex index; use adj, grid or ccsr"
        );
        let num_vertices = graph.num_vertices();
        let weighted = graph.weighted();
        let layout = config.layout;
        let max_wave = config.max_wave.clamp(1, MAX_WAVE);
        let shared = Arc::new(Shared {
            admission: Mutex::new(Admission::default()),
            wake: Condvar::new(),
            inflight: AtomicU64::new(0),
        });
        let ready = Arc::new(AtomicBool::new(false));
        let resident_bytes = Arc::new(AtomicU64::new(0));
        let journal = Arc::new(QueryJournal::new(config.journal_capacity));
        let wave_perf = Arc::new(OnceLock::new());
        let state = Arc::new(GraphState {
            mutated: Mutex::new(MutableGraph::new(graph)),
            resident: EpochCell::new(None),
        });
        let scheduler = {
            let shared = Arc::clone(&shared);
            let state = Arc::clone(&state);
            let ready = Arc::clone(&ready);
            let resident_bytes = Arc::clone(&resident_bytes);
            let journal = Arc::clone(&journal);
            let wave_perf = Arc::clone(&wave_perf);
            let config = ServeConfig { max_wave, ..config };
            std::thread::Builder::new()
                .name("egraph-serve-sched".into())
                .spawn(move || {
                    scheduler_loop(
                        &state,
                        config,
                        &shared,
                        &ready,
                        &resident_bytes,
                        &journal,
                        &wave_perf,
                    )
                })
                .expect("spawn serve scheduler")
        };
        Self {
            shared,
            state,
            scheduler: Some(scheduler),
            num_vertices,
            weighted,
            layout,
            resident_bytes,
            ready,
            journal,
            wave_perf,
            next_id: AtomicU64::new(1),
        }
    }

    /// Number of vertices in the served graph.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Whether the served graph carries edge weights.
    pub fn weighted(&self) -> bool {
        self.weighted
    }

    /// The CLI spelling of the resident layout.
    pub fn layout_name(&self) -> &'static str {
        self.layout.name()
    }

    /// Resident heap bytes of the built layout; `0` until
    /// [`Self::ready`] turns true.
    pub fn resident_bytes(&self) -> u64 {
        self.resident_bytes.load(Ordering::Acquire)
    }

    /// Whether the resident layout build finished and waves can launch.
    pub fn ready(&self) -> bool {
        self.ready.load(Ordering::Acquire)
    }

    /// Blocks until the engine is ready (the layout build completed).
    pub fn wait_ready(&self) {
        while !self.ready() {
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// Queries admitted but not yet answered.
    pub fn inflight(&self) -> u64 {
        self.shared.inflight.load(Ordering::Relaxed)
    }

    /// Queries waiting in the admission queue right now (inflight minus
    /// the wave currently executing) — `/healthz` reports this so load
    /// balancers can shed before saturation.
    pub fn queue_depth(&self) -> u64 {
        let admission = self.shared.admission.lock().expect("admission poisoned");
        admission.queue.len() as u64
    }

    /// The flight recorder: the most recent
    /// [`ServeConfig::journal_capacity`] query events.
    pub fn journal(&self) -> &QueryJournal {
        &self.journal
    }

    /// The epoch of the published resident snapshot: `0` while loading,
    /// `1` after the initial build, `+1` per [`Self::compact`] that
    /// merged a non-empty log. `/healthz` reports this so clients can
    /// confirm an update stream actually landed.
    pub fn epoch(&self) -> u64 {
        self.state.resident.epoch()
    }

    /// Delta ops applied but not yet compacted into the resident
    /// snapshot.
    pub fn pending_ops(&self) -> usize {
        let mutated = self.state.mutated.lock().expect("mutated poisoned");
        mutated.pending_ops()
    }

    /// Parses an NDJSON edge-delta stream and appends it to the pending
    /// log. All-or-nothing: a malformed or out-of-range line rejects the
    /// whole text and leaves the log untouched. The resident snapshot is
    /// unchanged until [`Self::compact`] publishes the merge.
    ///
    /// # Errors
    ///
    /// The typed [`DeltaError`] naming the offending line.
    pub fn apply_update(&self, ndjson: &str) -> Result<usize, DeltaError> {
        let mut mutated = self.state.mutated.lock().expect("mutated poisoned");
        mutated.apply(ndjson)
    }

    /// Merges the pending delta log into the graph, rebuilds the
    /// resident layout and publishes it with an epoch bump. In-flight
    /// waves keep the snapshot they loaded; the next wave sees the new
    /// one. An empty log is a no-op that keeps the current epoch.
    pub fn compact(&self) -> ServeCompaction {
        let mut mutated = self.state.mutated.lock().expect("mutated poisoned");
        let merged_ops = mutated.merge_pending();
        if merged_ops == 0 {
            return ServeCompaction {
                epoch: self.state.resident.epoch(),
                merged_ops: 0,
                resident_bytes: self.resident_bytes(),
                seconds: 0.0,
            };
        }
        let (resident, seconds) = crate::metrics::timed(|| mutated.build_resident(self.layout));
        let resident_bytes = resident.resident_bytes();
        let epoch = self.state.resident.publish(Some(resident));
        self.resident_bytes.store(resident_bytes, Ordering::Release);
        ServeCompaction {
            epoch,
            merged_ops,
            resident_bytes,
            seconds,
        }
    }

    /// Which hardware counters the engine samples per wave, with typed
    /// per-kind reasons when unavailable. `None` until the scheduler
    /// finished probing (i.e. until [`Self::ready`]).
    pub fn wave_perf(&self) -> Option<&WavePerfStatus> {
        self.wave_perf.get()
    }

    /// Admits a query; the returned receiver yields its outcome once
    /// the wave it joined completes. Dropping the receiver mid-flight
    /// is fine — the wave still runs for its other lanes and the lost
    /// lane's send is discarded.
    ///
    /// # Errors
    ///
    /// [`VariantError::RootOutOfRange`] for a bad source and
    /// [`VariantError::NeedsWeights`] for SSSP on an unweighted graph.
    pub fn submit(&self, query: Query) -> Result<mpsc::Receiver<QueryOutcome>, VariantError> {
        if (query.source as usize) >= self.num_vertices {
            return Err(VariantError::RootOutOfRange {
                root: query.source,
                num_vertices: self.num_vertices,
            });
        }
        if query.kind == QueryKind::Sssp && !self.weighted {
            return Err(VariantError::NeedsWeights(Algo::Sssp));
        }
        let (tx, rx) = mpsc::channel();
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        {
            let mut admission = self.shared.admission.lock().expect("admission poisoned");
            admission.queue.push_back(Pending {
                id,
                query,
                enqueued: Instant::now(),
                tx,
            });
        }
        self.shared.inflight.fetch_add(1, Ordering::Relaxed);
        self.shared.wake.notify_all();
        Ok(rx)
    }

    /// Stops the scheduler after draining every admitted query.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        {
            let mut admission = self.shared.admission.lock().expect("admission poisoned");
            admission.stopping = true;
        }
        self.shared.wake.notify_all();
        if let Some(t) = self.scheduler.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServeEngine {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn scheduler_loop(
    state: &GraphState,
    config: ServeConfig,
    shared: &Shared,
    ready: &AtomicBool,
    resident_bytes: &AtomicU64,
    journal: &QueryJournal,
    wave_perf: &OnceLock<WavePerfStatus>,
) {
    // The graph is loaded into a read-optimized layout and published at
    // epoch 1; compaction republishes at later epochs, and each wave
    // loads whichever snapshot is current when it launches.
    let resident = {
        let mutated = state.mutated.lock().expect("mutated poisoned");
        mutated.build_resident(config.layout)
    };
    resident_bytes.store(resident.resident_bytes(), Ordering::Release);
    state.resident.publish(Some(resident));
    let threads = if config.threads == 0 {
        egraph_parallel::pool::default_num_threads()
    } else {
        config.threads
    };
    // Counters must open before the pool spawns its workers: the perf
    // fds are inherited (`inherit=1`), so only threads created after
    // `open` are covered — the same ordering the batch path uses.
    let perf = PerfCounters::open();
    let perf_status = WavePerfStatus {
        available: perf
            .available_kinds()
            .into_iter()
            .filter(|k| WAVE_KINDS.contains(k))
            .collect(),
        unavailable: perf
            .unavailable_reasons()
            .into_iter()
            .filter(|(k, _)| WAVE_KINDS.contains(k))
            .collect(),
    };
    let pool = ThreadPool::new(threads);
    let metrics = config.metrics.then(|| Metrics::new(config.layout.name()));
    let wave_counters = if config.metrics {
        WaveCounterHists::new(&perf_status, config.layout.name())
    } else {
        WaveCounterHists::disabled()
    };
    let _ = wave_perf.set(perf_status);
    ready.store(true, Ordering::Release);

    let runner = WaveRunner {
        pool: &pool,
        metrics: metrics.as_ref(),
        wave_counters: &wave_counters,
        perf: &perf,
        journal,
        slow_query: config.slow_query,
        shared,
    };
    let mut wave_id = 0u64;
    loop {
        let wave = {
            let mut admission = shared.admission.lock().expect("admission poisoned");
            // Sleep until there is work or we are told to stop.
            while admission.queue.is_empty() {
                if admission.stopping {
                    return;
                }
                admission = shared.wake.wait(admission).expect("admission poisoned");
            }
            // Batching window: give companions of the oldest query a
            // chance to arrive, up to a full wave of its kind.
            let key = admission.queue[0].query.kind.batch_key();
            let deadline = admission.queue[0].enqueued + config.batch_window;
            loop {
                let same: usize = admission
                    .queue
                    .iter()
                    .filter(|p| p.query.kind.batch_key() == key)
                    .count();
                if same >= config.max_wave || admission.stopping {
                    break;
                }
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (next, timeout) = shared
                    .wake
                    .wait_timeout(admission, deadline - now)
                    .expect("admission poisoned");
                admission = next;
                if timeout.timed_out() {
                    break;
                }
            }
            // Extract up to max_wave queries of the chosen kind, in
            // admission order, leaving the rest queued.
            let mut wave = Vec::with_capacity(config.max_wave);
            let mut rest = VecDeque::with_capacity(admission.queue.len());
            for pending in admission.queue.drain(..) {
                if wave.len() < config.max_wave && pending.query.kind.batch_key() == key {
                    wave.push(pending);
                } else {
                    rest.push_back(pending);
                }
            }
            admission.queue = rest;
            wave
        };
        // Pin this wave to the currently published snapshot; a compact
        // racing us flips the pointer for *later* waves only. The epoch
        // read with it stamps the wave's journal events.
        let (snapshot, epoch) = state.resident.load_with_epoch();
        let resident = snapshot
            .as_ref()
            .as_ref()
            .expect("resident published before waves launch");
        runner.run(resident, wave, wave_id, epoch);
        wave_id += 1;
    }
}

/// Everything one wave execution needs, bundled so the scheduler loop
/// stays readable.
struct WaveRunner<'a> {
    pool: &'a ThreadPool,
    metrics: Option<&'a Metrics>,
    wave_counters: &'a WaveCounterHists,
    perf: &'a PerfCounters,
    journal: &'a QueryJournal,
    slow_query: Option<Duration>,
    shared: &'a Shared,
}

impl WaveRunner<'_> {
    fn run(&self, resident: &Resident, wave: Vec<Pending>, wave_id: u64, epoch: u64) {
        let metrics = self.metrics;
        let journal = self.journal;
        let kind = wave[0].query.kind;
        let algo_idx = kind.batch_key() as usize;
        let sources: Vec<VertexId> = wave.iter().map(|p| p.query.source).collect();
        let max_depth = match kind {
            QueryKind::Bfs | QueryKind::Sssp => u32::MAX,
            QueryKind::KHop => wave.iter().map(|p| p.query.depth).max().unwrap_or(0),
        };
        let ctx = ExecCtx::new(self.pool);
        let phase = self.perf.phase();
        let started = Instant::now();
        let mut results: Vec<QueryValues> = ctx.scoped(|| match (kind, resident) {
            (QueryKind::Sssp, Resident::AdjWeighted(adj)) => multi_sssp(adj.out(), &sources, &ctx)
                .into_iter()
                .map(QueryValues::Dists)
                .collect(),
            (QueryKind::Sssp, Resident::CcsrWeighted(ccsr)) => {
                multi_sssp(ccsr.out(), &sources, &ctx)
                    .into_iter()
                    .map(QueryValues::Dists)
                    .collect()
            }
            (QueryKind::Sssp, Resident::GridWeighted(grid)) => {
                multi_sssp_grid(grid, &sources, &ctx)
                    .into_iter()
                    .map(QueryValues::Dists)
                    .collect()
            }
            (QueryKind::Sssp, Resident::DeltaWeighted(dl)) => multi_sssp(dl.out(), &sources, &ctx)
                .into_iter()
                .map(QueryValues::Dists)
                .collect(),
            (
                QueryKind::Sssp,
                Resident::AdjUnweighted(_)
                | Resident::GridUnweighted(_)
                | Resident::CcsrUnweighted(_)
                | Resident::DeltaUnweighted(_),
            ) => {
                unreachable!("submit rejects sssp on unweighted graphs")
            }
            (_, Resident::AdjUnweighted(adj)) => multi_bfs(adj.out(), &sources, max_depth, &ctx)
                .into_iter()
                .map(QueryValues::Levels)
                .collect(),
            (_, Resident::AdjWeighted(adj)) => multi_bfs(adj.out(), &sources, max_depth, &ctx)
                .into_iter()
                .map(QueryValues::Levels)
                .collect(),
            (_, Resident::CcsrUnweighted(ccsr)) => multi_bfs(ccsr.out(), &sources, max_depth, &ctx)
                .into_iter()
                .map(QueryValues::Levels)
                .collect(),
            (_, Resident::CcsrWeighted(ccsr)) => multi_bfs(ccsr.out(), &sources, max_depth, &ctx)
                .into_iter()
                .map(QueryValues::Levels)
                .collect(),
            (_, Resident::GridUnweighted(grid)) => multi_bfs_grid(grid, &sources, max_depth, &ctx)
                .into_iter()
                .map(QueryValues::Levels)
                .collect(),
            (_, Resident::GridWeighted(grid)) => multi_bfs_grid(grid, &sources, max_depth, &ctx)
                .into_iter()
                .map(QueryValues::Levels)
                .collect(),
            (_, Resident::DeltaUnweighted(dl)) => multi_bfs(dl.out(), &sources, max_depth, &ctx)
                .into_iter()
                .map(QueryValues::Levels)
                .collect(),
            (_, Resident::DeltaWeighted(dl)) => multi_bfs(dl.out(), &sources, max_depth, &ctx)
                .into_iter()
                .map(QueryValues::Levels)
                .collect(),
        });
        let executed = Instant::now();
        let exec_seconds = (executed - started).as_secs_f64();
        let sample = phase.finish();

        // Lanes ran to the deepest bound in the wave; truncate each
        // k-hop lane at its own depth so batching is invisible to the
        // client.
        if kind == QueryKind::KHop {
            for (pending, values) in wave.iter().zip(results.iter_mut()) {
                if let QueryValues::Levels(levels) = values {
                    let bound = pending.query.depth;
                    for level in levels.iter_mut() {
                        if *level != u32::MAX && *level > bound {
                            *level = u32::MAX;
                        }
                    }
                }
            }
        }

        let wave_size = wave.len();
        for (lane, (pending, values)) in wave.into_iter().zip(results).enumerate() {
            let wait_seconds = (started - pending.enqueued).as_secs_f64();
            let checksum = values.checksum();
            let demux_seconds = executed.elapsed().as_secs_f64();
            // A disconnected receiver (client went away mid-flight)
            // just discards this lane; the rest of the wave is
            // unaffected.
            let delivered = pending
                .tx
                .send(QueryOutcome {
                    values,
                    checksum,
                    wave_size,
                    wait_seconds,
                    exec_seconds,
                    demux_seconds,
                })
                .is_ok();
            self.shared.inflight.fetch_sub(1, Ordering::Relaxed);
            let done = Instant::now();
            let event = QueryEvent {
                id: pending.id,
                wave: wave_id,
                lane: lane as u8,
                wave_size: wave_size as u8,
                kind,
                epoch,
                source: pending.query.source,
                depth: pending.query.depth,
                enqueued_us: journal.micros_since_epoch(pending.enqueued),
                started_us: journal.micros_since_epoch(started),
                executed_us: journal.micros_since_epoch(executed),
                done_us: journal.micros_since_epoch(done),
                checksum,
                outcome: if delivered {
                    EventOutcome::Answered
                } else {
                    EventOutcome::Disconnected
                },
            };
            journal.record(event);
            if let Some(threshold) = self.slow_query {
                if done - pending.enqueued >= threshold {
                    eprintln!("egraph-serve slow-query {}", event.to_ndjson());
                }
            }
            if let Some(m) = metrics {
                let stage = &m.stages[algo_idx];
                m.queries_total[algo_idx].inc();
                stage.queue.observe(wait_seconds);
                stage.exec.observe(exec_seconds);
                stage.demux.observe((done - executed).as_secs_f64());
                stage.total.observe((done - pending.enqueued).as_secs_f64());
            }
        }
        if let Some(m) = metrics {
            m.waves_total.inc();
            m.wave_size.observe(wave_size as f64);
            m.inflight
                .set(self.shared.inflight.load(Ordering::Relaxed) as f64);
            let depth = {
                let admission = self.shared.admission.lock().expect("admission poisoned");
                admission.queue.len()
            };
            m.queue_depth.set(depth as f64);
        }
        self.wave_counters.observe(&sample, algo_idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{bfs, sssp};

    fn chain_graph(nv: usize) -> EdgeList<Edge> {
        let edges = (0..nv as u32 - 1).map(|v| Edge::new(v, v + 1)).collect();
        EdgeList::new(nv, edges).unwrap()
    }

    fn weighted_chain(nv: usize) -> EdgeList<WEdge> {
        let edges = (0..nv as u32 - 1)
            .map(|v| WEdge::new(v, v + 1, 1.0 + (v % 4) as f32))
            .collect();
        EdgeList::new(nv, edges).unwrap()
    }

    #[test]
    fn engine_answers_bfs_queries_identically_to_direct_kernel() {
        let graph = chain_graph(64);
        let adj = CsrBuilder::new(Strategy::RadixSort, EdgeDirection::Out)
            .sort_neighbors(true)
            .build(&graph);
        let engine = ServeEngine::start(
            ServeGraph::Unweighted(graph),
            ServeConfig {
                threads: 2,
                metrics: false,
                ..ServeConfig::default()
            },
        );
        let receivers: Vec<_> = (0..8)
            .map(|s| {
                engine.submit(Query {
                    kind: QueryKind::Bfs,
                    source: s * 7,
                    depth: 0,
                })
            })
            .collect::<Result<_, _>>()
            .unwrap();
        for (i, rx) in receivers.into_iter().enumerate() {
            let outcome = rx.recv().expect("scheduler answers");
            let single = bfs::push(&adj, (i as u32) * 7);
            assert_eq!(outcome.values, QueryValues::Levels(single.level));
        }
        engine.shutdown();
    }

    #[test]
    fn engine_batches_simultaneous_queries_into_one_wave() {
        let engine = ServeEngine::start(
            ServeGraph::Unweighted(chain_graph(128)),
            ServeConfig {
                threads: 2,
                batch_window: Duration::from_millis(200),
                metrics: false,
                ..ServeConfig::default()
            },
        );
        engine.wait_ready();
        let receivers: Vec<_> = (0..16)
            .map(|s| {
                engine
                    .submit(Query {
                        kind: QueryKind::Bfs,
                        source: s,
                        depth: 0,
                    })
                    .unwrap()
            })
            .collect();
        let sizes: Vec<usize> = receivers
            .into_iter()
            .map(|rx| rx.recv().unwrap().wave_size)
            .collect();
        assert!(
            sizes.iter().any(|&s| s > 1),
            "no batching despite a 200ms window: {sizes:?}"
        );
    }

    #[test]
    fn engine_answers_sssp_and_khop() {
        let graph = weighted_chain(40);
        let adj = CsrBuilder::new(Strategy::RadixSort, EdgeDirection::Out)
            .sort_neighbors(true)
            .build(&graph);
        let engine = ServeEngine::start(
            ServeGraph::Weighted(graph),
            ServeConfig {
                threads: 1,
                metrics: false,
                ..ServeConfig::default()
            },
        );
        let rx_sssp = engine
            .submit(Query {
                kind: QueryKind::Sssp,
                source: 0,
                depth: 0,
            })
            .unwrap();
        let rx_khop = engine
            .submit(Query {
                kind: QueryKind::KHop,
                source: 0,
                depth: 3,
            })
            .unwrap();
        let sssp_out = rx_sssp.recv().unwrap();
        assert_eq!(
            sssp_out.values,
            QueryValues::Dists(sssp::push(&adj, 0).dist)
        );
        let khop_out = rx_khop.recv().unwrap();
        match khop_out.values {
            QueryValues::Levels(levels) => {
                assert_eq!(levels.iter().filter(|&&l| l != u32::MAX).count(), 4);
            }
            other => panic!("expected levels, got {other:?}"),
        }
        engine.shutdown();
    }

    #[test]
    fn engine_rejects_invalid_queries_with_typed_errors() {
        let engine = ServeEngine::start(
            ServeGraph::Unweighted(chain_graph(8)),
            ServeConfig {
                threads: 1,
                metrics: false,
                ..ServeConfig::default()
            },
        );
        let err = engine
            .submit(Query {
                kind: QueryKind::Bfs,
                source: 99,
                depth: 0,
            })
            .unwrap_err();
        assert!(matches!(err, VariantError::RootOutOfRange { root: 99, .. }));
        let err = engine
            .submit(Query {
                kind: QueryKind::Sssp,
                source: 0,
                depth: 0,
            })
            .unwrap_err();
        assert!(matches!(err, VariantError::NeedsWeights(Algo::Sssp)));
    }

    #[test]
    fn dropped_receiver_does_not_wedge_the_wave() {
        let engine = ServeEngine::start(
            ServeGraph::Unweighted(chain_graph(32)),
            ServeConfig {
                threads: 1,
                batch_window: Duration::from_millis(100),
                metrics: false,
                ..ServeConfig::default()
            },
        );
        engine.wait_ready();
        let keep = engine
            .submit(Query {
                kind: QueryKind::Bfs,
                source: 0,
                depth: 0,
            })
            .unwrap();
        let drop_me = engine
            .submit(Query {
                kind: QueryKind::Bfs,
                source: 1,
                depth: 0,
            })
            .unwrap();
        drop(drop_me);
        let outcome = keep.recv().expect("surviving query still answered");
        assert_eq!(outcome.values.reachable(), 32);
        engine.shutdown();
    }

    #[test]
    fn grid_and_ccsr_layouts_answer_identically_to_adjacency() {
        let unweighted = chain_graph(96);
        let weighted = weighted_chain(96);
        let adj = CsrBuilder::new(Strategy::RadixSort, EdgeDirection::Out)
            .sort_neighbors(true)
            .build(&unweighted);
        let wadj = CsrBuilder::new(Strategy::RadixSort, EdgeDirection::Out)
            .sort_neighbors(true)
            .build(&weighted);
        let want_levels = QueryValues::Levels(bfs::push(&adj, 5).level);
        let want_dists = QueryValues::Dists(sssp::push(&wadj, 5).dist);
        for layout in [Layout::Grid, Layout::Ccsr] {
            let engine = ServeEngine::start(
                ServeGraph::Unweighted(unweighted.clone()),
                ServeConfig {
                    threads: 2,
                    layout,
                    metrics: false,
                    ..ServeConfig::default()
                },
            );
            engine.wait_ready();
            assert_eq!(engine.layout_name(), layout.name());
            assert!(
                engine.resident_bytes() > 0,
                "{layout:?} reports zero resident bytes"
            );
            let rx = engine
                .submit(Query {
                    kind: QueryKind::Bfs,
                    source: 5,
                    depth: 0,
                })
                .unwrap();
            assert_eq!(rx.recv().unwrap().values, want_levels, "{layout:?} bfs");
            engine.shutdown();

            let engine = ServeEngine::start(
                ServeGraph::Weighted(weighted.clone()),
                ServeConfig {
                    threads: 2,
                    layout,
                    metrics: false,
                    ..ServeConfig::default()
                },
            );
            let rx = engine
                .submit(Query {
                    kind: QueryKind::Sssp,
                    source: 5,
                    depth: 0,
                })
                .unwrap();
            assert_eq!(rx.recv().unwrap().values, want_dists, "{layout:?} sssp");
            engine.shutdown();
        }
    }

    #[test]
    #[should_panic(expected = "no servable per-vertex index")]
    fn edge_layout_is_rejected_at_startup() {
        let _ = ServeEngine::start(
            ServeGraph::Unweighted(chain_graph(8)),
            ServeConfig {
                threads: 1,
                layout: Layout::EdgeList,
                metrics: false,
                ..ServeConfig::default()
            },
        );
    }

    #[test]
    fn checksum_is_stable_and_value_sensitive() {
        let a = QueryValues::Levels(vec![0, 1, 2, u32::MAX]);
        let b = QueryValues::Levels(vec![0, 1, 2, u32::MAX]);
        let c = QueryValues::Levels(vec![0, 1, 3, u32::MAX]);
        assert_eq!(a.checksum(), b.checksum());
        assert_ne!(a.checksum(), c.checksum());
    }

    /// Polls until the journal holds `n` events (the scheduler records
    /// them after the result send, so a `recv` can race the deposit).
    fn wait_recorded(engine: &ServeEngine, n: u64) {
        let deadline = Instant::now() + Duration::from_secs(5);
        while engine.journal().recorded() < n {
            assert!(
                Instant::now() < deadline,
                "journal never reached {n} events"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    #[test]
    fn journal_records_full_lifecycle_events() {
        let engine = ServeEngine::start(
            ServeGraph::Unweighted(chain_graph(64)),
            ServeConfig {
                threads: 1,
                metrics: false,
                journal_capacity: 16,
                ..ServeConfig::default()
            },
        );
        engine.wait_ready();
        let rx = engine
            .submit(Query {
                kind: QueryKind::Bfs,
                source: 3,
                depth: 0,
            })
            .unwrap();
        let outcome = rx.recv().unwrap();
        assert_eq!(outcome.checksum, outcome.values.checksum());
        assert!(outcome.demux_seconds >= 0.0);
        wait_recorded(&engine, 1);
        let events = engine.journal().dump(8);
        assert_eq!(events.len(), 1);
        let e = &events[0];
        assert_eq!(e.kind, QueryKind::Bfs);
        assert_eq!(e.source, 3);
        assert_eq!(e.checksum, outcome.checksum);
        assert_eq!(e.outcome, EventOutcome::Answered);
        assert!(e.enqueued_us <= e.started_us, "{e:?}");
        assert!(e.started_us <= e.executed_us, "{e:?}");
        assert!(e.executed_us <= e.done_us, "{e:?}");
        engine.shutdown();
    }

    #[test]
    fn journal_marks_disconnected_lanes() {
        let engine = ServeEngine::start(
            ServeGraph::Unweighted(chain_graph(32)),
            ServeConfig {
                threads: 1,
                batch_window: Duration::from_millis(100),
                metrics: false,
                journal_capacity: 16,
                ..ServeConfig::default()
            },
        );
        engine.wait_ready();
        let keep = engine
            .submit(Query {
                kind: QueryKind::Bfs,
                source: 0,
                depth: 0,
            })
            .unwrap();
        let drop_me = engine
            .submit(Query {
                kind: QueryKind::Bfs,
                source: 1,
                depth: 0,
            })
            .unwrap();
        drop(drop_me);
        keep.recv().expect("surviving query answered");
        wait_recorded(&engine, 2);
        let events = engine.journal().dump(8);
        let outcomes: Vec<(u32, EventOutcome)> =
            events.iter().map(|e| (e.source, e.outcome)).collect();
        assert!(
            outcomes.contains(&(1, EventOutcome::Disconnected)),
            "{outcomes:?}"
        );
        assert!(
            outcomes.contains(&(0, EventOutcome::Answered)),
            "{outcomes:?}"
        );
        engine.shutdown();
    }

    #[test]
    fn wave_perf_status_is_typed_and_covers_every_wave_kind() {
        let engine = ServeEngine::start(
            ServeGraph::Unweighted(chain_graph(16)),
            ServeConfig {
                threads: 1,
                metrics: false,
                ..ServeConfig::default()
            },
        );
        engine.wait_ready();
        let status = engine.wave_perf().expect("status set once ready");
        // Whatever the host allows, every wave kind is accounted for
        // exactly once — available or unavailable-with-reason, never a
        // panic.
        for kind in WAVE_KINDS {
            let open = status.available.contains(&kind);
            let closed = status.unavailable.iter().any(|(k, _)| *k == kind);
            assert!(open ^ closed, "{kind:?}: open={open} closed={closed}");
        }
        engine.shutdown();
    }

    #[test]
    fn serve_metrics_pass_the_naming_lint_and_expose_stage_histograms() {
        let engine = ServeEngine::start(
            ServeGraph::Unweighted(chain_graph(32)),
            ServeConfig {
                threads: 1,
                ..ServeConfig::default()
            },
        );
        engine.wait_ready();
        let rx = engine
            .submit(Query {
                kind: QueryKind::Bfs,
                source: 0,
                depth: 0,
            })
            .unwrap();
        rx.recv().unwrap();
        wait_recorded(&engine, 1);
        let violations = egraph_metrics::global().lint_names();
        assert!(violations.is_empty(), "naming violations: {violations:?}");
        let rendered = egraph_metrics::global().render();
        for name in [
            "egraph_serve_queue_seconds",
            "egraph_serve_exec_seconds",
            "egraph_serve_demux_seconds",
            "egraph_serve_query_seconds",
            "egraph_serve_queue_depth",
        ] {
            assert!(rendered.contains(name), "missing {name} in exposition");
        }
        engine.shutdown();
    }

    #[test]
    fn updates_apply_and_compact_republishes_under_a_new_epoch() {
        let engine = ServeEngine::start(
            ServeGraph::Unweighted(chain_graph(16)),
            ServeConfig {
                threads: 1,
                metrics: false,
                ..ServeConfig::default()
            },
        );
        engine.wait_ready();
        assert_eq!(engine.epoch(), 1, "initial build publishes epoch 1");
        let bfs_levels = |engine: &ServeEngine| {
            let rx = engine
                .submit(Query {
                    kind: QueryKind::Bfs,
                    source: 0,
                    depth: 0,
                })
                .unwrap();
            match rx.recv().unwrap().values {
                QueryValues::Levels(l) => l,
                other => panic!("expected levels, got {other:?}"),
            }
        };
        assert_eq!(bfs_levels(&engine)[15], 15);

        // A shortcut edge is pending but invisible until compaction.
        let applied = engine
            .apply_update("{\"op\":\"insert\",\"src\":0,\"dst\":15}\n")
            .unwrap();
        assert_eq!(applied, 1);
        assert_eq!(engine.pending_ops(), 1);
        assert_eq!(engine.epoch(), 1);
        assert_eq!(bfs_levels(&engine)[15], 15, "pre-compaction snapshot");

        let c = engine.compact();
        assert_eq!(c.epoch, 2);
        assert_eq!(c.merged_ops, 1);
        assert_eq!(engine.pending_ops(), 0);
        assert_eq!(bfs_levels(&engine)[15], 1, "post-compaction snapshot");

        // Out-of-range and malformed streams are typed errors that
        // leave the log untouched.
        let err = engine
            .apply_update("{\"op\":\"insert\",\"src\":0,\"dst\":99}\n")
            .unwrap_err();
        assert!(matches!(err, DeltaError::VertexOutOfRange { .. }), "{err}");
        assert!(engine.apply_update("not json").is_err());
        assert_eq!(engine.pending_ops(), 0);

        // An empty log compacts to a no-op at the same epoch.
        let c = engine.compact();
        assert_eq!(c.epoch, 2);
        assert_eq!(c.merged_ops, 0);
        engine.shutdown();
    }

    #[test]
    fn delta_layout_serves_and_survives_compaction() {
        let engine = ServeEngine::start(
            ServeGraph::Unweighted(chain_graph(32)),
            ServeConfig {
                threads: 1,
                layout: Layout::Delta,
                metrics: false,
                ..ServeConfig::default()
            },
        );
        engine.wait_ready();
        assert_eq!(engine.layout_name(), "delta");
        assert!(engine.resident_bytes() > 0);
        let rx = engine
            .submit(Query {
                kind: QueryKind::Bfs,
                source: 0,
                depth: 0,
            })
            .unwrap();
        assert_eq!(rx.recv().unwrap().values.reachable(), 32);
        engine
            .apply_update("{\"op\":\"delete\",\"src\":15,\"dst\":16}\n")
            .unwrap();
        let c = engine.compact();
        assert_eq!(c.epoch, 2);
        let rx = engine
            .submit(Query {
                kind: QueryKind::Bfs,
                source: 0,
                depth: 0,
            })
            .unwrap();
        assert_eq!(
            rx.recv().unwrap().values.reachable(),
            16,
            "chain severed at 15→16"
        );
        engine.shutdown();
    }

    #[test]
    fn queue_depth_reports_waiting_queries() {
        let engine = ServeEngine::start(
            ServeGraph::Unweighted(chain_graph(8)),
            ServeConfig {
                threads: 1,
                metrics: false,
                ..ServeConfig::default()
            },
        );
        // Before the layout build finishes the scheduler drains
        // nothing, so submissions pile up visibly.
        assert_eq!(engine.queue_depth(), 0);
        engine.wait_ready();
        let rx = engine
            .submit(Query {
                kind: QueryKind::Bfs,
                source: 0,
                depth: 0,
            })
            .unwrap();
        rx.recv().unwrap();
        assert_eq!(engine.queue_depth(), 0, "drained after the wave");
        engine.shutdown();
    }
}

//! Multi-source wave kernels with bit-packed frontiers.
//!
//! One wave answers up to [`MAX_WAVE`] point queries with a *single*
//! traversal: every vertex carries one `u64` lane word, one bit per
//! query, so the per-round edge scan (the dominant cost on large
//! graphs) is shared by the whole wave — the cache-sharing thesis of
//! the fork-processing-patterns line of work applied to the paper's
//! push kernels.
//!
//! Determinism: the per-lane results are bit-identical to the
//! single-query kernels. BFS levels are exact hop distances (the round
//! a bit first reaches a vertex), independent of scan order; SSSP
//! distances converge to the unique least fixpoint of the relaxation
//! equations under `f32` `fetch_min`, which is order-independent. The
//! conformance tests in this module assert both properties.

use std::sync::atomic::{AtomicU64, Ordering};

use egraph_parallel::atomicf::AtomicF32;
use egraph_parallel::{parallel_collect, parallel_for, WorkerLocal};

use crate::exec::ExecCtx;
use crate::layout::{Grid, NeighborAccess};
use crate::telemetry::Recorder;
use crate::types::{EdgeRecord, VertexId};
use crate::util::UnsyncSlice;

/// Lane capacity of one wave: the width of the frontier word.
pub const MAX_WAVE: usize = 64;

/// Chunk grain for the per-round scans.
const GRAIN: usize = 256;

/// Telemetry counter: wave rounds executed.
pub const WAVE_ROUNDS: &str = "serve.wave_rounds";
/// Telemetry counter: edges examined across all wave rounds.
pub const WAVE_EDGES: &str = "serve.wave_edges";

/// Multi-source BFS over any out-[`NeighborAccess`] (uncompressed CSR
/// or ccsr): one lane per source, levels truncated at `max_depth`
/// rounds (pass `u32::MAX` for a full traversal). Returns one level
/// vector per source, `u32::MAX` marking vertices not reached within
/// the depth bound.
///
/// # Panics
///
/// Panics if `sources` is empty, longer than [`MAX_WAVE`], or contains
/// an out-of-range vertex — the serve engine validates queries before
/// forming waves.
pub fn multi_bfs<E: EdgeRecord, A: NeighborAccess<E>>(
    out: &A,
    sources: &[VertexId],
    max_depth: u32,
    ctx: &ExecCtx<'_>,
) -> Vec<Vec<u32>> {
    let nv = out.num_vertices();
    let lanes = sources.len();
    assert!(
        (1..=MAX_WAVE).contains(&lanes),
        "wave size {lanes} outside 1..={MAX_WAVE}"
    );
    let mut levels = vec![u32::MAX; nv * lanes];
    let recorder = ctx.context();
    let recorder = recorder.recorder;

    {
        let visited: Vec<AtomicU64> = (0..nv).map(|_| AtomicU64::new(0)).collect();
        let next: Vec<AtomicU64> = (0..nv).map(|_| AtomicU64::new(0)).collect();
        let mut frontier_words: Vec<u64> = vec![0; nv];
        let level_cells = UnsyncSlice::new(&mut levels);

        // Seed the lanes. Duplicate sources coexist: each lane tracks
        // its own bit.
        let mut active: Vec<VertexId> = Vec::with_capacity(lanes);
        for (q, &s) in sources.iter().enumerate() {
            let v = s as usize;
            assert!(v < nv, "source {s} out of range ({nv} vertices)");
            // SAFETY: seeding runs before any parallel region.
            unsafe { level_cells.write(v * lanes + q, 0) };
            if visited[v].fetch_or(1 << q, Ordering::Relaxed) == 0 {
                active.push(s);
            }
            frontier_words[v] |= 1 << q;
        }

        let mut depth = 0u32;
        let mut edges_examined = 0u64;
        let mut rounds = 0u64;
        while !active.is_empty() && depth < max_depth {
            depth += 1;
            rounds += 1;
            if recorder.enabled() {
                edges_examined += active.iter().map(|&v| out.degree(v) as u64).sum::<u64>();
            }
            let frontier = &frontier_words;
            let locals: WorkerLocal<Vec<VertexId>> = WorkerLocal::new(Vec::new);
            parallel_for(0..active.len(), GRAIN, |range| {
                let mut buf = locals.borrow();
                for i in range {
                    let u = active[i] as usize;
                    let word = frontier[u];
                    out.for_each_span(u as VertexId, |span| {
                        for e in span {
                            let v = e.dst() as usize;
                            let prop = word & !visited[v].load(Ordering::Relaxed);
                            if prop == 0 {
                                continue;
                            }
                            let old = visited[v].fetch_or(prop, Ordering::Relaxed);
                            let mut won = prop & !old;
                            if won == 0 {
                                continue;
                            }
                            if next[v].fetch_or(won, Ordering::Relaxed) == 0 {
                                buf.push(v as VertexId);
                            }
                            while won != 0 {
                                let q = won.trailing_zeros() as usize;
                                // SAFETY: `fetch_or` on `visited[v]`
                                // admits exactly one winner per
                                // (vertex, lane) bit, so no other
                                // thread writes this element.
                                unsafe { level_cells.write(v * lanes + q, depth) };
                                won &= won - 1;
                            }
                        }
                        span.len()
                    });
                }
            });
            active = parallel_collect(locals);
            for &v in &active {
                let v = v as usize;
                frontier_words[v] = next[v].swap(0, Ordering::Relaxed);
            }
        }
        if recorder.enabled() {
            recorder.record_counter(WAVE_ROUNDS, rounds);
            recorder.record_counter(WAVE_EDGES, edges_examined);
        }
    }

    demux(&levels, nv, lanes)
}

/// Multi-source SSSP over any out-[`NeighborAccess`]: label-correcting
/// relaxation with per-lane `f32` `fetch_min`, one lane per source.
/// Returns one distance vector per source (`f32::INFINITY` for
/// unreachable vertices), bit-identical to the single-source kernel.
///
/// # Panics
///
/// Panics under the same conditions as [`multi_bfs`].
pub fn multi_sssp<E: EdgeRecord, A: NeighborAccess<E>>(
    out: &A,
    sources: &[VertexId],
    ctx: &ExecCtx<'_>,
) -> Vec<Vec<f32>> {
    let nv = out.num_vertices();
    let lanes = sources.len();
    assert!(
        (1..=MAX_WAVE).contains(&lanes),
        "wave size {lanes} outside 1..={MAX_WAVE}"
    );
    let recorder = ctx.context();
    let recorder = recorder.recorder;

    let dist: Vec<AtomicF32> = (0..nv * lanes)
        .map(|_| AtomicF32::new(f32::INFINITY))
        .collect();
    let next: Vec<AtomicU64> = (0..nv).map(|_| AtomicU64::new(0)).collect();
    let mut frontier_words: Vec<u64> = vec![0; nv];

    let mut active: Vec<VertexId> = Vec::with_capacity(lanes);
    for (q, &s) in sources.iter().enumerate() {
        let v = s as usize;
        assert!(v < nv, "source {s} out of range ({nv} vertices)");
        dist[v * lanes + q].store(0.0, Ordering::Relaxed);
        if frontier_words[v] == 0 {
            active.push(s);
        }
        frontier_words[v] |= 1 << q;
    }

    let mut edges_examined = 0u64;
    let mut rounds = 0u64;
    while !active.is_empty() {
        rounds += 1;
        if recorder.enabled() {
            edges_examined += active.iter().map(|&v| out.degree(v) as u64).sum::<u64>();
        }
        let frontier = &frontier_words;
        let dist_ref = &dist;
        let locals: WorkerLocal<Vec<VertexId>> = WorkerLocal::new(Vec::new);
        parallel_for(0..active.len(), GRAIN, |range| {
            let mut buf = locals.borrow();
            let mut du = [0.0f32; MAX_WAVE];
            for i in range {
                let u = active[i] as usize;
                let mut word = frontier[u];
                // Snapshot the active lanes' distances once per source
                // vertex; the edge loop below reuses them.
                let mut w = word;
                while w != 0 {
                    let q = w.trailing_zeros() as usize;
                    du[q] = dist_ref[u * lanes + q].load(Ordering::Relaxed);
                    w &= w - 1;
                }
                out.for_each_span(u as VertexId, |span| {
                    for e in span {
                        let v = e.dst() as usize;
                        let weight = e.weight();
                        word = frontier[u];
                        let mut improved = 0u64;
                        let mut w = word;
                        while w != 0 {
                            let q = w.trailing_zeros() as usize;
                            let nd = du[q] + weight;
                            if dist_ref[v * lanes + q].fetch_min(nd, Ordering::Relaxed) {
                                improved |= 1 << q;
                            }
                            w &= w - 1;
                        }
                        if improved != 0 && next[v].fetch_or(improved, Ordering::Relaxed) == 0 {
                            buf.push(v as VertexId);
                        }
                    }
                    span.len()
                });
            }
        });
        active = parallel_collect(locals);
        for &v in &active {
            let v = v as usize;
            frontier_words[v] = next[v].swap(0, Ordering::Relaxed);
        }
    }
    if recorder.enabled() {
        recorder.record_counter(WAVE_ROUNDS, rounds);
        recorder.record_counter(WAVE_EDGES, edges_examined);
    }

    let flat: Vec<f32> = dist
        .into_iter()
        .map(|d| d.load(Ordering::Relaxed))
        .collect();
    (0..lanes)
        .map(|q| (0..nv).map(|v| flat[v * lanes + q]).collect())
        .collect()
}

/// Multi-source BFS over a grid layout. The grid has no per-vertex
/// neighbor index, so every round is a full cell scan that only
/// propagates from frontier sources. A level is the round a lane's bit
/// first reaches a vertex — scan-order independent — so the per-lane
/// results are bit-identical to [`multi_bfs`] on an adjacency.
///
/// # Panics
///
/// Panics under the same conditions as [`multi_bfs`].
pub fn multi_bfs_grid<E: EdgeRecord>(
    grid: &Grid<E>,
    sources: &[VertexId],
    max_depth: u32,
    ctx: &ExecCtx<'_>,
) -> Vec<Vec<u32>> {
    let nv = grid.num_vertices();
    let lanes = sources.len();
    assert!(
        (1..=MAX_WAVE).contains(&lanes),
        "wave size {lanes} outside 1..={MAX_WAVE}"
    );
    let mut levels = vec![u32::MAX; nv * lanes];
    let recorder = ctx.context();
    let recorder = recorder.recorder;

    {
        let visited: Vec<AtomicU64> = (0..nv).map(|_| AtomicU64::new(0)).collect();
        let next: Vec<AtomicU64> = (0..nv).map(|_| AtomicU64::new(0)).collect();
        let mut frontier_words: Vec<u64> = vec![0; nv];
        let level_cells = UnsyncSlice::new(&mut levels);

        let mut active: Vec<VertexId> = Vec::with_capacity(lanes);
        for (q, &s) in sources.iter().enumerate() {
            let v = s as usize;
            assert!(v < nv, "source {s} out of range ({nv} vertices)");
            // SAFETY: seeding runs before any parallel region.
            unsafe { level_cells.write(v * lanes + q, 0) };
            if visited[v].fetch_or(1 << q, Ordering::Relaxed) == 0 {
                active.push(s);
            }
            frontier_words[v] |= 1 << q;
        }

        let side = grid.side();
        let num_cells = side * side;
        let mut depth = 0u32;
        let mut edges_examined = 0u64;
        let mut rounds = 0u64;
        while !active.is_empty() && depth < max_depth {
            depth += 1;
            rounds += 1;
            if recorder.enabled() {
                edges_examined += grid.num_edges() as u64;
            }
            let frontier = &frontier_words;
            let locals: WorkerLocal<Vec<VertexId>> = WorkerLocal::new(Vec::new);
            parallel_for(0..num_cells, 1, |cells| {
                let mut buf = locals.borrow();
                for c in cells {
                    for e in grid.cell(c / side, c % side) {
                        let word = frontier[e.src() as usize];
                        if word == 0 {
                            continue;
                        }
                        let v = e.dst() as usize;
                        let prop = word & !visited[v].load(Ordering::Relaxed);
                        if prop == 0 {
                            continue;
                        }
                        let old = visited[v].fetch_or(prop, Ordering::Relaxed);
                        let mut won = prop & !old;
                        if won == 0 {
                            continue;
                        }
                        if next[v].fetch_or(won, Ordering::Relaxed) == 0 {
                            buf.push(v as VertexId);
                        }
                        while won != 0 {
                            let q = won.trailing_zeros() as usize;
                            // SAFETY: `fetch_or` on `visited[v]` admits
                            // exactly one winner per (vertex, lane)
                            // bit, so no other thread writes this
                            // element.
                            unsafe { level_cells.write(v * lanes + q, depth) };
                            won &= won - 1;
                        }
                    }
                }
            });
            for &v in &active {
                frontier_words[v as usize] = 0;
            }
            active = parallel_collect(locals);
            for &v in &active {
                let v = v as usize;
                frontier_words[v] = next[v].swap(0, Ordering::Relaxed);
            }
        }
        if recorder.enabled() {
            recorder.record_counter(WAVE_ROUNDS, rounds);
            recorder.record_counter(WAVE_EDGES, edges_examined);
        }
    }

    demux(&levels, nv, lanes)
}

/// Multi-source SSSP over a grid layout: full cell scans per round,
/// per-lane `f32` `fetch_min` relaxation. Distances converge to the
/// same least fixpoint as [`multi_sssp`], so per-lane results are
/// bit-identical to the adjacency kernels.
///
/// # Panics
///
/// Panics under the same conditions as [`multi_bfs`].
pub fn multi_sssp_grid<E: EdgeRecord>(
    grid: &Grid<E>,
    sources: &[VertexId],
    ctx: &ExecCtx<'_>,
) -> Vec<Vec<f32>> {
    let nv = grid.num_vertices();
    let lanes = sources.len();
    assert!(
        (1..=MAX_WAVE).contains(&lanes),
        "wave size {lanes} outside 1..={MAX_WAVE}"
    );
    let recorder = ctx.context();
    let recorder = recorder.recorder;

    let dist: Vec<AtomicF32> = (0..nv * lanes)
        .map(|_| AtomicF32::new(f32::INFINITY))
        .collect();
    let next: Vec<AtomicU64> = (0..nv).map(|_| AtomicU64::new(0)).collect();
    let mut frontier_words: Vec<u64> = vec![0; nv];

    let mut active: Vec<VertexId> = Vec::with_capacity(lanes);
    for (q, &s) in sources.iter().enumerate() {
        let v = s as usize;
        assert!(v < nv, "source {s} out of range ({nv} vertices)");
        dist[v * lanes + q].store(0.0, Ordering::Relaxed);
        if frontier_words[v] == 0 {
            active.push(s);
        }
        frontier_words[v] |= 1 << q;
    }

    let side = grid.side();
    let num_cells = side * side;
    let mut edges_examined = 0u64;
    let mut rounds = 0u64;
    while !active.is_empty() {
        rounds += 1;
        if recorder.enabled() {
            edges_examined += grid.num_edges() as u64;
        }
        let frontier = &frontier_words;
        let dist_ref = &dist;
        let locals: WorkerLocal<Vec<VertexId>> = WorkerLocal::new(Vec::new);
        parallel_for(0..num_cells, 1, |cells| {
            let mut buf = locals.borrow();
            for c in cells {
                for e in grid.cell(c / side, c % side) {
                    let u = e.src() as usize;
                    let word = frontier[u];
                    if word == 0 {
                        continue;
                    }
                    let v = e.dst() as usize;
                    let weight = e.weight();
                    let mut improved = 0u64;
                    let mut w = word;
                    while w != 0 {
                        let q = w.trailing_zeros() as usize;
                        let nd = dist_ref[u * lanes + q].load(Ordering::Relaxed) + weight;
                        if dist_ref[v * lanes + q].fetch_min(nd, Ordering::Relaxed) {
                            improved |= 1 << q;
                        }
                        w &= w - 1;
                    }
                    if improved != 0 && next[v].fetch_or(improved, Ordering::Relaxed) == 0 {
                        buf.push(v as VertexId);
                    }
                }
            }
        });
        for &v in &active {
            frontier_words[v as usize] = 0;
        }
        active = parallel_collect(locals);
        for &v in &active {
            let v = v as usize;
            frontier_words[v] = next[v].swap(0, Ordering::Relaxed);
        }
    }
    if recorder.enabled() {
        recorder.record_counter(WAVE_ROUNDS, rounds);
        recorder.record_counter(WAVE_EDGES, edges_examined);
    }

    let flat: Vec<f32> = dist
        .into_iter()
        .map(|d| d.load(Ordering::Relaxed))
        .collect();
    (0..lanes)
        .map(|q| (0..nv).map(|v| flat[v * lanes + q]).collect())
        .collect()
}

/// Splits the `(vertex, lane)`-major flat array into per-lane vectors.
fn demux(flat: &[u32], nv: usize, lanes: usize) -> Vec<Vec<u32>> {
    (0..lanes)
        .map(|q| (0..nv).map(|v| flat[v * lanes + q]).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{bfs, sssp};
    use crate::layout::EdgeDirection;
    use crate::preprocess::{CsrBuilder, Strategy};
    use crate::types::{Edge, EdgeList, WEdge};

    fn ring_with_chords(nv: usize) -> EdgeList<Edge> {
        let mut edges = Vec::new();
        for v in 0..nv as u32 {
            edges.push(Edge::new(v, (v + 1) % nv as u32));
            edges.push(Edge::new(v, (v + 7) % nv as u32));
        }
        EdgeList::new(nv, edges).unwrap()
    }

    fn weighted_ring(nv: usize) -> EdgeList<WEdge> {
        let mut edges = Vec::new();
        for v in 0..nv as u32 {
            let w1 = 1.0 + (v % 5) as f32 * 0.25;
            let w2 = 2.0 + (v % 3) as f32 * 0.5;
            edges.push(WEdge::new(v, (v + 1) % nv as u32, w1));
            edges.push(WEdge::new(v, (v + 7) % nv as u32, w2));
        }
        EdgeList::new(nv, edges).unwrap()
    }

    #[test]
    fn multi_bfs_matches_single_query_levels_bit_for_bit() {
        let g = ring_with_chords(300);
        let adj = CsrBuilder::new(Strategy::CountSort, EdgeDirection::Out).build(&g);
        let sources: Vec<VertexId> = (0..64).map(|q| (q * 5) % 300).collect();
        let waves = multi_bfs(adj.out(), &sources, u32::MAX, &ExecCtx::new(None));
        assert_eq!(waves.len(), sources.len());
        for (q, &s) in sources.iter().enumerate() {
            let single = bfs::push(&adj, s);
            assert_eq!(waves[q], single.level, "lane {q} source {s}");
        }
    }

    #[test]
    fn multi_bfs_truncates_at_max_depth() {
        let g = ring_with_chords(100);
        let adj = CsrBuilder::new(Strategy::CountSort, EdgeDirection::Out).build(&g);
        let waves = multi_bfs(adj.out(), &[0, 3], 2, &ExecCtx::new(None));
        for lane in &waves {
            assert!(lane.iter().all(|&l| l == u32::MAX || l <= 2));
            assert!(lane.contains(&1));
        }
        // Depth-2 neighborhood of a degree-2 expander is small.
        let within: usize = waves[0].iter().filter(|&&l| l != u32::MAX).count();
        assert!(within > 1 && within < 100, "{within}");
    }

    #[test]
    fn multi_bfs_handles_duplicate_sources() {
        let g = ring_with_chords(50);
        let adj = CsrBuilder::new(Strategy::CountSort, EdgeDirection::Out).build(&g);
        let waves = multi_bfs(adj.out(), &[7, 7, 7], u32::MAX, &ExecCtx::new(None));
        assert_eq!(waves[0], waves[1]);
        assert_eq!(waves[1], waves[2]);
    }

    #[test]
    fn multi_sssp_matches_single_query_distances_bit_for_bit() {
        let g = weighted_ring(200);
        let adj = CsrBuilder::new(Strategy::CountSort, EdgeDirection::Out).build(&g);
        let sources: Vec<VertexId> = (0..32).map(|q| (q * 11) % 200).collect();
        let waves = multi_sssp(adj.out(), &sources, &ExecCtx::new(None));
        for (q, &s) in sources.iter().enumerate() {
            let single = sssp::push(&adj, s);
            assert_eq!(waves[q], single.dist, "lane {q} source {s}");
        }
    }

    #[test]
    fn wave_records_telemetry_when_enabled() {
        let g = ring_with_chords(64);
        let adj = CsrBuilder::new(Strategy::CountSort, EdgeDirection::Out).build(&g);
        let recorder = crate::telemetry::TraceRecorder::new();
        let ctx = ExecCtx::new(None).recorder(&recorder);
        multi_bfs(adj.out(), &[0, 1, 2], u32::MAX, &ctx);
        let counters = recorder.counters();
        assert!(counters.get(WAVE_ROUNDS).copied().unwrap_or(0.0) > 0.0);
        assert!(counters.get(WAVE_EDGES).copied().unwrap_or(0.0) > 0.0);
    }
}

//! The unified execution context for algorithm dispatch.
//!
//! Historically every algorithm entry point came in two flavors: a
//! plain function and a `*_ctx` twin generic over `<E: EdgeRecord,
//! P: MemProbe, R: Recorder>`. Every new instrumentation hook widened
//! that signature for ~25 functions at once, and callers that only
//! wanted a recorder still had to spell the whole parameter list.
//!
//! [`ExecCtx`] collapses the sprawl behind one borrowed parameter
//! struct with a builder:
//!
//! ```
//! use egraph_core::exec::ExecCtx;
//! use egraph_core::telemetry::TraceRecorder;
//!
//! let recorder = TraceRecorder::new();
//! let ctx = ExecCtx::new(None).recorder(&recorder);
//! assert!(ctx.pool().is_none());
//! ```
//!
//! Internally the context erases the probe and recorder behind trait
//! objects and re-enters the generic engine through thin adapter
//! wrappers, so the monomorphized kernels are shared by every caller
//! of [`run_variant`](crate::variant::run_variant). The dynamic
//! dispatch happens once per instrumentation call, which is noise next
//! to the edge scans it brackets; timing-critical uninstrumented runs
//! keep the statically-dispatched `NullProbe`/`NullRecorder` path via
//! the plain entry points (`bfs::push`, ...), whose instrumentation
//! folds away entirely.

use egraph_cachesim::{AccessKind, MemProbe, NullProbe};
use egraph_parallel::{with_pool, ThreadPool};

use crate::telemetry::{ExecContext, IterRecord, NullRecorder, PhaseProfiler, Recorder};

/// Phase label for layout construction under [`ExecCtx::profile`].
pub const PHASE_PREPROCESS: &str = "preprocess";
/// Phase label for the algorithm run under [`ExecCtx::profile`].
pub const PHASE_ALGORITHM: &str = "algorithm";
/// Phase label for merging a delta log into a fresh snapshot
/// (DESIGN.md §16). Only present in traces from runs that applied
/// updates; `trace diff` therefore lists it in
/// [`crate::trace_diff::OPTIONAL_PHASES`] so it may appear from a zero
/// baseline without gating.
pub const PHASE_COMPACT: &str = "compact";

/// The unified execution context: an optional scoped [`ThreadPool`], a
/// cache probe, a telemetry recorder and an optional phase profiler.
///
/// Built with [`ExecCtx::new`] plus the builder methods; everything
/// defaults to "off" (global pool, null probe, null recorder, no
/// profiler).
#[derive(Clone, Copy)]
pub struct ExecCtx<'a> {
    pool: Option<&'a ThreadPool>,
    probe: DynProbe<'a>,
    recorder: DynRecorder<'a>,
    profiler: Option<&'a PhaseProfiler>,
}

impl std::fmt::Debug for ExecCtx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecCtx")
            .field("pool", &self.pool.map(ThreadPool::num_threads))
            .field("probe_enabled", &self.probe.enabled())
            .field("recorder_enabled", &self.recorder.enabled())
            .field("profiler", &self.profiler.is_some())
            .finish()
    }
}

impl<'a> ExecCtx<'a> {
    /// Creates a context that runs on `pool` (or the ambient pool when
    /// `None`) with instrumentation off.
    pub fn new(pool: impl Into<Option<&'a ThreadPool>>) -> Self {
        Self {
            pool: pool.into(),
            probe: DynProbe(&NullProbe),
            recorder: DynRecorder(&NullRecorder),
            profiler: None,
        }
    }

    /// This context with a telemetry recorder.
    pub fn recorder(mut self, recorder: &'a dyn Recorder) -> Self {
        self.recorder = DynRecorder(recorder);
        self
    }

    /// This context with a cache probe.
    pub fn probe(mut self, probe: &'a dyn MemProbe) -> Self {
        self.probe = DynProbe(probe);
        self
    }

    /// This context with a phase profiler: layout construction and the
    /// algorithm run are attributed to `"preprocess"` / `"algorithm"`
    /// windows by [`run_variant`](crate::variant::run_variant).
    pub fn profiler(mut self, profiler: &'a PhaseProfiler) -> Self {
        self.profiler = Some(profiler);
        self
    }

    /// The scoped pool, if one was set.
    pub fn pool(&self) -> Option<&'a ThreadPool> {
        self.pool
    }

    /// Runs `f` under this context's pool (or inline on the ambient
    /// pool when none was set).
    pub fn scoped<T>(&self, f: impl FnOnce() -> T) -> T {
        match self.pool {
            Some(pool) => with_pool(pool, f),
            None => f(),
        }
    }

    /// Profiles `f` as phase `name` when a profiler is attached.
    pub fn profile<T>(&self, name: &str, f: impl FnOnce() -> T) -> T {
        match self.profiler {
            Some(prof) => prof.profile(name, f),
            None => f(),
        }
    }

    /// The generic-engine view of this context (adapter wrappers around
    /// the erased probe and recorder).
    pub(crate) fn context(&self) -> ExecContext<'_, DynProbe<'a>, DynRecorder<'a>> {
        ExecContext {
            probe: &self.probe,
            recorder: &self.recorder,
        }
    }
}

impl Default for ExecCtx<'static> {
    fn default() -> Self {
        Self::new(None)
    }
}

/// Adapter that re-enters the generic engine with an erased probe.
#[derive(Clone, Copy)]
pub(crate) struct DynProbe<'a>(&'a dyn MemProbe);

impl MemProbe for DynProbe<'_> {
    #[inline]
    fn enabled(&self) -> bool {
        self.0.enabled()
    }

    #[inline]
    fn touch(&self, kind: AccessKind, addr: u64) {
        self.0.touch(kind, addr);
    }
}

/// Adapter that re-enters the generic engine with an erased recorder.
#[derive(Clone, Copy)]
pub(crate) struct DynRecorder<'a>(&'a dyn Recorder);

impl Recorder for DynRecorder<'_> {
    #[inline]
    fn enabled(&self) -> bool {
        self.0.enabled()
    }

    #[inline]
    fn record_counter(&self, name: &'static str, delta: u64) {
        self.0.record_counter(name, delta);
    }

    #[inline]
    fn record_iteration(&self, record: IterRecord) {
        self.0.record_iteration(record);
    }

    #[inline]
    fn record_span(&self, name: &'static str, seconds: f64) {
        self.0.record_span(name, seconds);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::TraceRecorder;

    #[test]
    fn builder_defaults_are_off() {
        let ctx = ExecCtx::new(None);
        assert!(ctx.pool().is_none());
        assert!(!ctx.context().probe.enabled());
        assert!(!ctx.context().recorder.enabled());
    }

    #[test]
    fn builder_attaches_instrumentation() {
        let recorder = TraceRecorder::new();
        let probe = egraph_cachesim::LlcProbe::new(egraph_cachesim::CacheConfig::tiny(4096, 4));
        let pool = ThreadPool::new(2);
        let ctx = ExecCtx::new(&pool).recorder(&recorder).probe(&probe);
        assert_eq!(ctx.pool().map(ThreadPool::num_threads), Some(2));
        assert!(ctx.context().probe.enabled());
        assert!(ctx.context().recorder.enabled());
        ctx.context().recorder.record_counter("x", 3);
        assert_eq!(recorder.counters().get("x"), Some(&3.0));
    }

    #[test]
    fn scoped_runs_under_pool() {
        let pool = ThreadPool::new(3);
        let ctx = ExecCtx::new(&pool);
        let n = ctx.scoped(egraph_parallel::current_num_threads);
        assert_eq!(n, 3);
    }
}

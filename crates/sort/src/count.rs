//! Parallel count sort (a.k.a. counting sort / bucket placement).
//!
//! This is the pre-processing approach "most existing graph analytics
//! frameworks use" (§3.2): a first pass over the edge array counts the
//! number of edges per vertex, a second pass places every edge at its
//! final offset. It is optimal in passes (the input is scanned exactly
//! twice) but both the degree counting and the scatter jump between
//! distant memory locations, which is why it loses to radix sort on
//! cache locality (Table 2).
//!
//! The parallelization is the Zagha–Blelloch two-pass scheme: the input
//! is split into one contiguous block per worker, each worker counts
//! into a **private** histogram row, and a 2-D exclusive prefix sum
//! over the `workers × keys` matrix hands every `(worker, key)` pair a
//! disjoint scatter range. The scatter then needs no atomics at all —
//! unlike the per-key atomic-cursor baseline, hub vertices of a
//! power-law graph no longer serialize every worker on one cache line —
//! and because blocks are contiguous and scanned in order, the sort is
//! **stable**: records that share a key keep their input order, at any
//! thread count.

use std::mem::MaybeUninit;

use egraph_parallel::{
    broadcast_current, current_num_threads, current_worker_index, parallel_for, DEFAULT_GRAIN,
};

/// Below this many records the sort runs serially: one histogram, one
/// stable scatter. The output is identical to the parallel path's.
const SERIAL_CUTOFF: usize = 4 * DEFAULT_GRAIN;

/// The result of a count sort: the reordered records plus the group
/// offset table (`offsets[k]..offsets[k + 1]` is the range of records
/// with key `k`), which doubles as a CSR index.
#[derive(Debug)]
pub struct CountSorted<T> {
    /// Records grouped by key, input order preserved within a group.
    pub sorted: Vec<T>,
    /// `num_keys + 1` exclusive prefix offsets into `sorted`.
    pub offsets: Vec<u64>,
}

/// Per-worker private histogram rows over static contiguous input
/// blocks: worker `w` counts `data[w * block .. (w + 1) * block]` into
/// row `w` of a row-major `workers × num_keys` matrix. No shared
/// counters, so no contention on hub keys.
///
/// Returns `(matrix, workers, block)`.
fn worker_histograms<T, K>(data: &[T], num_keys: usize, key: &K) -> (Vec<u64>, usize, usize)
where
    T: Sync,
    K: Fn(&T) -> u64 + Sync,
{
    let workers = current_num_threads();
    let block = data.len().div_ceil(workers);
    let mut hist = vec![0u64; workers * num_keys];
    {
        let rows = RowsPtr(hist.as_mut_ptr());
        broadcast_current(&|worker| {
            let w = worker.index();
            let start = (w * block).min(data.len());
            let end = ((w + 1) * block).min(data.len());
            // SAFETY: row `w` belongs exclusively to worker `w` (ids
            // are dense and unique within the region), and the borrow
            // of `hist` outlives the blocking region.
            let row =
                unsafe { std::slice::from_raw_parts_mut(rows.get().add(w * num_keys), num_keys) };
            for t in &data[start..end] {
                row[key(t) as usize] += 1;
            }
        });
    }
    (hist, workers, block)
}

/// Computes the per-key histogram of `data` in parallel.
///
/// Uses per-worker private rows merged by a parallel column sum — no
/// shared atomic counters.
///
/// # Panics
///
/// Panics if `key` returns a value `>= num_keys`.
pub fn key_histogram<T, K>(data: &[T], num_keys: usize, key: K) -> Vec<u64>
where
    T: Sync,
    K: Fn(&T) -> u64 + Sync,
{
    if data.len() < SERIAL_CUTOFF || current_num_threads() == 1 || current_worker_index().is_some()
    {
        let mut counts = vec![0u64; num_keys];
        for t in data {
            counts[key(t) as usize] += 1;
        }
        return counts;
    }
    let (hist, workers, _block) = worker_histograms(data, num_keys, &key);
    egraph_parallel::parallel_init(num_keys, 4096, |k| {
        (0..workers).map(|w| hist[w * num_keys + k]).sum()
    })
}

/// Groups `data` by key using the two-pass count-sort algorithm.
///
/// The sort is **stable**: records sharing a key appear in input order,
/// and the output is bit-identical regardless of the number of worker
/// threads. (The transient `workers × num_keys` offset matrix trades
/// memory for a scatter with zero atomics; for CSR construction that is
/// `threads × num_vertices` u64s.)
///
/// # Panics
///
/// Panics if `key` returns a value `>= num_keys`.
///
/// # Examples
///
/// ```
/// let data = vec![(2u32, 'a'), (0, 'b'), (2, 'c'), (1, 'd')];
/// let out = egraph_sort::count_sort_by_key(&data, 3, |&(k, _)| k as u64);
/// assert_eq!(out.offsets, vec![0, 1, 2, 4]);
/// // Stable: key 2's records keep their input order.
/// assert_eq!(out.sorted, vec![(0, 'b'), (1, 'd'), (2, 'a'), (2, 'c')]);
/// ```
pub fn count_sort_by_key<T, K>(data: &[T], num_keys: usize, key: K) -> CountSorted<T>
where
    T: Copy + Send + Sync,
    K: Fn(&T) -> u64 + Sync,
{
    let n = data.len();
    if n == 0 {
        return CountSorted {
            sorted: Vec::new(),
            offsets: vec![0; num_keys + 1],
        };
    }
    // Serial path: small inputs, single-thread pools, and nested
    // parallel regions (where `broadcast` would run inline on one
    // worker). Stability makes the output identical either way.
    if n < SERIAL_CUTOFF || current_num_threads() == 1 || current_worker_index().is_some() {
        return count_sort_serial(data, num_keys, &key);
    }

    // Pass 1: per-worker private histograms over static blocks.
    let (mut hist, workers, block) = worker_histograms(data, num_keys, &key);

    // 2-D exclusive prefix sum, done in two cheap steps. First the
    // per-key totals (column sums) become the group offset table...
    let mut offsets = vec![0u64; num_keys + 1];
    {
        let offs = RowsPtr(offsets.as_mut_ptr());
        parallel_for(0..num_keys, 4096, |r| {
            for k in r {
                let total: u64 = (0..workers).map(|w| hist[w * num_keys + k]).sum();
                // SAFETY: disjoint parallel ranges write disjoint
                // offset entries.
                unsafe { *offs.get().add(k) = total };
            }
        });
    }
    let total = egraph_parallel::exclusive_prefix_sum(&mut offsets);
    debug_assert_eq!(total as usize, n);

    // ...then each column is scanned worker-major, turning every
    // (worker, key) count into the exclusive start of its disjoint
    // scatter range.
    {
        let rows = RowsPtr(hist.as_mut_ptr());
        parallel_for(0..num_keys, 1024, |r| {
            for k in r {
                let mut running = offsets[k];
                for w in 0..workers {
                    // SAFETY: column `k` is owned by this chunk
                    // (parallel ranges are disjoint) and the borrow of
                    // `hist` outlives the blocking region.
                    let cell = unsafe { &mut *rows.get().add(w * num_keys + k) };
                    let count = *cell;
                    *cell = running;
                    running += count;
                }
            }
        });
    }

    // Pass 2: scatter. Worker `w` re-scans its block in input order and
    // bumps its private cursors — no atomics, stable placement.
    let mut sorted: Vec<MaybeUninit<T>> = Vec::with_capacity(n);
    // SAFETY: `MaybeUninit<T>` requires no initialization.
    unsafe { sorted.set_len(n) };
    {
        let out = OutBuf(sorted.as_mut_ptr().cast::<T>());
        let rows = RowsPtr(hist.as_mut_ptr());
        broadcast_current(&|worker| {
            let w = worker.index();
            let start = (w * block).min(n);
            let end = ((w + 1) * block).min(n);
            // SAFETY: cursor row `w` is exclusive to worker `w`.
            let cursors =
                unsafe { std::slice::from_raw_parts_mut(rows.get().add(w * num_keys), num_keys) };
            for t in &data[start..end] {
                let k = key(t) as usize;
                let pos = cursors[k] as usize;
                cursors[k] += 1;
                // SAFETY: the 2-D prefix sum gives every (worker, key)
                // pair a disjoint range of `0..n`, and each cursor is
                // bumped once per record counted in pass 1, so every
                // `pos` is written exactly once.
                unsafe { out.get().add(pos).write(*t) };
            }
        });
    }
    if cfg!(debug_assertions) {
        // The last worker's cursor for key k must have reached the
        // start of key k + 1.
        for k in 0..num_keys {
            debug_assert_eq!(hist[(workers - 1) * num_keys + k], offsets[k + 1]);
        }
    }
    // SAFETY: all `n` slots were initialized by the scatter above;
    // `MaybeUninit<T>` and `T` share their layout.
    let sorted = unsafe {
        let mut sorted = std::mem::ManuallyDrop::new(sorted);
        Vec::from_raw_parts(sorted.as_mut_ptr().cast::<T>(), n, sorted.capacity())
    };
    CountSorted { sorted, offsets }
}

/// Single-threaded stable count sort; produces exactly the output of
/// the parallel path.
fn count_sort_serial<T, K>(data: &[T], num_keys: usize, key: &K) -> CountSorted<T>
where
    T: Copy,
    K: Fn(&T) -> u64,
{
    let n = data.len();
    let mut offsets = vec![0u64; num_keys + 1];
    for t in data {
        offsets[key(t) as usize] += 1;
    }
    let mut running = 0u64;
    for o in offsets.iter_mut() {
        let count = *o;
        *o = running;
        running += count;
    }
    let mut cursors = offsets[..num_keys].to_vec();
    let mut sorted: Vec<MaybeUninit<T>> = Vec::with_capacity(n);
    // SAFETY: `MaybeUninit<T>` requires no initialization.
    unsafe { sorted.set_len(n) };
    for t in data {
        let k = key(t) as usize;
        let pos = cursors[k] as usize;
        cursors[k] += 1;
        sorted[pos].write(*t);
    }
    // SAFETY: every slot was written exactly once (cursors start at the
    // exclusive offsets and are bumped once per record of that key).
    let sorted = unsafe {
        let mut sorted = std::mem::ManuallyDrop::new(sorted);
        Vec::from_raw_parts(sorted.as_mut_ptr().cast::<T>(), n, sorted.capacity())
    };
    CountSorted { sorted, offsets }
}

/// Shared mutable matrix pointer; every access is to a row or column
/// exclusively owned by the dereferencing worker (see call sites).
struct RowsPtr<T>(*mut T);

impl<T> RowsPtr<T> {
    #[inline]
    fn get(&self) -> *mut T {
        self.0
    }
}

// SAFETY: rows/columns are partitioned disjointly across workers.
unsafe impl<T: Send> Send for RowsPtr<T> {}
// SAFETY: same disjointness argument.
unsafe impl<T: Send> Sync for RowsPtr<T> {}

struct OutBuf<T>(*mut T);

impl<T> OutBuf<T> {
    #[inline]
    fn get(&self) -> *mut T {
        self.0
    }
}

// SAFETY: writes go to unique indices handed out by the disjoint
// (worker, key) scatter ranges (see `count_sort_by_key`).
unsafe impl<T: Send> Send for OutBuf<T> {}
// SAFETY: same uniqueness argument.
unsafe impl<T: Send> Sync for OutBuf<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_counts_keys() {
        let data = vec![0u32, 1, 1, 2, 2, 2];
        let h = key_histogram(&data, 4, |&x| x as u64);
        assert_eq!(h, vec![1, 2, 3, 0]);
    }

    #[test]
    fn large_histogram_matches_serial() {
        let n = 100_000usize;
        let num_keys = 257;
        let data: Vec<u32> = (0..n as u32)
            .map(|i| i.wrapping_mul(2_654_435_761) % num_keys as u32)
            .collect();
        let mut expected = vec![0u64; num_keys];
        for &x in &data {
            expected[x as usize] += 1;
        }
        assert_eq!(key_histogram(&data, num_keys, |&x| x as u64), expected);
    }

    #[test]
    fn empty_input() {
        let out = count_sort_by_key(&Vec::<u32>::new(), 5, |&x| x as u64);
        assert!(out.sorted.is_empty());
        assert_eq!(out.offsets, vec![0; 6]);
    }

    /// Reference implementation: stable grouping by key via a stable
    /// comparison sort.
    fn stable_reference<T: Copy, K: Fn(&T) -> u64>(data: &[T], key: K) -> Vec<T> {
        let mut out = data.to_vec();
        out.sort_by_key(|t| key(t));
        out
    }

    #[test]
    fn groups_are_contiguous_and_complete() {
        let n = 200_000usize;
        let num_keys = 1000;
        let data: Vec<(u32, u32)> = (0..n)
            .map(|i| {
                (
                    ((i as u32).wrapping_mul(2_654_435_761)) % num_keys as u32,
                    i as u32,
                )
            })
            .collect();
        let out = count_sort_by_key(&data, num_keys, |&(k, _)| k as u64);
        assert_eq!(out.sorted.len(), n);
        assert_eq!(out.offsets.len(), num_keys + 1);
        // Every record sits inside its key's offset range.
        for k in 0..num_keys {
            let (lo, hi) = (out.offsets[k] as usize, out.offsets[k + 1] as usize);
            for t in &out.sorted[lo..hi] {
                assert_eq!(t.0 as usize, k);
            }
        }
        // And the output is a permutation of the input.
        let mut got: Vec<u32> = out.sorted.iter().map(|t| t.1).collect();
        got.sort_unstable();
        let expected: Vec<u32> = (0..n as u32).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn sort_is_stable_and_thread_count_independent() {
        // Records carry their input position; a stable sort must keep
        // positions ascending within every key. The expected output is
        // computed by a thread-count-independent reference, so equality
        // here proves the parallel result is bit-identical to the
        // serial one (and hence the same at any worker count). The
        // skewed key distribution makes key 0 a hub that would have
        // hammered the old shared cursor.
        let n = 150_000usize;
        let num_keys = 64;
        let data: Vec<(u32, u32)> = (0..n)
            .map(|i| {
                let h = (i as u32).wrapping_mul(2_654_435_761) >> 16;
                let k = if h.is_multiple_of(4) {
                    0
                } else {
                    h % num_keys as u32
                };
                (k, i as u32)
            })
            .collect();
        let out = count_sort_by_key(&data, num_keys, |&(k, _)| k as u64);
        assert_eq!(out.sorted, stable_reference(&data, |&(k, _)| k as u64));
    }

    #[test]
    fn small_input_is_stable_too() {
        let data = vec![(1u32, 'a'), (0, 'b'), (1, 'c'), (0, 'd'), (1, 'e')];
        let out = count_sort_by_key(&data, 2, |&(k, _)| k as u64);
        assert_eq!(
            out.sorted,
            vec![(0, 'b'), (0, 'd'), (1, 'a'), (1, 'c'), (1, 'e')]
        );
    }

    #[test]
    fn single_key() {
        let data = vec![7u32; 1000];
        let out = count_sort_by_key(&data, 8, |&x| x as u64);
        assert_eq!(out.offsets[7], 0);
        assert_eq!(out.offsets[8], 1000);
        assert!(out.sorted.iter().all(|&x| x == 7));
    }

    #[test]
    #[should_panic]
    fn out_of_range_key_panics() {
        let data = vec![9u32];
        let _ = count_sort_by_key(&data, 5, |&x| x as u64);
    }
}

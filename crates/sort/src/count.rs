//! Parallel count sort (a.k.a. counting sort / bucket placement).
//!
//! This is the pre-processing approach "most existing graph analytics
//! frameworks use" (§3.2): a first pass over the edge array counts the
//! number of edges per vertex, a second pass places every edge at its
//! final offset. It is optimal in passes (the input is scanned exactly
//! twice) but both the degree counting and the scatter jump between
//! distant memory locations, which is why it loses to radix sort on
//! cache locality (Table 2).

use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, Ordering};

use egraph_parallel::{for_each_chunk, parallel_for, DEFAULT_GRAIN};

/// The result of a count sort: the reordered records plus the group
/// offset table (`offsets[k]..offsets[k + 1]` is the range of records
/// with key `k`), which doubles as a CSR index.
#[derive(Debug)]
pub struct CountSorted<T> {
    /// Records grouped by key (order within a group is unspecified).
    pub sorted: Vec<T>,
    /// `num_keys + 1` exclusive prefix offsets into `sorted`.
    pub offsets: Vec<u64>,
}

/// Computes the per-key histogram of `data` in parallel.
///
/// # Panics
///
/// Panics if `key` returns a value `>= num_keys`.
pub fn key_histogram<T, K>(data: &[T], num_keys: usize, key: K) -> Vec<u64>
where
    T: Sync,
    K: Fn(&T) -> u64 + Sync,
{
    let counts: Vec<AtomicU64> = (0..num_keys).map(|_| AtomicU64::new(0)).collect();
    for_each_chunk(data, DEFAULT_GRAIN, |_, chunk| {
        for t in chunk {
            counts[key(t) as usize].fetch_add(1, Ordering::Relaxed);
        }
    });
    counts.into_iter().map(AtomicU64::into_inner).collect()
}

/// Groups `data` by key using the two-pass count-sort algorithm.
///
/// The scatter uses one atomic cursor per key, so records that share a
/// key may land in any order (the sort is **unstable** when run on more
/// than one thread) — exactly the behaviour of the paper's baseline.
///
/// # Panics
///
/// Panics if `key` returns a value `>= num_keys`.
///
/// # Examples
///
/// ```
/// let data = vec![(2u32, 'a'), (0, 'b'), (2, 'c'), (1, 'd')];
/// let out = egraph_sort::count_sort_by_key(&data, 3, |&(k, _)| k as u64);
/// assert_eq!(out.offsets, vec![0, 1, 2, 4]);
/// assert_eq!(out.sorted[0], (0, 'b'));
/// assert_eq!(out.sorted[1], (1, 'd'));
/// ```
pub fn count_sort_by_key<T, K>(data: &[T], num_keys: usize, key: K) -> CountSorted<T>
where
    T: Copy + Send + Sync,
    K: Fn(&T) -> u64 + Sync,
{
    let n = data.len();
    // Pass 1: degree counting (random accesses into the counter array).
    let mut offsets = key_histogram(data, num_keys, &key);
    offsets.push(0);
    let total = egraph_parallel::exclusive_prefix_sum(&mut offsets);
    debug_assert_eq!(total as usize, n);

    // Pass 2: scatter through per-key atomic cursors.
    let cursors: Vec<AtomicU64> = offsets[..num_keys]
        .iter()
        .map(|&o| AtomicU64::new(o))
        .collect();
    let mut sorted: Vec<MaybeUninit<T>> = Vec::with_capacity(n);
    // SAFETY: `MaybeUninit<T>` requires no initialization.
    unsafe { sorted.set_len(n) };
    {
        let out = OutBuf(sorted.as_mut_ptr().cast::<T>());
        parallel_for(0..n, DEFAULT_GRAIN, |r| {
            for t in &data[r] {
                let k = key(t) as usize;
                let pos = cursors[k].fetch_add(1, Ordering::Relaxed) as usize;
                // SAFETY: each key's cursor starts at its exclusive
                // offset and is bumped once per record with that key,
                // so every `pos` in `0..n` is written exactly once.
                unsafe { out.get().add(pos).write(*t) };
            }
        });
    }
    if cfg!(debug_assertions) {
        for (k, cursor) in cursors.iter().enumerate() {
            debug_assert_eq!(cursor.load(Ordering::Relaxed), offsets[k + 1]);
        }
    }
    // SAFETY: all `n` slots were initialized by the scatter above;
    // `MaybeUninit<T>` and `T` share their layout.
    let sorted = unsafe {
        let mut sorted = std::mem::ManuallyDrop::new(sorted);
        Vec::from_raw_parts(sorted.as_mut_ptr().cast::<T>(), n, sorted.capacity())
    };
    CountSorted { sorted, offsets }
}

struct OutBuf<T>(*mut T);

impl<T> OutBuf<T> {
    #[inline]
    fn get(&self) -> *mut T {
        self.0
    }
}

// SAFETY: writes go to unique indices handed out by atomic cursors
// (see `count_sort_by_key`), so no two threads touch the same slot.
unsafe impl<T: Send> Send for OutBuf<T> {}
// SAFETY: same uniqueness argument.
unsafe impl<T: Send> Sync for OutBuf<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_counts_keys() {
        let data = vec![0u32, 1, 1, 2, 2, 2];
        let h = key_histogram(&data, 4, |&x| x as u64);
        assert_eq!(h, vec![1, 2, 3, 0]);
    }

    #[test]
    fn empty_input() {
        let out = count_sort_by_key(&Vec::<u32>::new(), 5, |&x| x as u64);
        assert!(out.sorted.is_empty());
        assert_eq!(out.offsets, vec![0; 6]);
    }

    #[test]
    fn groups_are_contiguous_and_complete() {
        let n = 200_000usize;
        let num_keys = 1000;
        let data: Vec<(u32, u32)> = (0..n)
            .map(|i| {
                (
                    ((i as u32).wrapping_mul(2_654_435_761)) % num_keys as u32,
                    i as u32,
                )
            })
            .collect();
        let out = count_sort_by_key(&data, num_keys, |&(k, _)| k as u64);
        assert_eq!(out.sorted.len(), n);
        assert_eq!(out.offsets.len(), num_keys + 1);
        // Every record sits inside its key's offset range.
        for k in 0..num_keys {
            let (lo, hi) = (out.offsets[k] as usize, out.offsets[k + 1] as usize);
            for t in &out.sorted[lo..hi] {
                assert_eq!(t.0 as usize, k);
            }
        }
        // And the output is a permutation of the input.
        let mut got: Vec<u32> = out.sorted.iter().map(|t| t.1).collect();
        got.sort_unstable();
        let expected: Vec<u32> = (0..n as u32).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn single_key() {
        let data = vec![7u32; 1000];
        let out = count_sort_by_key(&data, 8, |&x| x as u64);
        assert_eq!(out.offsets[7], 0);
        assert_eq!(out.offsets[8], 1000);
        assert!(out.sorted.iter().all(|&x| x == 7));
    }

    #[test]
    #[should_panic]
    fn out_of_range_key_panics() {
        let data = vec![9u32];
        let _ = count_sort_by_key(&data, 5, |&x| x as u64);
    }
}

//! Parallel MSD radix sort with 8-bit digits (256 buckets per level).
//!
//! The top level runs a chunked, *stable* histogram/scatter pass across
//! all pool workers; each resulting bucket then becomes a task in a
//! dynamic work-stealing pool and is sorted recursively, one digit at a
//! time, falling back to a stable comparison sort for small buckets.
//! The whole sort is therefore stable, which the grid builder relies on
//! to keep intra-cell edge order deterministic.

use std::mem::MaybeUninit;

use egraph_parallel::{dynamic_tasks, exclusive_prefix_sum, parallel_for, Spawner};

const RADIX_BITS: u32 = 8;
const BUCKETS: usize = 1 << RADIX_BITS;
/// Buckets at or below this size are finished with a comparison sort.
const SEQ_THRESHOLD: usize = 4 * 1024;
/// Inputs at or below this size skip the parallel top level entirely.
const TOP_LEVEL_THRESHOLD: usize = 64 * 1024;
/// Chunk size of the parallel top-level histogram/scatter pass.
const TOP_CHUNK: usize = 64 * 1024;

/// Sorts `data` by `key`, treating keys as `key_bits`-bit integers.
///
/// Keys wider than `key_bits` bits are a caller bug: the high bits are
/// ignored, so such records end up ordered by their low `key_bits` bits
/// only. `key_bits` is clamped to `1..=64`.
///
/// The sort is **stable**: records with equal keys keep their input
/// order.
///
/// # Examples
///
/// ```
/// let mut v: Vec<u64> = vec![170, 45, 75, 90, 802, 24, 2, 66];
/// egraph_sort::radix_sort_by_key(&mut v, 10, |&x| x);
/// assert_eq!(v, vec![2, 24, 45, 66, 75, 90, 170, 802]);
/// ```
pub fn radix_sort_by_key<T, K>(data: &mut [T], key_bits: u32, key: K)
where
    T: Copy + Send + Sync,
    K: Fn(&T) -> u64 + Sync,
{
    let n = data.len();
    if n <= 1 {
        return;
    }
    let key_bits = key_bits.clamp(1, 64);
    let digits = key_bits.div_ceil(RADIX_BITS);
    let top_shift = (digits - 1) * RADIX_BITS;

    if n <= SEQ_THRESHOLD {
        data.sort_by_key(|t| key(t));
        return;
    }

    let mut scratch: Vec<MaybeUninit<T>> = Vec::with_capacity(n);
    // SAFETY: `MaybeUninit<T>` requires no initialization and the
    // capacity was just reserved.
    unsafe { scratch.set_len(n) };

    let data_buf = Buf(data.as_mut_ptr());
    let scratch_buf = Buf(scratch.as_mut_ptr().cast::<T>());

    if n <= TOP_LEVEL_THRESHOLD {
        // Modest input: a single sequential top level plus parallel
        // bucket tasks.
        // SAFETY: `data_buf`/`scratch_buf` point at live buffers of
        // length `n`, and `0..n` is the whole (disjoint) range.
        let tasks =
            unsafe { scatter_level_seq(data_buf, scratch_buf, 0, n, top_shift, true, &key) };
        run_bucket_tasks(tasks, data_buf, scratch_buf, &key);
        return;
    }

    // Parallel stable top level: per-chunk histograms, transposed
    // prefix to get stable per-chunk bucket cursors, parallel scatter.
    let num_chunks = n.div_ceil(TOP_CHUNK);
    let mut counts = vec![0u64; num_chunks * BUCKETS];
    {
        let counts_ptr = Buf(counts.as_mut_ptr());
        parallel_for(0..num_chunks, 1, |chunks| {
            for c in chunks {
                let start = c * TOP_CHUNK;
                let end = n.min(start + TOP_CHUNK);
                // SAFETY: chunk `c` is visited exactly once, so this
                // 256-entry row of `counts` is exclusively ours; the
                // data range read is immutable during this pass.
                let row = unsafe {
                    std::slice::from_raw_parts_mut(counts_ptr.get().add(c * BUCKETS), BUCKETS)
                };
                let src =
                    unsafe { std::slice::from_raw_parts(data_buf.get().add(start), end - start) };
                for t in src {
                    row[digit(key(t), top_shift)] += 1;
                }
            }
        });
    }

    // counts is chunk-major; build stable cursors: cursor[c][b] =
    // bucket_start[b] + sum over earlier chunks of counts[_][b].
    let mut bucket_totals = [0u64; BUCKETS];
    for c in 0..num_chunks {
        for b in 0..BUCKETS {
            bucket_totals[b] += counts[c * BUCKETS + b];
        }
    }
    let mut bucket_starts = bucket_totals;
    exclusive_prefix_sum(&mut bucket_starts);
    {
        // Rewrite `counts` in place into per-chunk cursors.
        let mut running = bucket_starts;
        for c in 0..num_chunks {
            for b in 0..BUCKETS {
                let cnt = counts[c * BUCKETS + b];
                counts[c * BUCKETS + b] = running[b];
                running[b] += cnt;
            }
        }
    }

    {
        let counts_ref = &counts;
        parallel_for(0..num_chunks, 1, |chunks| {
            for c in chunks {
                let start = c * TOP_CHUNK;
                let end = n.min(start + TOP_CHUNK);
                let mut cursors = [0u64; BUCKETS];
                cursors.copy_from_slice(&counts_ref[c * BUCKETS..(c + 1) * BUCKETS]);
                // SAFETY: reads cover this worker's chunk only; writes
                // go through per-chunk cursors whose ranges are disjoint
                // across chunks by construction of the prefix above.
                unsafe {
                    let src = std::slice::from_raw_parts(data_buf.get().add(start), end - start);
                    for t in src {
                        let b = digit(key(t), top_shift);
                        let pos = cursors[b] as usize;
                        cursors[b] += 1;
                        scratch_buf.get().add(pos).write(*t);
                    }
                }
            }
        });
    }

    if top_shift == 0 {
        // Single-digit keys: scratch now holds the sorted output.
        copy_back_parallel(scratch_buf, data_buf, 0, n);
        return;
    }

    let mut tasks = Vec::new();
    let mut offset = 0u64;
    for (b, &total) in bucket_totals.iter().enumerate() {
        debug_assert_eq!(offset, bucket_starts[b]);
        if total > 0 {
            tasks.push(Task {
                start: offset as usize,
                len: total as usize,
                shift: top_shift - RADIX_BITS,
                src_in_data: false,
            });
        }
        offset += total;
    }
    run_bucket_tasks(tasks, data_buf, scratch_buf, &key);
}

/// A pending range sort: `len` records at `start`, next digit at
/// `shift`, currently living in `data` or `scratch`.
#[derive(Debug, Clone, Copy)]
struct Task {
    start: usize,
    len: usize,
    shift: u32,
    src_in_data: bool,
}

fn run_bucket_tasks<T, K>(tasks: Vec<Task>, data: Buf<T>, scratch: Buf<T>, key: &K)
where
    T: Copy + Send + Sync,
    K: Fn(&T) -> u64 + Sync,
{
    dynamic_tasks(tasks, |task, spawner| {
        // SAFETY: tasks operate on pairwise-disjoint ranges — the top
        // level creates disjoint buckets and `scatter_level_seq` only
        // spawns sub-ranges of its own range.
        unsafe { sort_task(task, data, scratch, key, spawner) };
    });
}

/// Sorts one task range; may spawn sub-tasks for large buckets.
///
/// # Safety
///
/// `task`'s range must be disjoint from every other live task's range,
/// and both buffers must be valid for `task.start + task.len` elements.
unsafe fn sort_task<T, K>(
    task: Task,
    data: Buf<T>,
    scratch: Buf<T>,
    key: &K,
    spawner: &Spawner<'_, Task>,
) where
    T: Copy + Send + Sync,
    K: Fn(&T) -> u64 + Sync,
{
    let Task {
        start,
        len,
        shift,
        src_in_data,
    } = task;
    if len <= SEQ_THRESHOLD {
        finish_small(data, scratch, start, len, src_in_data, key);
        return;
    }
    let tasks = scatter_level_seq(data, scratch, start, len, shift, src_in_data, key);
    for t in tasks {
        if t.len > SEQ_THRESHOLD {
            spawner.spawn(t);
        } else {
            // Handle small buckets inline to avoid task overhead.
            finish_small(data, scratch, t.start, t.len, t.src_in_data, key);
        }
    }
}

/// Comparison-sorts a small range by the *full* key and makes sure the
/// result ends up in `data`.
///
/// # Safety
///
/// The range must be exclusively owned by the caller and initialized in
/// whichever buffer `src_in_data` points at.
unsafe fn finish_small<T, K>(
    data: Buf<T>,
    scratch: Buf<T>,
    start: usize,
    len: usize,
    src_in_data: bool,
    key: &K,
) where
    T: Copy,
    K: Fn(&T) -> u64,
{
    if len == 0 {
        return;
    }
    let src = if src_in_data { data } else { scratch };
    let slice = std::slice::from_raw_parts_mut(src.get().add(start), len);
    slice.sort_by_key(|t| key(t));
    if !src_in_data {
        std::ptr::copy_nonoverlapping(scratch.get().add(start), data.get().add(start), len);
    }
}

/// One sequential histogram+scatter level over `[start, start+len)`.
///
/// Returns follow-up tasks for the buckets (empty if this was the last
/// digit, in which case the data has been moved back into `data` if
/// needed).
///
/// # Safety
///
/// The range must be exclusively owned by the caller, initialized in
/// the `src_in_data` buffer, and within both buffers' bounds.
unsafe fn scatter_level_seq<T, K>(
    data: Buf<T>,
    scratch: Buf<T>,
    start: usize,
    len: usize,
    shift: u32,
    src_in_data: bool,
    key: &K,
) -> Vec<Task>
where
    T: Copy,
    K: Fn(&T) -> u64,
{
    let (src, dst) = if src_in_data {
        (data, scratch)
    } else {
        (scratch, data)
    };
    let src_slice = std::slice::from_raw_parts(src.get().add(start), len);

    let mut counts = [0u64; BUCKETS];
    for t in src_slice {
        counts[digit(key(t), shift)] += 1;
    }
    let mut cursors = counts;
    exclusive_prefix_sum(&mut cursors);
    let bucket_starts = cursors;
    let mut write_cursors = bucket_starts;
    for t in src_slice {
        let b = digit(key(t), shift);
        let pos = start + write_cursors[b] as usize;
        write_cursors[b] += 1;
        dst.get().add(pos).write(*t);
    }

    if shift == 0 {
        if src_in_data {
            // Sorted data now sits in scratch; move it home.
            std::ptr::copy_nonoverlapping(scratch.get().add(start), data.get().add(start), len);
        }
        return Vec::new();
    }

    let mut tasks = Vec::new();
    for b in 0..BUCKETS {
        let cnt = counts[b] as usize;
        if cnt > 0 {
            tasks.push(Task {
                start: start + bucket_starts[b] as usize,
                len: cnt,
                shift: shift - RADIX_BITS,
                src_in_data: !src_in_data,
            });
        }
    }
    tasks
}

fn copy_back_parallel<T: Copy + Send + Sync>(from: Buf<T>, to: Buf<T>, start: usize, len: usize) {
    parallel_for(start..start + len, TOP_CHUNK, |r| {
        // SAFETY: `parallel_for` ranges are disjoint; both buffers are
        // valid for the whole range and `from` was fully written.
        unsafe {
            std::ptr::copy_nonoverlapping(from.get().add(r.start), to.get().add(r.start), r.len());
        }
    });
}

#[inline]
fn digit(key: u64, shift: u32) -> usize {
    ((key >> shift) & (BUCKETS as u64 - 1)) as usize
}

/// Raw buffer pointer shared across workers.
struct Buf<T>(*mut T);

impl<T> Buf<T> {
    #[inline]
    fn get(&self) -> *mut T {
        self.0
    }
}

impl<T> Clone for Buf<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Buf<T> {}

// SAFETY: all access paths operate on caller-proven disjoint ranges
// (see the `# Safety` contracts above), so sharing the raw pointer
// across workers cannot alias.
unsafe impl<T: Send> Send for Buf<T> {}
// SAFETY: same disjointness argument.
unsafe impl<T: Send> Sync for Buf<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_sorted_u64(mut v: Vec<u64>, bits: u32) {
        let mut expected = v.clone();
        expected.sort();
        radix_sort_by_key(&mut v, bits, |&x| x);
        assert_eq!(v, expected);
    }

    #[test]
    fn empty_and_singleton() {
        check_sorted_u64(vec![], 8);
        check_sorted_u64(vec![7], 8);
    }

    #[test]
    fn small_comparison_fallback() {
        check_sorted_u64(vec![5, 3, 9, 1, 1, 0, 255], 8);
    }

    #[test]
    fn medium_single_digit() {
        let v: Vec<u64> = (0..100_000u64).map(|i| (i * 2_654_435_761) % 256).collect();
        check_sorted_u64(v, 8);
    }

    #[test]
    fn large_multi_digit() {
        let v: Vec<u64> = (0..500_000u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40)
            .collect();
        check_sorted_u64(v, 24);
    }

    #[test]
    fn full_64_bit_keys() {
        let v: Vec<u64> = (0..200_000u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .collect();
        check_sorted_u64(v, 64);
    }

    #[test]
    fn stability_preserved() {
        // Records carry their original index; equal keys must stay in
        // input order.
        let n = 300_000usize;
        let mut v: Vec<(u32, u32)> = (0..n)
            .map(|i| (((i as u32).wrapping_mul(2_654_435_761)) % 64, i as u32))
            .collect();
        radix_sort_by_key(&mut v, 6, |&(k, _)| k as u64);
        for w in v.windows(2) {
            assert!(w[0].0 <= w[1].0);
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1, "stability violated: {:?} {:?}", w[0], w[1]);
            }
        }
    }

    #[test]
    fn all_equal_keys() {
        let mut v: Vec<(u64, usize)> = (0..200_000).map(|i| (42u64, i)).collect();
        radix_sort_by_key(&mut v, 16, |&(k, _)| k);
        for (i, &(k, idx)) in v.iter().enumerate() {
            assert_eq!(k, 42);
            assert_eq!(idx, i);
        }
    }

    #[test]
    fn already_sorted_and_reversed() {
        check_sorted_u64((0..300_000u64).collect(), 20);
        check_sorted_u64((0..300_000u64).rev().collect(), 20);
    }

    #[test]
    fn key_bits_clamped() {
        let mut v = vec![3u64, 1, 2];
        radix_sort_by_key(&mut v, 0, |&x| x);
        assert_eq!(v, vec![1, 2, 3]);
    }
}

//! Sorting kernels for graph pre-processing.
//!
//! §3.2 of the paper compares two ways of turning an edge array into
//! adjacency lists (CSR): the ubiquitous **count sort** — one pass to
//! count per-vertex degrees, one pass to scatter edges to their final
//! offsets — and a **parallel radix sort** in the style of Zagha &
//! Blelloch that treats keys as 8-bit digits and recursively buckets
//! them. The paper's surprising result (Table 2) is that radix sort is
//! ~4.8× faster because its buckets are written sequentially and
//! therefore cache-resident, while count sort's scatter jumps between
//! distant offsets.
//!
//! Both kernels are provided here, generic over the record type and a
//! key-extraction function, so the same code builds out-CSRs (key =
//! source vertex), in-CSRs (key = destination vertex) and grids (key =
//! cell id).
//!
//! # Examples
//!
//! ```
//! let mut pairs: Vec<(u32, u32)> = vec![(3, 0), (1, 1), (3, 2), (0, 3)];
//! egraph_sort::radix_sort_by_key(&mut pairs, 8, |&(k, _)| k as u64);
//! assert_eq!(pairs, vec![(0, 3), (1, 1), (3, 0), (3, 2)]);
//! ```

pub mod count;
pub mod radix;

pub use count::{count_sort_by_key, key_histogram, CountSorted};
pub use radix::radix_sort_by_key;

/// Returns the number of bits needed to represent keys in `0..n`.
///
/// Used to size the radix recursion: a graph with `n` vertices needs
/// `key_bits(n)` bits of vertex-id key, i.e. `key_bits(n).div_ceil(8)`
/// radix passes.
///
/// # Examples
///
/// ```
/// assert_eq!(egraph_sort::key_bits(0), 1);
/// assert_eq!(egraph_sort::key_bits(256), 8);
/// assert_eq!(egraph_sort::key_bits(257), 9);
/// ```
pub fn key_bits(n: usize) -> u32 {
    let max_key = n.saturating_sub(1) as u64;
    (64 - max_key.leading_zeros()).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_bits_boundaries() {
        assert_eq!(key_bits(1), 1);
        assert_eq!(key_bits(2), 1);
        assert_eq!(key_bits(3), 2);
        assert_eq!(key_bits(1 << 20), 20);
        assert_eq!(key_bits((1 << 20) + 1), 21);
    }
}

//! Property tests: both sorting kernels must agree with the standard
//! library's sort for arbitrary inputs, key widths and key skews.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn radix_equals_std_stable_sort(
        data in proptest::collection::vec(any::<u32>(), 0..30_000),
        bits_over in 0u32..3,
    ) {
        // Tag every record with its index so stability is observable.
        let tagged: Vec<(u32, usize)> =
            data.iter().copied().zip(0..).collect();
        let max = data.iter().copied().max().unwrap_or(0) as u64;
        let bits = (64 - max.leading_zeros()).max(1) + bits_over;
        let mut got = tagged.clone();
        egraph_sort::radix_sort_by_key(&mut got, bits, |&(k, _)| k as u64);
        let mut expected = tagged;
        expected.sort_by_key(|&(k, _)| k);
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn radix_skewed_keys(
        data in proptest::collection::vec(0u64..16, 0..50_000),
    ) {
        let mut got = data.clone();
        egraph_sort::radix_sort_by_key(&mut got, 4, |&x| x);
        let mut expected = data;
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn count_sort_is_grouped_permutation(
        data in proptest::collection::vec(0u64..500, 0..30_000),
    ) {
        let tagged: Vec<(u64, usize)> = data.iter().copied().zip(0..).collect();
        let out = egraph_sort::count_sort_by_key(&tagged, 500, |&(k, _)| k);
        // Offsets match the histogram.
        for k in 0..500usize {
            let expected = data.iter().filter(|&&x| x == k as u64).count() as u64;
            prop_assert_eq!(out.offsets[k + 1] - out.offsets[k], expected);
        }
        // Each group holds only its key.
        for k in 0..500usize {
            for t in &out.sorted[out.offsets[k] as usize..out.offsets[k + 1] as usize] {
                prop_assert_eq!(t.0, k as u64);
            }
        }
        // Output is a permutation of the input.
        let mut tags: Vec<usize> = out.sorted.iter().map(|t| t.1).collect();
        tags.sort_unstable();
        prop_assert_eq!(tags, (0..data.len()).collect::<Vec<_>>());
    }

    #[test]
    fn radix_and_count_agree_on_grouping(
        data in proptest::collection::vec(0u64..64, 0..20_000),
    ) {
        let mut radixed = data.clone();
        egraph_sort::radix_sort_by_key(&mut radixed, 6, |&x| x);
        let counted = egraph_sort::count_sort_by_key(&data, 64, |&x| x);
        prop_assert_eq!(radixed, counted.sorted);
    }

    #[test]
    fn histogram_matches_filter_count(
        data in proptest::collection::vec(0u64..100, 0..20_000),
    ) {
        let h = egraph_sort::key_histogram(&data, 100, |&x| x);
        for k in 0..100u64 {
            prop_assert_eq!(h[k as usize], data.iter().filter(|&&x| x == k).count() as u64);
        }
    }
}

//! Criterion micro-benchmarks of the pre-processing sort kernels
//! (the §3.2 comparison at kernel granularity).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use egraph_core::types::EdgeRecord;
use std::hint::black_box;

fn edges(scale: u32) -> Vec<egraph_core::types::Edge> {
    egraph_bench::graphs::rmat(scale).into_edges()
}

fn bench_sorts(c: &mut Criterion) {
    let mut group = c.benchmark_group("adjacency_build_kernels");
    for scale in [14u32, 16] {
        let input = edges(scale);
        let nv = 1usize << scale;
        group.throughput(Throughput::Elements(input.len() as u64));

        group.bench_with_input(BenchmarkId::new("radix_sort", scale), &input, |b, input| {
            b.iter(|| {
                let mut data = input.clone();
                egraph_sort::radix_sort_by_key(&mut data, egraph_sort::key_bits(nv), |e| {
                    e.src() as u64
                });
                black_box(data.len())
            })
        });

        group.bench_with_input(BenchmarkId::new("count_sort", scale), &input, |b, input| {
            b.iter(|| {
                let out = egraph_sort::count_sort_by_key(input, nv, |e| e.src() as u64);
                black_box(out.sorted.len())
            })
        });

        group.bench_with_input(
            BenchmarkId::new("std_unstable", scale),
            &input,
            |b, input| {
                b.iter(|| {
                    let mut data = input.clone();
                    data.sort_unstable_by_key(|e| e.src());
                    black_box(data.len())
                })
            },
        );

        // The dynamic strategy end to end: per-worker sharded grouping
        // with a lock-free parallel merge.
        let list = egraph_core::types::EdgeList::new(nv, input.clone()).unwrap();
        group.bench_with_input(
            BenchmarkId::new("dynamic_group", scale),
            &list,
            |b, list| {
                b.iter(|| {
                    let adj = egraph_core::preprocess::build_one_direction(
                        list,
                        egraph_core::preprocess::Strategy::Dynamic,
                        false,
                    );
                    black_box(adj.num_edges())
                })
            },
        );
    }
    group.finish();
}

fn bench_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("prefix_sum");
    for size in [1usize << 16, 1 << 20] {
        let input: Vec<u64> = (0..size as u64).map(|i| i % 7).collect();
        group.throughput(Throughput::Elements(size as u64));
        group.bench_with_input(BenchmarkId::new("exclusive", size), &input, |b, input| {
            b.iter(|| {
                let mut data = input.clone();
                black_box(egraph_parallel::exclusive_prefix_sum(&mut data))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sorts, bench_scan);
criterion_main!(benches);

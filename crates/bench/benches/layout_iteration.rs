//! Per-layout edge-iteration throughput: one PageRank accumulation
//! step over an adjacency list, an edge array and a grid — the raw
//! cost behind Fig. 3 and Fig. 5.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use egraph_core::algo::pagerank::{self, PagerankConfig, PushSync};
use egraph_core::layout::EdgeDirection;
use egraph_core::preprocess::{CsrBuilder, GridBuilder, Strategy};
use std::hint::black_box;

fn bench_layouts(c: &mut Criterion) {
    let scale = 15u32;
    let graph = egraph_bench::graphs::rmat(scale);
    let degrees = egraph_bench::graphs::out_degrees_u32(&graph);
    let adj = CsrBuilder::new(Strategy::RadixSort, EdgeDirection::Both).build(&graph);
    let grid = GridBuilder::new(Strategy::RadixSort).side(16).build(&graph);
    let cfg = PagerankConfig {
        iterations: 1,
        ..Default::default()
    };

    let mut group = c.benchmark_group("pagerank_one_iteration");
    group.throughput(Throughput::Elements(graph.num_edges() as u64));

    group.bench_function(BenchmarkId::new("adj_pull_nolock", scale), |b| {
        b.iter(|| black_box(pagerank::pull(adj.incoming(), &degrees, cfg).ranks[0]))
    });
    group.bench_function(BenchmarkId::new("adj_push_atomics", scale), |b| {
        b.iter(|| black_box(pagerank::push(adj.out(), &degrees, cfg, PushSync::Atomics).ranks[0]))
    });
    group.bench_function(BenchmarkId::new("edge_array_atomics", scale), |b| {
        b.iter(|| {
            black_box(pagerank::edge_centric(&graph, &degrees, cfg, PushSync::Atomics).ranks[0])
        })
    });
    group.bench_function(BenchmarkId::new("grid_columns_nolock", scale), |b| {
        b.iter(|| black_box(pagerank::grid_push(&grid, &degrees, cfg, false).ranks[0]))
    });
    group.finish();
}

criterion_group!(benches, bench_layouts);
criterion_main!(benches);

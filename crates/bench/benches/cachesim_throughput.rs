//! Throughput of the LLC simulator itself — how much a probed
//! measurement run costs per simulated access, and the relative price
//! of sequential vs random streams.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use egraph_cachesim::{AccessKind, CacheConfig, LlcProbe, MemProbe, SetAssocCache};
use std::hint::black_box;

const N: u64 = 1 << 18;

fn bench_cache_core(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_access");
    group.throughput(Throughput::Elements(N));
    group.bench_function("sequential", |b| {
        let mut cache = SetAssocCache::new(CacheConfig::machine_b_llc());
        b.iter(|| {
            let mut hits = 0u64;
            for i in 0..N {
                hits += u64::from(cache.access(i * 8));
            }
            black_box(hits)
        })
    });
    group.bench_function("random", |b| {
        let mut cache = SetAssocCache::new(CacheConfig::machine_b_llc());
        b.iter(|| {
            let mut hits = 0u64;
            let mut state = 0x12345678u64;
            for _ in 0..N {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                hits += u64::from(cache.access((state >> 16) % (1 << 32)));
            }
            black_box(hits)
        })
    });
    group.finish();
}

fn bench_probe_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("probe_touch");
    group.throughput(Throughput::Elements(N));
    let probe = LlcProbe::new(CacheConfig::machine_b_llc());
    group.bench_function("llc_probe", |b| {
        b.iter(|| {
            for i in 0..N {
                probe.touch(AccessKind::Edge, i * 8);
            }
            black_box(probe.report().total().accesses)
        })
    });
    group.bench_function("null_probe", |b| {
        let null = egraph_cachesim::NullProbe;
        b.iter(|| {
            for i in 0..N {
                null.touch(AccessKind::Edge, i * 8);
            }
            black_box(null.enabled())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_cache_core, bench_probe_overhead);
criterion_main!(benches);

//! Storage-format throughput: encode/decode rates of the binary edge
//! format and the cost of the chunked (overlappable) read path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use egraph_core::types::{Edge, EdgeList};
use egraph_storage::{read_edge_list, read_edge_list_chunked, write_edge_list};
use std::hint::black_box;

fn graph(scale: u32) -> EdgeList<Edge> {
    egraph_bench::graphs::rmat(scale)
}

fn bench_format(c: &mut Criterion) {
    let mut group = c.benchmark_group("edge_format");
    for scale in [14u32, 17] {
        let g = graph(scale);
        let mut file = Vec::new();
        write_edge_list(&mut file, &g).unwrap();
        group.throughput(Throughput::Bytes(file.len() as u64));

        group.bench_with_input(BenchmarkId::new("encode", scale), &g, |b, g| {
            b.iter(|| {
                let mut out = Vec::with_capacity(file.len());
                write_edge_list(&mut out, g).unwrap();
                black_box(out.len())
            })
        });
        group.bench_with_input(BenchmarkId::new("decode_whole", scale), &file, |b, file| {
            b.iter(|| {
                let g: EdgeList<Edge> = read_edge_list(&file[..]).unwrap();
                black_box(g.num_edges())
            })
        });
        group.bench_with_input(
            BenchmarkId::new("decode_chunked", scale),
            &file,
            |b, file| {
                b.iter(|| {
                    let mut total = 0usize;
                    read_edge_list_chunked::<Edge, _>(&file[..], |chunk| total += chunk.len())
                        .unwrap();
                    black_box(total)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_format);
criterion_main!(benches);

//! Ablations of design choices DESIGN.md calls out: synchronization
//! strategy (locks vs atomics vs structural no-lock), grid side P, and
//! the work-queue grain size of the parallel runtime.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use egraph_core::algo::pagerank::{self, PagerankConfig, PushSync};
use egraph_core::layout::EdgeDirection;
use egraph_core::preprocess::{CsrBuilder, GridBuilder, Strategy};
use std::hint::black_box;

fn bench_sync_strategies(c: &mut Criterion) {
    let graph = egraph_bench::graphs::rmat(14);
    let degrees = egraph_bench::graphs::out_degrees_u32(&graph);
    let adj = CsrBuilder::new(Strategy::RadixSort, EdgeDirection::Both).build(&graph);
    let cfg = PagerankConfig {
        iterations: 1,
        ..Default::default()
    };

    let mut group = c.benchmark_group("sync_strategy_ablation");
    group.throughput(Throughput::Elements(graph.num_edges() as u64));
    group.bench_function("push_locks", |b| {
        b.iter(|| black_box(pagerank::push(adj.out(), &degrees, cfg, PushSync::Locks).ranks[0]))
    });
    group.bench_function("push_atomics", |b| {
        b.iter(|| black_box(pagerank::push(adj.out(), &degrees, cfg, PushSync::Atomics).ranks[0]))
    });
    group.bench_function("pull_no_sync", |b| {
        b.iter(|| black_box(pagerank::pull(adj.incoming(), &degrees, cfg).ranks[0]))
    });
    group.finish();
}

fn bench_grid_side(c: &mut Criterion) {
    // "The optimal number of cells in the grid depends on the graph
    // shape and size" (§5.1) — sweep P.
    let graph = egraph_bench::graphs::rmat(15);
    let degrees = egraph_bench::graphs::out_degrees_u32(&graph);
    let cfg = PagerankConfig {
        iterations: 1,
        ..Default::default()
    };
    let mut group = c.benchmark_group("grid_side_ablation");
    group.throughput(Throughput::Elements(graph.num_edges() as u64));
    for side in [4usize, 16, 64, 256] {
        let grid = GridBuilder::new(Strategy::RadixSort)
            .side(side)
            .build(&graph);
        group.bench_with_input(BenchmarkId::new("pagerank_step", side), &grid, |b, grid| {
            b.iter(|| black_box(pagerank::grid_push(grid, &degrees, cfg, false).ranks[0]))
        });
    }
    group.finish();
}

fn bench_grain_size(c: &mut Criterion) {
    // The paper's "large enough chunks to reduce the work distribution
    // overheads" (§2) — sweep the chunk size of the shared work queue.
    let data: Vec<u64> = (0..1u64 << 20).collect();
    let mut group = c.benchmark_group("work_queue_grain");
    group.throughput(Throughput::Elements(data.len() as u64));
    for grain in [64usize, 1024, 16384, 262144] {
        group.bench_with_input(
            BenchmarkId::new("reduce_sum", grain),
            &grain,
            |b, &grain| {
                b.iter(|| {
                    black_box(egraph_parallel::parallel_reduce(
                        0..data.len(),
                        grain,
                        || 0u64,
                        |acc, r| acc + data[r].iter().sum::<u64>(),
                        |a, b| a + b,
                    ))
                })
            },
        );
    }
    group.finish();
}

fn bench_schedulers(c: &mut Criterion) {
    // Shared-counter chunk queue vs per-worker-deque work stealing, on
    // an even loop and on a pathologically skewed one.
    let n = 1usize << 18;
    let mut group = c.benchmark_group("scheduler_ablation");
    group.throughput(Throughput::Elements(n as u64));

    let even_work = |r: std::ops::Range<usize>| {
        let mut acc = 0u64;
        for i in r {
            acc = acc.wrapping_add((i as u64).wrapping_mul(0x9E37_79B9));
        }
        black_box(acc);
    };
    group.bench_function("chunk_queue_even", |b| {
        b.iter(|| egraph_parallel::parallel_for(0..n, 1024, even_work))
    });
    group.bench_function("work_stealing_even", |b| {
        b.iter(|| egraph_parallel::stealing::stealing_for(0..n, 1024, even_work))
    });

    let skewed_work = |r: std::ops::Range<usize>| {
        let mut acc = 0u64;
        for i in r {
            // The first 64 indices cost ~1000x the rest.
            let reps = if i < 64 { 1000 } else { 1 };
            for _ in 0..reps {
                acc = acc.wrapping_add(i as u64);
            }
        }
        black_box(acc);
    };
    group.bench_function("chunk_queue_skewed", |b| {
        b.iter(|| egraph_parallel::parallel_for(0..n, 1024, skewed_work))
    });
    group.bench_function("work_stealing_skewed", |b| {
        b.iter(|| egraph_parallel::stealing::stealing_for(0..n, 1024, skewed_work))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_sync_strategies,
    bench_grid_side,
    bench_grain_size,
    bench_schedulers
);
criterion_main!(benches);

//! NUMA substrate throughput: the real partitioning pass and the
//! locality-profile computation the §7 experiments run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use egraph_core::numa_sim::{bfs_locality, pagerank_locality, partition_by_target, DataPolicy};
use std::hint::black_box;

fn bench_partitioning(c: &mut Criterion) {
    let mut group = c.benchmark_group("numa_partition");
    for scale in [14u32, 16] {
        let graph = egraph_bench::graphs::rmat(scale);
        group.throughput(Throughput::Elements(graph.num_edges() as u64));
        for nodes in [2usize, 4] {
            group.bench_with_input(
                BenchmarkId::new(format!("partition_{nodes}nodes"), scale),
                &graph,
                |b, graph| b.iter(|| black_box(partition_by_target(graph, nodes).num_edges())),
            );
        }
    }
    group.finish();
}

fn bench_locality_profiles(c: &mut Criterion) {
    let graph = egraph_bench::graphs::rmat(15);
    let mut group = c.benchmark_group("locality_profile");
    group.throughput(Throughput::Elements(graph.num_edges() as u64));
    for policy in [DataPolicy::Interleaved, DataPolicy::NumaAware] {
        let label = match policy {
            DataPolicy::Interleaved => "interleaved",
            DataPolicy::NumaAware => "numa_aware",
        };
        group.bench_function(BenchmarkId::new("pagerank", label), |b| {
            b.iter(|| black_box(pagerank_locality(&graph, policy, 4).weighted_peak_share))
        });
        group.bench_function(BenchmarkId::new("bfs", label), |b| {
            b.iter(|| black_box(bfs_locality(&graph, 0, policy, 4).weighted_peak_share))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_partitioning, bench_locality_profiles);
criterion_main!(benches);

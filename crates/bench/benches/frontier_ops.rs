//! Frontier data-structure micro-benchmarks: sparse vs dense
//! accumulation and membership, underpinning the push/pull switch.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use egraph_core::frontier::{FrontierKind, NextFrontier, VertexSubset};
use egraph_core::util::AtomicBitmap;
use std::hint::black_box;

const NV: usize = 1 << 20;

fn bench_accumulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("next_frontier_accumulate");
    for &active in &[1usize << 8, 1 << 14, 1 << 18] {
        let vertices: Vec<u32> = (0..active as u32)
            .map(|i| i.wrapping_mul(2654435761) % NV as u32)
            .collect();
        group.throughput(Throughput::Elements(active as u64));
        group.bench_with_input(BenchmarkId::new("sparse", active), &vertices, |b, vs| {
            b.iter(|| {
                let nf = NextFrontier::new(FrontierKind::Sparse, NV);
                for chunk in vs.chunks(256) {
                    nf.extend(chunk);
                }
                black_box(nf.finish().len())
            })
        });
        group.bench_with_input(BenchmarkId::new("dense", active), &vertices, |b, vs| {
            b.iter(|| {
                let nf = NextFrontier::new(FrontierKind::Dense, NV);
                for chunk in vs.chunks(256) {
                    nf.extend(chunk);
                }
                black_box(nf.finish().len())
            })
        });
    }
    group.finish();
}

fn bench_parallel_accumulation(c: &mut Criterion) {
    // The engine's actual hot path: chunked parallel activation through
    // per-worker sinks (one borrow per chunk, zero locks).
    let mut group = c.benchmark_group("next_frontier_parallel_sink");
    for &active in &[1usize << 14, 1 << 18] {
        group.throughput(Throughput::Elements(active as u64));
        group.bench_with_input(BenchmarkId::new("sparse", active), &active, |b, &n| {
            b.iter(|| {
                let nf = NextFrontier::new(FrontierKind::Sparse, NV);
                egraph_parallel::parallel_for(0..n, 1024, |r| {
                    let mut sink = nf.sink(r.start as u64);
                    for v in r {
                        sink.add((v % NV) as u32);
                    }
                });
                black_box(nf.finish().len())
            })
        });
        group.bench_with_input(BenchmarkId::new("dense", active), &active, |b, &n| {
            b.iter(|| {
                let nf = NextFrontier::new(FrontierKind::Dense, NV);
                egraph_parallel::parallel_for(0..n, 1024, |r| {
                    let mut sink = nf.sink(r.start as u64);
                    for v in r {
                        sink.add((v % NV) as u32);
                    }
                });
                black_box(nf.finish().len())
            })
        });
    }
    group.finish();
}

fn bench_membership(c: &mut Criterion) {
    let mut group = c.benchmark_group("frontier_membership");
    let members: Vec<u32> = (0..NV as u32).step_by(37).collect();
    let dense = VertexSubset::from_vec(members).into_dense(NV);
    group.throughput(Throughput::Elements(NV as u64 / 64));
    group.bench_function("dense_contains_scan", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for v in (0..NV as u32).step_by(64) {
                hits += usize::from(dense.contains(v));
            }
            black_box(hits)
        })
    });
    let bitmap = AtomicBitmap::new(NV);
    for v in (0..NV).step_by(37) {
        bitmap.set(v);
    }
    group.bench_function("bitmap_count_ones", |b| {
        b.iter(|| black_box(bitmap.count_ones()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_accumulation,
    bench_parallel_accumulation,
    bench_membership
);
criterion_main!(benches);

//! Scaled dataset constructors matching the paper's Table 1 inputs.

use egraph_core::types::{Edge, EdgeList, EdgeRecord, WEdge};

/// Default seed of all experiment datasets (deterministic runs).
pub const SEED: u64 = 0x2017_a7c1;

/// RMAT-`scale`: `2^scale` vertices, `2^(scale+4)` edges — the paper's
/// RMAT-N convention.
pub fn rmat(scale: u32) -> EdgeList<Edge> {
    egraph_graphgen::rmat(scale, 16, SEED)
}

/// Twitter-shaped graph at the given scale (power-law, edge factor 24).
pub fn twitter_like(scale: u32) -> EdgeList<Edge> {
    egraph_graphgen::twitter_like(scale, SEED)
}

/// US-Road-shaped graph with roughly `2^scale` vertices: a high-aspect
/// lattice (high diameter, degree ≤ 4).
pub fn road_like(scale: u32) -> EdgeList<Edge> {
    // Shuffled edge order: a single thread otherwise chains label/
    // distance updates along the generator's construction order within
    // one pass, converging unrealistically fast (parallel streaming
    // breaks such chains at chunk boundaries).
    shuffled(&road_like_ordered(scale))
}

/// The road-shaped lattice in its natural construction order (strong
/// spatial locality, like a DIMACS `.gr` file's source-grouped arcs).
/// Use this variant for experiments about the *locality* of road edge
/// arrays; use [`road_like`] for convergence-sensitive algorithms.
pub fn road_like_ordered(scale: u32) -> EdgeList<Edge> {
    // Tall 1:4 aspect with row-major ids: the corner-rooted BFS
    // wavefront stays inside a narrow band of consecutive rows, i.e.
    // inside one NUMA partition at a time — the localized road-network
    // wavefront behind the Fig. 10 contention effect.
    let nv = 1usize << scale;
    let width = ((nv as f64 / 4.0).sqrt().max(2.0)) as usize;
    let height = (nv / width).max(2);
    egraph_graphgen::road_like(width, height)
}

/// Netflix-shaped bipartite ratings graph scaled from `scale`
/// (users = 2^scale, items = 2^(scale-5), ~40 ratings/user like
/// Netflix's 100 M / 480 K users ≈ 200 — scaled down to keep ALS fast).
pub fn netflix_like(scale: u32) -> (EdgeList<WEdge>, usize) {
    let users = 1usize << scale;
    let items = (users >> 5).max(16);
    (egraph_graphgen::netflix_like(users, items, 40, SEED), users)
}

/// Deterministically shuffles the edge order of a graph.
///
/// Generators emit edges in construction order (e.g. the road lattice
/// in row-major order), which is artificially friendly to streaming
/// label propagation — a single in-order pass can chain updates across
/// the whole graph. Real edge files have no such ordering; shuffling
/// restores the realistic behaviour.
pub fn shuffled<E: EdgeRecord>(graph: &EdgeList<E>) -> EdgeList<E> {
    let n = graph.num_edges();
    let mut edges = graph.edges().to_vec();
    // Fisher-Yates with a SplitMix64 stream.
    let mut state = SEED;
    for i in (1..n).rev() {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        edges.swap(i, (z % (i as u64 + 1)) as usize);
    }
    EdgeList::from_parts_unchecked(graph.num_vertices(), edges)
}

/// Attaches deterministic positive weights to an unweighted graph (for
/// SSSP/SpMV on RMAT/road inputs).
pub fn with_weights(graph: &EdgeList<Edge>) -> EdgeList<WEdge> {
    graph.map_records(|e| {
        let h = (e.src as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(e.dst as u64);
        WEdge::new(e.src, e.dst, 0.25 + ((h >> 40) % 1024) as f32 / 256.0)
    })
}

/// The highest-out-degree vertex — a root from which BFS reaches the
/// giant component of a power-law graph.
pub fn best_root<E: EdgeRecord>(graph: &EdgeList<E>) -> u32 {
    let degrees = graph.out_degrees();
    degrees
        .iter()
        .enumerate()
        .max_by_key(|(_, &d)| d)
        .map(|(v, _)| v as u32)
        .unwrap_or(0)
}

/// Out-degrees as `u32` (PageRank input).
pub fn out_degrees_u32<E: EdgeRecord>(graph: &EdgeList<E>) -> Vec<u32> {
    graph.out_degrees().iter().map(|&d| d as u32).collect()
}

/// A grid side appropriate for the graph size: the paper's 256×256 at
/// RMAT-26, scaled so each range holds a similar number of vertices,
/// clamped to [8, 256].
pub fn grid_side(num_vertices: usize) -> usize {
    // 2^26 vertices / 256 ranges = 2^18 vertices per range.
    (num_vertices / (1 << 18)).clamp(8, 256)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmat_matches_paper_convention() {
        let g = rmat(10);
        assert_eq!(g.num_vertices(), 1 << 10);
        assert_eq!(g.num_edges(), 1 << 14);
    }

    #[test]
    fn road_is_roughly_scale_sized() {
        let g = road_like(12);
        let nv = g.num_vertices();
        assert!(nv > (1 << 11) && nv <= (1 << 13), "nv = {nv}");
    }

    #[test]
    fn shuffled_road_is_a_permutation_of_ordered() {
        let ordered = road_like_ordered(10);
        let shuffled_g = road_like(10);
        assert_ne!(ordered.edges(), shuffled_g.edges(), "order must differ");
        let mut a: Vec<(u32, u32)> = ordered.edges().iter().map(|e| (e.src, e.dst)).collect();
        let mut b: Vec<(u32, u32)> = shuffled_g.edges().iter().map(|e| (e.src, e.dst)).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "same multiset");
    }

    #[test]
    fn best_root_has_max_degree() {
        let g = rmat(8);
        let root = best_root(&g);
        let degrees = g.out_degrees();
        assert_eq!(degrees[root as usize], *degrees.iter().max().unwrap());
    }

    #[test]
    fn weights_are_positive() {
        let g = with_weights(&rmat(8));
        assert!(g.edges().iter().all(|e| e.weight > 0.0));
    }

    #[test]
    fn grid_side_clamps() {
        assert_eq!(grid_side(1 << 16), 8);
        assert_eq!(grid_side(1 << 26), 256);
        assert_eq!(grid_side(1 << 30), 256);
    }
}

//! Aligned console tables plus CSV output.

use std::io::Write;
use std::path::{Path, PathBuf};

/// A simple result table: named columns, string cells.
#[derive(Debug, Clone)]
pub struct ResultTable {
    name: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl ResultTable {
    /// Creates a table with the given name (used for the CSV filename)
    /// and column headers.
    pub fn new(name: &str, columns: &[&str]) -> Self {
        Self {
            name: name.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the column count.
    pub fn add_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row arity");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_line = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cell, width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_line(&self.columns, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_line(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Writes the table as `<out_dir>/<name>.csv`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save_csv(&self, out_dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(out_dir)?;
        let path = out_dir.join(format!("{}.csv", self.name));
        let mut f = std::fs::File::create(&path)?;
        writeln!(f, "{}", self.columns.join(","))?;
        for row in &self.rows {
            let escaped: Vec<String> = row
                .iter()
                .map(|c| {
                    if c.contains(',') || c.contains('"') {
                        format!("\"{}\"", c.replace('"', "\"\""))
                    } else {
                        c.clone()
                    }
                })
                .collect();
            writeln!(f, "{}", escaped.join(","))?;
        }
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = ResultTable::new("demo", &["name", "value"]);
        t.add_row(vec!["a".into(), "1".into()]);
        t.add_row(vec!["long-name".into(), "2".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a "));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn rejects_wrong_arity() {
        let mut t = ResultTable::new("demo", &["a", "b"]);
        t.add_row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_roundtrip_escapes_commas() {
        let dir = std::env::temp_dir().join("egraph-bench-test");
        let mut t = ResultTable::new("csv_test", &["k", "v"]);
        t.add_row(vec!["with,comma".into(), "x\"y".into()]);
        let path = t.save_csv(&dir).unwrap();
        let content = std::fs::read_to_string(path).unwrap();
        assert!(content.contains("\"with,comma\""));
        assert!(content.contains("\"x\"\"y\""));
    }
}

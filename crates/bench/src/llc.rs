//! LLC scaling for miss-ratio experiments.
//!
//! The paper measures miss ratios with RMAT-26 metadata (hundreds of
//! megabytes) against a 16 MB LLC — a footprint-to-cache ratio of
//! roughly 50:1. Reproduction graphs are smaller, so simulating the
//! full 16 MB cache would let all metadata become resident and flatten
//! every ratio to ~0. We instead scale the simulated LLC so the
//! footprint-to-cache ratio matches the paper's setup; the *relative*
//! behaviour of the layouts (grid halves the miss ratio, sorting
//! neighbor arrays changes nothing) is preserved. Documented as a
//! substitution in `DESIGN.md` §4.

use egraph_cachesim::{CacheConfig, CacheHierarchy, HierarchyProbe, LlcProbe};

/// Footprint-to-LLC ratio of the paper's measurement setup: RMAT-26
/// PageRank metadata (2^26 vertices × 12 B ≈ 800 MB) on machine B's
/// 16 MB LLC.
pub const PAPER_FOOTPRINT_RATIO: f64 = 50.0;

/// A cache sized so `metadata_bytes / capacity ≈ PAPER_FOOTPRINT_RATIO`,
/// with machine B's associativity and line size.
pub fn scaled_machine_b(metadata_bytes: usize) -> CacheConfig {
    let capacity = ((metadata_bytes as f64 / PAPER_FOOTPRINT_RATIO) as usize)
        .next_power_of_two()
        .clamp(8 * 1024, 16 * 1024 * 1024);
    CacheConfig {
        capacity,
        ways: 16,
        line_size: 64,
    }
}

/// A hierarchy probe (private L2 + scaled LLC + stream prefetcher) for
/// a graph with `num_vertices` vertices and `meta_bytes_per_vertex` of
/// metadata. LLC-level statistics match the semantics of the hardware
/// counters the paper read.
pub fn probe_for(num_vertices: usize, meta_bytes_per_vertex: usize) -> HierarchyProbe {
    let llc = scaled_machine_b(num_vertices * meta_bytes_per_vertex);
    // Machine B's L2:LLC ratio is 2 MB : 16 MB = 1:8.
    let l2 = CacheConfig {
        capacity: (llc.capacity / 8).max(4 * 1024),
        ways: 16,
        line_size: 64,
    };
    HierarchyProbe::new(CacheHierarchy::new(l2, llc))
}

/// A flat single-level probe over the scaled LLC (no L2 filtering);
/// kept for ablations against [`probe_for`].
pub fn flat_probe_for(num_vertices: usize, meta_bytes_per_vertex: usize) -> LlcProbe {
    LlcProbe::new(scaled_machine_b(num_vertices * meta_bytes_per_vertex))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_is_preserved() {
        let cfg = scaled_machine_b(800 << 20);
        assert_eq!(cfg.capacity, 16 * 1024 * 1024);
        let small = scaled_machine_b(100 << 20);
        let ratio = (100 << 20) as f64 / small.capacity as f64;
        assert!((25.0..=100.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn capacity_is_clamped() {
        assert_eq!(scaled_machine_b(1).capacity, 8 * 1024);
        assert_eq!(scaled_machine_b(usize::MAX / 2).capacity, 16 * 1024 * 1024);
    }
}

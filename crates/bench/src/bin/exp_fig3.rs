//! Figure 3: vertex-centric (adjacency list) vs edge-centric (edge
//! array) for BFS, PageRank and SpMV on RMAT.
//!
//! Expected shape: BFS strongly favours the adjacency list (frontier
//! work only); PageRank roughly ties end-to-end (better locality vs
//! pre-processing); SpMV favours the edge array (single pass, nothing
//! amortizes the pre-processing).

use egraph_bench::{fmt_secs, graphs, ExperimentCtx, ResultTable};
use egraph_core::algo::{bfs, pagerank, spmv};
use egraph_core::layout::EdgeDirection;
use egraph_core::preprocess::{CsrBuilder, Strategy};

fn main() {
    let ctx = ExperimentCtx::from_args();
    ctx.banner(
        "exp_fig3",
        "Figure 3 (vertex-centric vs edge-centric, BFS/PR/SpMV)",
    );

    let graph = graphs::rmat(ctx.scale);
    let weighted = graphs::with_weights(&graph);
    let degrees = graphs::out_degrees_u32(&graph);
    let root = graphs::best_root(&graph);
    let pr_cfg = pagerank::PagerankConfig::default();

    let mut table = ResultTable::new(
        "fig3_vertex_vs_edge_centric",
        &[
            "algorithm",
            "layout",
            "preprocess(s)",
            "algorithm(s)",
            "total(s)",
        ],
    );
    let push_row = |table: &mut ResultTable, algo: &str, layout: &str, pre: f64, alg: f64| {
        table.add_row(vec![
            algo.into(),
            layout.into(),
            fmt_secs(pre),
            fmt_secs(alg),
            fmt_secs(pre + alg),
        ]);
    };

    // Minimum-of-N timing filters the host's first-touch page-fault
    // penalty and scheduling noise (see EXPERIMENTS.md).
    let reps = egraph_bench::reps();

    // --- BFS ---
    let (adj, pre_secs) = egraph_bench::min_time(reps, || {
        let (a, s) = CsrBuilder::new(Strategy::RadixSort, EdgeDirection::Out).build_timed(&graph);
        (a, s.seconds)
    });
    let (r, bfs_adj) = egraph_bench::min_time(reps, || {
        let r = bfs::push(&adj, root);
        let s = r.algorithm_seconds();
        (r, s)
    });
    push_row(&mut table, "bfs", "adj", pre_secs, bfs_adj);
    let reachable = r.reachable_count();
    let (r, bfs_edge) = egraph_bench::min_time(reps, || {
        let r = bfs::edge_centric(&graph, root);
        let s = r.algorithm_seconds();
        (r, s)
    });
    assert_eq!(r.reachable_count(), reachable);
    push_row(&mut table, "bfs", "edge-array", 0.0, bfs_edge);

    // --- PageRank (10 iterations) ---
    let ((), pr_adj) = egraph_bench::min_time(reps, || {
        let r = pagerank::push(adj.out(), &degrees, pr_cfg, pagerank::PushSync::Atomics);
        ((), r.seconds)
    });
    push_row(&mut table, "pagerank", "adj", pre_secs, pr_adj);
    let ((), pr_edge) = egraph_bench::min_time(reps, || {
        let r = pagerank::edge_centric(&graph, &degrees, pr_cfg, pagerank::PushSync::Atomics);
        ((), r.seconds)
    });
    push_row(&mut table, "pagerank", "edge-array", 0.0, pr_edge);

    // --- SpMV ---
    let x: Vec<f32> = (0..graph.num_vertices())
        .map(|i| (i % 7) as f32 / 7.0)
        .collect();
    let (wadj, wpre_secs) = egraph_bench::min_time(reps, || {
        let (a, s) =
            CsrBuilder::new(Strategy::RadixSort, EdgeDirection::Out).build_timed(&weighted);
        (a, s.seconds)
    });
    let ((), spmv_adj) = egraph_bench::min_time(reps, || {
        let r = spmv::push(wadj.out(), &x);
        ((), r.seconds)
    });
    push_row(&mut table, "spmv", "adj", wpre_secs, spmv_adj);
    let ((), spmv_edge) = egraph_bench::min_time(reps, || {
        let r = spmv::edge_centric(&weighted, &x);
        ((), r.seconds)
    });
    push_row(&mut table, "spmv", "edge-array", 0.0, spmv_edge);

    table.print();
    println!();
    println!("expected shape (paper Fig. 3): BFS total: adj << edge-array;");
    println!("PR total: adj ≈ edge-array; SpMV total: edge-array << adj.");
    ctx.save(&table);
}

//! Ablation: why the grid pays off on power-law graphs but not on the
//! road graph (§8, Table 5's "PR US-Road → edge array" row).
//!
//! "Since the graph has a lower per-vertex degree than the RMAT and
//! Twitter graphs, the grid data structure reduces only slightly the
//! cache miss ratio, and therefore its pre-processing cost is not
//! amortized."
//!
//! This experiment measures the *simulated* LLC miss ratio of one
//! PageRank iteration on the edge array vs the grid, on both graph
//! shapes, and reports the miss-ratio reduction each enjoys.

use egraph_bench::{fmt_pct, graphs, llc, ExperimentCtx, ResultTable};
use egraph_core::algo::pagerank;
use egraph_core::exec::ExecCtx;
use egraph_core::preprocess::Strategy;
use egraph_core::variant::{
    run_variant, Algo, Direction, Layout, PreparedGraph, RunParams, VariantId,
};

fn main() {
    let ctx = ExperimentCtx::from_args();
    ctx.banner(
        "exp_ablation_grid_shape",
        "ablation: grid miss-ratio gain by graph shape (supports Table 5)",
    );

    let cfg = pagerank::PagerankConfig {
        iterations: 1,
        ..Default::default()
    };
    let params = RunParams {
        pagerank: cfg,
        ..RunParams::default()
    };
    let edge_id = VariantId::new(Algo::Pagerank, Layout::EdgeList, Direction::Push);
    let grid_id = VariantId::new(Algo::Pagerank, Layout::Grid, Direction::Push);
    let mut table = ResultTable::new(
        "ablation_grid_shape",
        &[
            "graph",
            "avg degree",
            "edge-array miss",
            "grid miss",
            "reduction",
        ],
    );

    // The road graph keeps its natural (DIMACS-like) edge order here:
    // the paper's §8 claim is precisely that the *ordered* road edge
    // array already has decent locality that the grid cannot improve
    // much.
    for (name, graph) in [
        ("RMAT (power-law)", graphs::rmat(ctx.scale)),
        ("US-Road (low degree)", graphs::road_like_ordered(ctx.scale)),
    ] {
        let avg = graph.num_edges() as f64 / graph.num_vertices() as f64;

        // Grid side matched to the simulated LLC (as in exp_fig5_table4).
        let side = {
            let cap = llc::scaled_machine_b(graph.num_vertices() * 12).capacity;
            let range = (cap / (2 * 12)).max(64);
            graph.num_vertices().div_ceil(range).clamp(8, 256)
        };
        let prepared = PreparedGraph::new(&graph)
            .strategy(Strategy::RadixSort)
            .side(side);

        let probe = llc::probe_for(graph.num_vertices(), 12);
        run_variant(
            &edge_id,
            &ExecCtx::new(None).probe(&probe),
            &prepared,
            &params,
        )
        .expect("variant is in the support matrix");
        let edge_miss = probe.report().overall_miss_ratio();

        let probe = llc::probe_for(graph.num_vertices(), 12);
        run_variant(
            &grid_id,
            &ExecCtx::new(None).probe(&probe),
            &prepared,
            &params,
        )
        .expect("variant is in the support matrix");
        let grid_miss = probe.report().overall_miss_ratio();

        let reduction = if edge_miss < 0.01 {
            "— (nothing to improve)".to_string()
        } else {
            format!("{:.1}x", edge_miss / grid_miss.max(1e-3))
        };
        table.add_row(vec![
            name.into(),
            format!("{avg:.1}"),
            fmt_pct(edge_miss),
            fmt_pct(grid_miss),
            reduction,
        ]);
    }
    table.print();
    println!();
    println!("expected shape (§8): the power-law edge array misses constantly and the");
    println!("grid fixes it (large reduction); the spatially-ordered road edge array");
    println!("barely misses at all, so the grid has nothing to improve — which is why");
    println!("its pre-processing amortizes on Twitter but not on US-Road (Table 5).");
    ctx.save(&table);
}

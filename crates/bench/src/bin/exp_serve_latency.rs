//! Serve-mode latency decomposition: where a query's time goes, per
//! lifecycle stage, batched vs one-at-a-time.
//!
//! Drives the in-process [`ServeEngine`] (no TCP — this experiment
//! isolates engine latency from socket noise) with concurrent clients
//! issuing BFS point queries under three configurations:
//!
//! - `single`: `max_wave = 1`, full observability — every query runs
//!   its own traversal, so queue time is the cost of waiting behind
//!   other queries' exclusive scans.
//! - `batched`: the full 64-query wave, full observability — queue
//!   time is bounded by the batch window, and exec time is shared.
//! - `batched-noobs`: batching with metrics and the flight-recorder
//!   journal disabled — the observability overhead baseline.
//!
//! For each mode it reports exact p50/p99 per stage (admission-queue
//! wait, wave execution, demux/write-back, and end-to-end total, taken
//! from [`QueryOutcome`]'s stage stamps) plus throughput, and saves
//! `bench_results/serve_latency.csv`. The batched run also cross-checks
//! the registry's log2-bucket [`Histogram::quantile`] estimate against
//! the exact total-latency p50 (must agree within one bucket, i.e. 2×).
//!
//! With `--trace-out FILE`, the batched-mode percentiles are exported
//! as `serve.latency.<stage>.p<N>_seconds` run counters, which
//! `egraph trace diff --serve-latency true` gates on.

use std::time::Instant;

use egraph_bench::{fmt_pct, graphs, ExperimentCtx, ResultTable};
use egraph_core::serve::{Query, QueryKind, ServeConfig, ServeEngine, ServeGraph};
use egraph_core::telemetry::RunTrace;

/// Concurrent client threads per mode.
const CLIENTS: usize = 8;
/// Queries issued by each client (sequential, closed-loop).
const PER_CLIENT: usize = 48;

/// Per-stage latency samples across every query of one mode.
#[derive(Default)]
struct StageSamples {
    queue: Vec<f64>,
    exec: Vec<f64>,
    demux: Vec<f64>,
    total: Vec<f64>,
}

impl StageSamples {
    fn absorb(&mut self, mut other: StageSamples) {
        self.queue.append(&mut other.queue);
        self.exec.append(&mut other.exec);
        self.demux.append(&mut other.demux);
        self.total.append(&mut other.total);
    }

    fn sort(&mut self) {
        for v in [
            &mut self.queue,
            &mut self.exec,
            &mut self.demux,
            &mut self.total,
        ] {
            v.sort_by(f64::total_cmp);
        }
    }

    fn stages(&self) -> [(&'static str, &[f64]); 4] {
        [
            ("queue", &self.queue),
            ("exec", &self.exec),
            ("demux", &self.demux),
            ("total", &self.total),
        ]
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

/// One closed-loop client: sequential BFS queries, stage stamps taken
/// from the engine's own [`QueryOutcome`] plus a wall-clock total.
fn client(engine: &ServeEngine, roots: &[u32], first: usize) -> StageSamples {
    let mut samples = StageSamples::default();
    for i in 0..PER_CLIENT {
        let root = roots[(first + i) % roots.len()];
        let start = Instant::now();
        let rx = engine
            .submit(Query {
                kind: QueryKind::Bfs,
                source: root,
                depth: 0,
            })
            .expect("bfs is always servable");
        let outcome = rx.recv().expect("engine answers before shutdown");
        samples.total.push(start.elapsed().as_secs_f64());
        samples.queue.push(outcome.wait_seconds);
        samples.exec.push(outcome.exec_seconds);
        samples.demux.push(outcome.demux_seconds);
    }
    samples
}

/// Runs one mode to completion; returns sorted samples and throughput.
fn drive(engine: &ServeEngine, roots: &[u32]) -> (StageSamples, f64) {
    let wall = Instant::now();
    let mut all = StageSamples::default();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| s.spawn(move || client(engine, roots, c * PER_CLIENT)))
            .collect();
        for h in handles {
            all.absorb(h.join().expect("client thread"));
        }
    });
    let qps = (CLIENTS * PER_CLIENT) as f64 / wall.elapsed().as_secs_f64();
    all.sort();
    (all, qps)
}

fn main() {
    let ctx = ExperimentCtx::from_args();
    ctx.banner(
        "exp_serve_latency",
        "serve-mode latency decomposition (lifecycle spans, observability overhead)",
    );

    let graph = graphs::rmat(ctx.scale);
    println!(
        "graph: RMAT{} ({} vertices, {} edges); {CLIENTS} clients x {PER_CLIENT} queries per mode\n",
        ctx.scale,
        graph.num_vertices(),
        graph.num_edges()
    );
    let nv = graph.num_vertices() as u32;
    let roots: Vec<u32> = (0..64u32)
        .map(|i| (i.wrapping_mul(2654435761)) % nv)
        .collect();

    let modes: [(&str, ServeConfig); 3] = [
        (
            "single",
            ServeConfig {
                max_wave: 1,
                ..ServeConfig::default()
            },
        ),
        ("batched", ServeConfig::default()),
        (
            "batched-noobs",
            ServeConfig {
                metrics: false,
                journal_capacity: 0,
                ..ServeConfig::default()
            },
        ),
    ];

    let mut table = ResultTable::new(
        "serve_latency",
        &["mode", "stage", "queries", "p50(ms)", "p99(ms)", "qps"],
    );
    let mut batched_percentiles: Vec<(&'static str, f64, f64)> = Vec::new();
    let mut total_p50 = std::collections::BTreeMap::new();
    for (mode, config) in modes {
        // The stage histograms carry only algo/layout labels, which do
        // not distinguish modes — reset the registry between runs so
        // the quantile cross-check sees this mode's observations only.
        egraph_metrics::global().clear();
        let observed = config.metrics;
        let engine = ServeEngine::start(ServeGraph::Unweighted(graph.clone()), config);
        engine.wait_ready();
        let (samples, qps) = drive(&engine, &roots);
        println!("{mode}: {qps:.1} qps");
        for (stage, sorted) in samples.stages() {
            let (p50, p99) = (percentile(sorted, 0.50), percentile(sorted, 0.99));
            println!(
                "  {stage:>5}: p50 {:8.3} ms  p99 {:8.3} ms",
                p50 * 1e3,
                p99 * 1e3
            );
            table.add_row(vec![
                mode.into(),
                stage.into(),
                (CLIENTS * PER_CLIENT).to_string(),
                format!("{:.3}", p50 * 1e3),
                format!("{:.3}", p99 * 1e3),
                format!("{qps:.1}"),
            ]);
            if mode == "batched" {
                batched_percentiles.push((stage, p50, p99));
            }
        }
        total_p50.insert(mode, percentile(&samples.total, 0.50));

        if observed {
            // The registry's log2-bucket estimate must land within one
            // bucket (a factor of two) of the exact sample quantile.
            let hist = egraph_metrics::global().histogram_seconds_with_labels(
                "egraph_serve_query_seconds",
                "admission-to-demux query latency",
                &[("algo", "bfs"), ("layout", engine.layout_name())],
            );
            let est = hist.quantile(0.5).expect("engine recorded total latencies");
            let exact = percentile(&samples.total, 0.50);
            assert!(
                est >= exact / 2.0 && est <= exact * 2.0,
                "{mode}: registry p50 estimate {est} vs exact {exact} beyond one log2 bucket"
            );
            println!(
                "  registry p50 estimate {:.3} ms vs exact {:.3} ms (within one bucket)",
                est * 1e3,
                exact * 1e3
            );
        }
        println!();
        engine.shutdown();
    }

    let (with, without) = (total_p50["batched"], total_p50["batched-noobs"]);
    println!(
        "observability overhead on batched p50: {} ({:.3} ms observed vs {:.3} ms disabled)",
        fmt_pct((with - without) / without.max(1e-9)),
        with * 1e3,
        without * 1e3
    );
    table.print();
    ctx.save(&table);

    if ctx.tracing() {
        let mut trace = RunTrace::new("serve_latency");
        for (stage, p50, p99) in &batched_percentiles {
            trace
                .counters
                .insert(format!("serve.latency.{stage}.p50_seconds"), *p50);
            trace
                .counters
                .insert(format!("serve.latency.{stage}.p99_seconds"), *p99);
        }
        ctx.save_trace(&trace);
    }
}

//! Ablation: SSSP algorithm family — the paper's frontier Bellman-Ford
//! push vs the delta-stepping extension, across delta values.
//!
//! Delta-stepping bounds the wasted relaxations that make plain
//! frontier SSSP re-process vertices "many times during the
//! computation" (§8); this run shows the iteration-count/time
//! trade-off on both graph shapes.

use egraph_bench::{fmt_secs, graphs, min_time, reps, ExperimentCtx, ResultTable};
use egraph_core::algo::sssp;
use egraph_core::layout::EdgeDirection;
use egraph_core::preprocess::{CsrBuilder, Strategy};

fn main() {
    let ctx = ExperimentCtx::from_args();
    ctx.banner(
        "exp_ablation_sssp",
        "ablation: Bellman-Ford push vs delta-stepping",
    );
    let reps = reps();

    let mut table = ResultTable::new(
        "ablation_sssp",
        &["graph", "algorithm", "iterations", "algorithm(s)"],
    );

    for (name, base) in [
        ("RMAT", graphs::rmat(ctx.scale)),
        ("US-Road", graphs::road_like(ctx.scale)),
    ] {
        let weighted = graphs::with_weights(&base);
        let root = graphs::best_root(&base);
        let adj = CsrBuilder::new(Strategy::RadixSort, EdgeDirection::Out).build(&weighted);

        let (push_result, push_secs) = min_time(reps, || {
            let r = sssp::push(&adj, root);
            let s = r.algorithm_seconds();
            (r, s)
        });
        table.add_row(vec![
            name.into(),
            "bellman-ford push".into(),
            push_result.iterations.len().to_string(),
            fmt_secs(push_secs),
        ]);

        for delta in [0.5f32, 2.0, 8.0] {
            let (r, secs) = min_time(reps, || {
                let r = sssp::delta_stepping(&adj, root, delta);
                let s = r.algorithm_seconds();
                (r, s)
            });
            // Same answer as the baseline.
            assert_eq!(
                r.reachable_count(),
                push_result.reachable_count(),
                "delta {delta}"
            );
            table.add_row(vec![
                name.into(),
                format!("delta-stepping (d={delta})"),
                r.iterations.len().to_string(),
                fmt_secs(secs),
            ]);
        }
    }
    table.print();
    println!();
    println!("expected shape: on the weighted road graph, small deltas cut the");
    println!("wasted relaxations of plain Bellman-Ford; on low-diameter RMAT the");
    println!("bucketing overhead buys little.");
    ctx.save(&table);
}

//! Table 5: best end-to-end approaches for BFS and PageRank on the
//! Twitter-shaped and US-Road-shaped graphs.
//!
//! Paper: BFS/Twitter → adj push; BFS/US-Road → adj push;
//! PR/Twitter → grid pull (no lock); PR/US-Road → edge array (the
//! low-degree road graph cannot amortize the grid's pre-processing).
//! This binary runs the paper's winning configuration for each row AND
//! the runner-up it beat, to verify the ordering holds. All timings
//! are minimum-of-N (EGRAPH_REPS) to filter host noise.

use egraph_bench::{fmt_secs, graphs, min_time, reps, ExperimentCtx, ResultTable};
use egraph_core::algo::{bfs, pagerank};
use egraph_core::layout::EdgeDirection;
use egraph_core::preprocess::{CsrBuilder, GridBuilder, Strategy};

fn main() {
    let ctx = ExperimentCtx::from_args();
    ctx.banner(
        "exp_table5",
        "Table 5 (best approaches: BFS & PageRank on Twitter/US-Road)",
    );
    let reps = reps();

    let mut table = ResultTable::new(
        "table5_best_approaches",
        &[
            "algo",
            "graph",
            "layout",
            "model",
            "preprocess(s)",
            "algorithm(s)",
            "total(s)",
        ],
    );

    for (graph_name, graph) in [
        ("Twitter", graphs::twitter_like(ctx.scale)),
        ("US-Road", graphs::road_like(ctx.scale)),
    ] {
        let degrees = graphs::out_degrees_u32(&graph);
        let root = graphs::best_root(&graph);
        let side = graphs::grid_side(graph.num_vertices());
        let cfg = pagerank::PagerankConfig::default();

        // BFS best: adjacency list, push.
        let (adj, pre) = min_time(reps, || {
            let (a, s) =
                CsrBuilder::new(Strategy::RadixSort, EdgeDirection::Out).build_timed(&graph);
            (a, s.seconds)
        });
        let (bfs_adj_result, bfs_adj) = min_time(reps, || {
            let r = bfs::push(&adj, root);
            let s = r.algorithm_seconds();
            (r, s)
        });
        table.add_row(vec![
            "BFS".into(),
            graph_name.into(),
            "Adj. list".into(),
            "Push".into(),
            fmt_secs(pre),
            fmt_secs(bfs_adj),
            fmt_secs(pre + bfs_adj),
        ]);
        // BFS runner-up: edge array (min-of-1 — this configuration can
        // take minutes on the road graph; the comparison is lopsided
        // enough that noise cannot change the verdict).
        let edge_reps = if graph_name == "US-Road" { 1 } else { reps };
        let (bfs_edge_result, bfs_edge) = min_time(edge_reps, || {
            let r = bfs::edge_centric(&graph, root);
            let s = r.algorithm_seconds();
            (r, s)
        });
        assert_eq!(
            bfs_adj_result.reachable_count(),
            bfs_edge_result.reachable_count()
        );
        table.add_row(vec![
            "BFS".into(),
            graph_name.into(),
            "Edge array".into(),
            "Push".into(),
            fmt_secs(0.0),
            fmt_secs(bfs_edge),
            fmt_secs(bfs_edge),
        ]);

        // PageRank: grid pull (no lock) vs edge array.
        let (grid_t, pre_grid) = min_time(reps, || {
            let (g, s) = GridBuilder::new(Strategy::RadixSort)
                .side(side)
                .transposed(true)
                .build_timed(&graph);
            (g, s.seconds)
        });
        let ((), pr_grid) = min_time(reps, || {
            let r = pagerank::grid_pull(&grid_t, &degrees, cfg);
            ((), r.seconds)
        });
        table.add_row(vec![
            "Pagerank".into(),
            graph_name.into(),
            "Grid".into(),
            "Pull (no lock)".into(),
            fmt_secs(pre_grid),
            fmt_secs(pr_grid),
            fmt_secs(pre_grid + pr_grid),
        ]);
        let ((), pr_edge) = min_time(reps, || {
            let r = pagerank::edge_centric(&graph, &degrees, cfg, pagerank::PushSync::Atomics);
            ((), r.seconds)
        });
        table.add_row(vec![
            "Pagerank".into(),
            graph_name.into(),
            "Edge array".into(),
            "Push (atomics)".into(),
            fmt_secs(0.0),
            fmt_secs(pr_edge),
            fmt_secs(pr_edge),
        ]);
    }
    table.print();

    println!();
    println!("paper Table 5: BFS Twitter adj/push 5.8+2.3=8.1; BFS US-Road adj/push 0.3+0.5=0.8;");
    println!("PR Twitter grid/pull 23.2+37.8=61.0; PR US-Road edge-array/pull 0.0+1.6=1.6");
    println!("expected shape: adj wins BFS on both graphs; grid wins PR on Twitter;");
    println!("edge array wins PR on the low-degree road graph.");
    ctx.save(&table);
}

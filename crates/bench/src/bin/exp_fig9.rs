//! Figure 9: NUMA-aware data placement vs interleaving, for BFS and
//! PageRank on machines A (2 NUMA nodes) and B (4 nodes).
//!
//! Partitioning cost is measured for real (`numa_sim::partition_by_target`);
//! the algorithm bar is the measured single-node time scaled by the
//! locality cost model (DESIGN.md §4). Expected shape: NUMA-awareness
//! pays end-to-end only for PageRank and only on machine B; for BFS it
//! loses on both machines (partitioning dwarfs the run, and frontier
//! concentration causes memory contention).

use egraph_bench::{fmt_ratio, fmt_secs, graphs, ExperimentCtx, ResultTable};
use egraph_core::algo::{bfs, pagerank};
use egraph_core::layout::EdgeDirection;
use egraph_core::numa_sim::{bfs_locality, pagerank_locality, partition_by_target, DataPolicy};
use egraph_core::preprocess::{CsrBuilder, Strategy};
use egraph_numa::{CostModel, MemoryBoundness, Topology};

fn main() {
    let ctx = ExperimentCtx::from_args();
    ctx.banner(
        "exp_fig9",
        "Figure 9 (NUMA-aware vs interleaved, BFS & PageRank, machines A/B)",
    );

    let graph = graphs::rmat(ctx.scale);
    let degrees = graphs::out_degrees_u32(&graph);
    let root = graphs::best_root(&graph);

    // Best algorithm configurations per the earlier sections:
    // push-pull BFS, pull-without-locks PageRank.
    let (adj, pre) = CsrBuilder::new(Strategy::RadixSort, EdgeDirection::Both).build_timed(&graph);
    let bfs_measured = bfs::push_pull(&adj, root).algorithm_seconds();
    let pr_measured = pagerank::pull(
        adj.incoming(),
        &degrees,
        pagerank::PagerankConfig::default(),
    )
    .seconds;

    let mut table = ResultTable::new(
        "fig9_numa",
        &[
            "algo",
            "machine",
            "policy",
            "preprocess(s)",
            "partition(s)",
            "algorithm(s)",
            "total(s)",
        ],
    );

    let mut totals = std::collections::BTreeMap::new();
    for topo in [Topology::machine_a(), Topology::machine_b()] {
        let model = CostModel::new(topo.clone());
        let partition = partition_by_target(&graph, topo.num_nodes);
        for policy in [DataPolicy::Interleaved, DataPolicy::NumaAware] {
            let partition_s = match policy {
                DataPolicy::Interleaved => 0.0,
                DataPolicy::NumaAware => partition.seconds,
            };
            let policy_name = match policy {
                DataPolicy::Interleaved => "inter.",
                DataPolicy::NumaAware => "NUMA",
            };
            // BFS.
            let profile = bfs_locality(&graph, root, policy, topo.num_nodes);
            let modeled = profile.modeled(&model, bfs_measured, MemoryBoundness::TRAVERSAL);
            let total = pre.seconds + partition_s + modeled.modeled_seconds;
            totals.insert(format!("bfs/{}/{policy_name}", topo.name), total);
            table.add_row(vec![
                "bfs".into(),
                topo.name.into(),
                policy_name.into(),
                fmt_secs(pre.seconds),
                fmt_secs(partition_s),
                fmt_secs(modeled.modeled_seconds),
                fmt_secs(total),
            ]);
            // PageRank.
            let profile = pagerank_locality(&graph, policy, topo.num_nodes);
            let modeled = profile.modeled(&model, pr_measured, MemoryBoundness::PAGERANK);
            let total = pre.seconds + partition_s + modeled.modeled_seconds;
            totals.insert(format!("pagerank/{}/{policy_name}", topo.name), total);
            table.add_row(vec![
                "pagerank".into(),
                topo.name.into(),
                policy_name.into(),
                fmt_secs(pre.seconds),
                fmt_secs(partition_s),
                fmt_secs(modeled.modeled_seconds),
                fmt_secs(total),
            ]);
        }
    }
    table.print();

    println!();
    let ratio = |a: &str, b: &str| totals[a] / totals[b].max(1e-9);
    println!(
        "PR machine B: interleaved/NUMA total = {} (paper: NUMA wins, ~2x algorithm gain)",
        fmt_ratio(ratio(
            "pagerank/machine-B/inter.",
            "pagerank/machine-B/NUMA"
        ))
    );
    println!(
        "PR machine A: interleaved/NUMA total = {} (paper: NUMA does NOT pay end-to-end)",
        fmt_ratio(ratio(
            "pagerank/machine-A/inter.",
            "pagerank/machine-A/NUMA"
        ))
    );
    println!(
        "BFS machine B: NUMA/interleaved total = {} (paper: ~1.8x slower)",
        fmt_ratio(ratio("bfs/machine-B/NUMA", "bfs/machine-B/inter."))
    );
    println!(
        "BFS machine A: NUMA/interleaved total = {} (paper: ~3.5x slower)",
        fmt_ratio(ratio("bfs/machine-A/NUMA", "bfs/machine-A/inter."))
    );
    ctx.save(&table);
}

//! Compression experiment (DESIGN.md §14): resident bytes per edge and
//! pull-kernel speed of the compressed CSR against the uncompressed
//! adjacency at RMAT 18 and 20 (`--scale`/`EGRAPH_SCALE` + 2 and + 4).
//!
//! For each scale the table reports both layouts' resident adjacency
//! bytes (offset tables + neighbor storage), the bytes-per-edge that
//! implies, the ccsr/adj ratio — the acceptance bar is ≤ 0.6 at
//! RMAT-20 — the peak heap of each build window, and best-of-N
//! PageRank-pull and BFS-pull times at 8 threads. PageRank ranks and
//! BFS levels are asserted bit-equal across layouts before any row is
//! written, so every timing in the CSV is for a verified-identical
//! answer.
//!
//! Build with `--features alloc-track` for real build-peak numbers and
//! `--features simd` for the vectorized pull inner loops the
//! compressed rows are meant to showcase. With `--trace-out FILE` the
//! RMAT-20 PageRank-pull run on each layout is replayed under a trace
//! recorder and written as `<stem>_adj.<ext>` / `<stem>_ccsr.<ext>`,
//! ready for `egraph trace diff` to compare phase peak-memory rows.

use egraph_bench::{fmt_ratio, fmt_secs, graphs, min_time, reps, ExperimentCtx, ResultTable};
use egraph_core::exec::ExecCtx;
use egraph_core::layout::EdgeDirection;
use egraph_core::preprocess::{compress_sorted_csr, CsrBuilder, Strategy};
use egraph_core::telemetry::{RunTrace, TraceRecorder};
use egraph_core::types::Edge;
use egraph_core::variant::{
    run_variant, Algo, Direction, Layout, PreparedGraph, RunParams, VariantId, VariantOutput,
    VariantRun,
};
use egraph_metrics::alloc;
use egraph_parallel::pool::ThreadPool;

#[cfg(feature = "alloc-track")]
#[global_allocator]
static ALLOC: alloc::TrackingAlloc = alloc::TrackingAlloc;

/// The acceptance criterion runs at this thread count.
const THREADS: usize = 8;

fn run(
    id: VariantId,
    ctx: &ExecCtx<'_>,
    graph: &PreparedGraph<'_, Edge>,
    params: &RunParams<'_>,
) -> VariantRun {
    run_variant(&id, ctx, graph, params).expect("variant is in the support matrix")
}

/// Best-of-N algorithm seconds for one variant, returning the last
/// output for the equality assertion.
fn best_time(
    id: VariantId,
    ctx: &ExecCtx<'_>,
    graph: &PreparedGraph<'_, Edge>,
    params: &RunParams<'_>,
) -> (VariantOutput, f64) {
    min_time(reps(), || {
        let r = run(id, ctx, graph, params);
        (r.output, r.algorithm_seconds)
    })
}

fn main() {
    let ctx = ExperimentCtx::from_args();
    ctx.banner(
        "exp_compress",
        "compressed CSR: bytes/edge and pull-kernel speed vs adjacency",
    );
    if !alloc::tracking_installed() {
        eprintln!(
            "note: tracking allocator not installed (build with \
             --features alloc-track); build_peak columns will be 0"
        );
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "simd feature: {}; threads: {THREADS}; host cores: {cores}\n",
        if cfg!(feature = "simd") { "on" } else { "off" }
    );
    if cores < THREADS {
        eprintln!(
            "note: only {cores} host core(s) for {THREADS} threads — decode \
             compute cannot hide behind parallel memory stalls, so the ccsr \
             speed columns will understate its bandwidth-bound advantage"
        );
    }

    let pool = ThreadPool::new(THREADS);
    let exec = ExecCtx::new(&pool);
    let mut table = ResultTable::new(
        "compress_memory_speed",
        &[
            "scale",
            "vertices",
            "edges",
            "layout",
            "resident_bytes",
            "bytes_per_edge",
            "vs_adj_ratio",
            "build_peak_bytes",
            "pagerank_pull_s",
            "bfs_pull_s",
        ],
    );

    // RMAT 18 and 20 under the default --scale 16.
    for scale in [ctx.scale + 2, ctx.scale + 4] {
        let graph = graphs::rmat(scale);
        let root = graphs::best_root(&graph);
        println!(
            "RMAT{scale}: {} vertices, {} edges",
            graph.num_vertices(),
            graph.num_edges()
        );

        // Pull kernels read the in-adjacency; measure exactly the
        // arrays they traverse. Neighbor sorting is what makes the
        // delta encoding work, so both builds sort.
        let w = alloc::window("adj");
        let csr = CsrBuilder::new(Strategy::RadixSort, EdgeDirection::In)
            .sort_neighbors(true)
            .build(&graph);
        let adj_peak = w.finish().peak_bytes;
        let adj_bytes = csr.resident_bytes();

        let w = alloc::window("ccsr");
        let ccsr = compress_sorted_csr(&csr);
        let ccsr_peak = w.finish().peak_bytes;
        let ccsr_bytes = ccsr.resident_bytes();
        drop(ccsr);
        drop(csr);

        // Timed runs go through the unified resolver so layout builds,
        // caching and instrumentation match what `egraph run` does.
        let prep = PreparedGraph::new(&graph)
            .strategy(Strategy::RadixSort)
            .sort_neighbors(true);
        let pr_params = RunParams::default();
        let bfs_params = RunParams {
            root,
            ..RunParams::default()
        };
        let pr_adj_id = VariantId::new(Algo::Pagerank, Layout::Adjacency, Direction::Pull);
        let pr_ccsr_id = VariantId::new(Algo::Pagerank, Layout::Ccsr, Direction::Pull);
        let bfs_adj_id = VariantId::new(Algo::Bfs, Layout::Adjacency, Direction::Pull);
        let bfs_ccsr_id = VariantId::new(Algo::Bfs, Layout::Ccsr, Direction::Pull);

        let (pr_adj_out, pr_adj_s) = best_time(pr_adj_id, &exec, &prep, &pr_params);
        let (pr_ccsr_out, pr_ccsr_s) = best_time(pr_ccsr_id, &exec, &prep, &pr_params);
        let (bfs_adj_out, bfs_adj_s) = best_time(bfs_adj_id, &exec, &prep, &bfs_params);
        let (bfs_ccsr_out, bfs_ccsr_s) = best_time(bfs_ccsr_id, &exec, &prep, &bfs_params);

        // Conformance before timing rows: both layouts decode to the
        // same sorted adjacency, so deterministic pull kernels must
        // agree bit-for-bit.
        match (&pr_adj_out, &pr_ccsr_out) {
            (VariantOutput::Pagerank(a), VariantOutput::Pagerank(c)) => {
                assert_eq!(a.ranks, c.ranks, "RMAT{scale}: ccsr PageRank diverged");
            }
            _ => unreachable!("pagerank variants return ranks"),
        }
        match (&bfs_adj_out, &bfs_ccsr_out) {
            (VariantOutput::Bfs(a), VariantOutput::Bfs(c)) => {
                assert_eq!(a.level, c.level, "RMAT{scale}: ccsr BFS diverged");
            }
            _ => unreachable!("bfs variants return levels"),
        }

        let ne = graph.num_edges() as f64;
        let mut row = |layout: &str, bytes: u64, peak: u64, pr_s: f64, bfs_s: f64| {
            table.add_row(vec![
                scale.to_string(),
                graph.num_vertices().to_string(),
                graph.num_edges().to_string(),
                layout.to_string(),
                bytes.to_string(),
                format!("{:.2}", bytes as f64 / ne),
                fmt_ratio(bytes as f64 / adj_bytes as f64),
                peak.to_string(),
                fmt_secs(pr_s),
                fmt_secs(bfs_s),
            ]);
        };
        row("adj", adj_bytes, adj_peak, pr_adj_s, bfs_adj_s);
        row("ccsr", ccsr_bytes, ccsr_peak, pr_ccsr_s, bfs_ccsr_s);
        if scale == ctx.scale {
            ctx.headline(
                "exp_compress",
                "ccsr_vs_adj_bytes",
                ccsr_bytes as f64 / adj_bytes as f64,
            );
        }
        println!(
            "  resident bytes: adj {adj_bytes}, ccsr {ccsr_bytes} ({}); \
             pagerank-pull {} vs {}, bfs-pull {} vs {}",
            fmt_ratio(ccsr_bytes as f64 / adj_bytes as f64),
            fmt_secs(pr_adj_s),
            fmt_secs(pr_ccsr_s),
            fmt_secs(bfs_adj_s),
            fmt_secs(bfs_ccsr_s),
        );

        // Trace evidence: replay the largest scale's PageRank-pull on
        // each layout under a recorder, one trace file per layout, so
        // `egraph trace diff <adj> <ccsr>` surfaces the
        // phase.*.peak_bytes rows.
        if ctx.tracing() && scale == ctx.scale + 4 {
            for (layout, id) in [("adj", pr_adj_id), ("ccsr", pr_ccsr_id)] {
                let recorder = TraceRecorder::new();
                let fresh = PreparedGraph::new(&graph)
                    .strategy(Strategy::RadixSort)
                    .sort_neighbors(true);
                let traced = run(
                    id,
                    &ExecCtx::new(&pool).recorder(&recorder),
                    &fresh,
                    &pr_params,
                );
                let mut trace = RunTrace::new("pagerank");
                trace
                    .config
                    .insert("experiment".into(), "exp_compress".into());
                trace.config.insert("layout".into(), layout.into());
                trace.config.insert("scale".into(), scale.to_string());
                trace.config.insert("threads".into(), THREADS.to_string());
                trace.breakdown.preprocess = traced.preprocess_seconds;
                trace.breakdown.algorithm = traced.algorithm_seconds;
                trace.absorb(&recorder);
                let suffixed = ExperimentCtx {
                    trace_out: ctx.trace_out.as_ref().map(|p| {
                        let ext = p.extension().and_then(|e| e.to_str()).unwrap_or("json");
                        p.with_extension(format!("{layout}.{ext}"))
                    }),
                    ..ctx.clone()
                };
                suffixed.save_trace(&trace);
            }
        }
    }

    table.print();
    println!();
    println!(
        "expected shape: ccsr resident bytes <= 0.6x adj at RMAT-20; \
         PageRank pull on ccsr (simd on) matches or beats adj at {THREADS} \
         threads when the pull loop is memory-bandwidth-bound (one thread \
         per physical core). On fewer cores the serial decode cost \
         (~4 ns/edge here) is exposed instead of hidden behind DRAM stalls."
    );
    ctx.save(&table);
}

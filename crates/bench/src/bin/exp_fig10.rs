//! Figure 10: memory-bus contention on high-diameter graphs — BFS on
//! the US-Road-shaped lattice, machine B, interleaved vs NUMA-aware.
//!
//! Expected shape: the NUMA-aware version is many times slower
//! end-to-end (the paper reports 12×): partitioning dwarfs the short
//! BFS, and the localized wavefront turns the partitioned layout into
//! a serial sequence of memory-controller hotspots.

use egraph_bench::{fmt_ratio, fmt_secs, graphs, ExperimentCtx, ResultTable};
use egraph_core::algo::bfs;
use egraph_core::layout::EdgeDirection;
use egraph_core::numa_sim::{bfs_locality, partition_by_target, DataPolicy};
use egraph_core::preprocess::{CsrBuilder, Strategy};
use egraph_numa::{CostModel, MemoryBoundness, Topology};

fn main() {
    let ctx = ExperimentCtx::from_args();
    ctx.banner(
        "exp_fig10",
        "Figure 10 (BFS on road graph, NUMA contention)",
    );

    let graph = graphs::road_like(ctx.scale);
    println!(
        "graph: road-like, {} vertices, {} edges\n",
        graph.num_vertices(),
        graph.num_edges()
    );

    let topo = Topology::machine_b();
    let model = CostModel::new(topo.clone());
    let (adj, pre) = CsrBuilder::new(Strategy::RadixSort, EdgeDirection::Both).build_timed(&graph);
    let measured = bfs::push_pull(&adj, 0).algorithm_seconds();
    let partition = partition_by_target(&graph, topo.num_nodes);

    let mut table = ResultTable::new(
        "fig10_road_bfs_numa",
        &[
            "policy",
            "preprocess(s)",
            "partition(s)",
            "algorithm(s)",
            "total(s)",
            "peak-node-share",
        ],
    );
    let mut totals = Vec::new();
    for policy in [DataPolicy::Interleaved, DataPolicy::NumaAware] {
        let profile = bfs_locality(&graph, 0, policy, topo.num_nodes);
        let modeled = profile.modeled(&model, measured, MemoryBoundness::TRAVERSAL);
        let partition_s = match policy {
            DataPolicy::Interleaved => 0.0,
            DataPolicy::NumaAware => partition.seconds,
        };
        let total = pre.seconds + partition_s + modeled.modeled_seconds;
        totals.push(total);
        table.add_row(vec![
            match policy {
                DataPolicy::Interleaved => "B inter.".into(),
                DataPolicy::NumaAware => "B NUMA".into(),
            },
            fmt_secs(pre.seconds),
            fmt_secs(partition_s),
            fmt_secs(modeled.modeled_seconds),
            fmt_secs(total),
            format!("{:.2}", profile.weighted_peak_share),
        ]);
    }
    table.print();

    println!();
    println!(
        "NUMA / interleaved end-to-end: {} (paper: 12x slower)",
        fmt_ratio(totals[1] / totals[0].max(1e-9))
    );
    println!("the localized BFS wavefront concentrates all traffic on one node at a time;");
    println!("partitioning time alone dwarfs this short algorithm.");
    ctx.save(&table);
}

//! Table 7 (informational): the feature matrix of the systems whose
//! techniques EverythingGraph isolates, and where each technique lives
//! in this reproduction.

use egraph_bench::ResultTable;

fn main() {
    println!("=== exp_table7 — Table 7 (systems that inspired the techniques) ===\n");
    let mut table = ResultTable::new(
        "table7_systems",
        &[
            "system",
            "data layout",
            "iteration model",
            "push or pull",
            "without locks",
            "NUMA-aware",
        ],
    );
    for row in [
        [
            "Ligra",
            "Adj list",
            "Vertex-centric",
            "Push&Pull",
            "Yes",
            "-",
        ],
        [
            "Polymer",
            "Adj list",
            "Vertex-centric",
            "Push&Pull",
            "Yes",
            "Yes",
        ],
        [
            "Gemini",
            "Adj list",
            "Vertex-centric",
            "Push&Pull",
            "Yes",
            "Yes",
        ],
        ["X-Stream", "Edge array", "Edge-centric", "Push", "-", "-"],
        ["GridGraph", "Grid", "Grid-cell", "Push", "Yes", "-"],
    ] {
        table.add_row(row.iter().map(|s| s.to_string()).collect());
    }
    table.print();

    println!();
    println!("where each technique lives in this reproduction:");
    println!("  push-pull (Ligra/Beamer)        -> egraph_core::algo::bfs::push_pull");
    println!("  radix-sort CSR building (Ligra) -> egraph_core::preprocess + egraph_sort::radix");
    println!("  edge-centric model (X-Stream)   -> egraph_core::engine::edge_push");
    println!("  grid layout (GridGraph)         -> egraph_core::layout::Grid + engine::grid_*");
    println!("  NUMA partitioning (Polymer/Gemini) -> egraph_core::numa_sim::partition_by_target");
    println!("  lock removal (all of the above) -> engine column/row ownership + pull mode");
    let _ = table.save_csv(std::path::Path::new("bench_results"));
}

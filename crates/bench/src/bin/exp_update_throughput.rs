//! Update-throughput experiment (DESIGN.md §16): delta-log apply and
//! compaction rates, plus incremental-vs-recompute speedups, at 0.1%,
//! 1% and 10% delta fractions on RMAT-18 (`--scale`/`EGRAPH_SCALE`
//! + 2).
//!
//! For each fraction the table reports the batched apply rate into a
//! [`DeltaGraph`] (updates/sec), the compaction seconds for folding
//! the log into a fresh published snapshot, and — for PageRank, BFS
//! and WCC — the seconds the incremental engine spends repairing its
//! previous answer against the seconds a from-scratch solve of the
//! same engine takes on the merged graph. The expected shape: below
//! the 5% fallback threshold the repair path wins by an order of
//! magnitude or more (the acceptance bar is >= 5x for PageRank at the
//! 1% fraction); above it the engines recompute, so the 10% row's
//! speedups collapse to ~1x by design.
//!
//! Every timed repair is asserted equal to the from-scratch answer
//! before its row is written (ranks within the testkit's reorder
//! tolerance, levels and labels exactly), so each speedup in the CSV
//! is for a verified-identical result.

use std::time::Instant;

use egraph_bench::{fmt_ratio, fmt_secs, graphs, reps, ExperimentCtx, ResultTable};
use egraph_core::algo::{bfs, pagerank, wcc};
use egraph_core::layout::{
    DeltaBatch, DeltaGraph, DeltaList, DeltaLog, DeltaOp, EdgeDirection, NeighborAccess,
    VertexLayout,
};
use egraph_core::preprocess::{CsrBuilder, Strategy};
use egraph_core::types::{Edge, EdgeList, EdgeRecord};

/// Rank agreement bound between the repaired and from-scratch solves —
/// the testkit's reorder tolerance.
const RANK_TOL: f32 = 1e-4;

/// The delta fractions the paper-style sweep reports.
const FRACTIONS: &[f64] = &[0.001, 0.01, 0.10];

/// SplitMix64, seeded per fraction so rows are independent and
/// reproducible.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// One mixed update batch: ~75% inserts with random endpoints, ~25%
/// deletes of edges live in the base graph (multiset-wide, per the
/// documented delta semantics).
fn random_batch(rng: &mut Rng, nv: usize, base: &[Edge], n_ops: usize) -> DeltaBatch<Edge> {
    let mut batch = DeltaBatch::new();
    for _ in 0..n_ops {
        let op = if rng.below(4) < 3 || base.is_empty() {
            DeltaOp::Insert(Edge::new(
                rng.below(nv as u64) as u32,
                rng.below(nv as u64) as u32,
            ))
        } else {
            let e = base[rng.below(base.len() as u64) as usize];
            DeltaOp::Delete {
                src: e.src(),
                dst: e.dst(),
            }
        };
        batch.ops.push(op);
    }
    batch
}

/// The merged overlay view (base CSR + log) and its out-degrees — the
/// inputs the incremental engines take.
fn merged_view(base: &EdgeList<Edge>, log: &DeltaLog<Edge>) -> (DeltaList<Edge>, Vec<u32>) {
    let (out, inc) = CsrBuilder::new(Strategy::RadixSort, EdgeDirection::Both)
        .sort_neighbors(true)
        .build(base)
        .into_parts();
    let view = DeltaList::new(out, inc, log);
    let degrees = {
        let out = view.out();
        (0..out.num_vertices() as u32)
            .map(|v| out.degree(v) as u32)
            .collect()
    };
    (view, degrees)
}

/// Fastest of N timed runs of `f`, with any per-rep setup done by the
/// caller inside `f` *before* it starts its own clock.
fn best_secs<T>(n: usize, mut f: impl FnMut() -> (T, f64)) -> (T, f64) {
    let mut best: Option<(T, f64)> = None;
    for _ in 0..n.max(1) {
        let (value, secs) = f();
        if best.as_ref().is_none_or(|&(_, b)| secs < b) {
            best = Some((value, secs));
        }
    }
    best.expect("n >= 1")
}

fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f32, f32::max)
}

fn main() {
    let ctx = ExperimentCtx::from_args();
    ctx.banner(
        "exp_update_throughput",
        "delta-log update rates and incremental-vs-recompute speedups",
    );
    let scale = ctx.scale + 2;
    let graph = graphs::rmat(scale);
    let nv = graph.num_vertices();
    let ne = graph.num_edges();
    let root = graphs::best_root(&graph);
    let damping = pagerank::PagerankConfig::default().damping;
    println!("RMAT{scale}: {nv} vertices, {ne} edges; bfs root {root}\n");

    // Prime each engine once on the base graph — the steady state an
    // updating deployment sits in before a batch arrives. The priming
    // solve is not part of any timed region.
    let empty = DeltaLog::new();
    let (view0, degrees0) = merged_view(&graph, &empty);
    let pr0 = pagerank::IncrementalPagerank::new(&view0, &degrees0, damping);
    let bfs0 = bfs::IncrementalBfs::new(&view0, root);
    let wcc0 = wcc::IncrementalWcc::new(&graph);
    drop(view0);

    let mut table = ResultTable::new(
        "update_throughput",
        &[
            "scale",
            "edges",
            "delta_fraction",
            "ops",
            "apply_s",
            "updates_per_s",
            "compact_s",
            "pr_path",
            "pr_inc_s",
            "pr_full_s",
            "pr_speedup",
            "bfs_inc_s",
            "bfs_full_s",
            "bfs_speedup",
            "wcc_inc_s",
            "wcc_full_s",
            "wcc_speedup",
        ],
    );

    for (i, &fraction) in FRACTIONS.iter().enumerate() {
        let n_ops = ((ne as f64 * fraction).round() as usize).max(1);
        let mut rng = Rng(0xE662_0017 ^ (i as u64) << 32);
        let batch = random_batch(&mut rng, nv, graph.edges(), n_ops);
        println!(
            "fraction {fraction}: {n_ops} ops ({} inserts, {} deletes)",
            batch
                .ops
                .iter()
                .filter(|op| matches!(op, DeltaOp::Insert(_)))
                .count(),
            batch
                .ops
                .iter()
                .filter(|op| matches!(op, DeltaOp::Delete { .. }))
                .count(),
        );

        // Raw mutation rates: append the batch to a fresh DeltaGraph's
        // log, then fold it into a published snapshot.
        let ((apply_s, compact_s), _) = best_secs(reps(), || {
            let dgraph = DeltaGraph::new(graph.clone());
            let t = Instant::now();
            dgraph.apply(&batch).expect("generated batch is in-bounds");
            let apply_s = t.elapsed().as_secs_f64();
            let stats = dgraph.compact();
            assert_eq!(stats.merged_ops, n_ops, "compaction must fold every op");
            ((apply_s, stats.seconds), apply_s + stats.seconds)
        });

        let mut log = DeltaLog::new();
        log.append(&batch);
        let (view, degrees) = merged_view(&graph, &log);
        let merged = log.merge_into(&graph);

        // PageRank: repair the primed engine's ranks vs a from-scratch
        // converged solve of the same engine on the merged view.
        let ((pr_ranks, pr_fallback), pr_inc_s) = best_secs(reps(), || {
            let mut engine = pr0.clone();
            let t = Instant::now();
            let outcome = engine.apply(&view, &degrees, &batch);
            let secs = t.elapsed().as_secs_f64();
            ((engine.ranks(), outcome.fallback), secs)
        });
        let (pr_full, pr_full_s) = best_secs(reps(), || {
            let t = Instant::now();
            let engine = pagerank::IncrementalPagerank::new(&view, &degrees, damping);
            let secs = t.elapsed().as_secs_f64();
            (engine.ranks(), secs)
        });
        let drift = max_abs_diff(&pr_ranks, &pr_full);
        assert!(
            drift <= RANK_TOL,
            "fraction {fraction}: repaired ranks drifted {drift} from recompute"
        );

        // BFS: repair levels vs a from-scratch traversal.
        let (bfs_levels, bfs_inc_s) = best_secs(reps(), || {
            let mut engine = bfs0.clone();
            let t = Instant::now();
            engine.apply(&view, &batch);
            let secs = t.elapsed().as_secs_f64();
            (engine.level().to_vec(), secs)
        });
        let (bfs_full, bfs_full_s) = best_secs(reps(), || {
            let t = Instant::now();
            let engine = bfs::IncrementalBfs::new(&view, root);
            let secs = t.elapsed().as_secs_f64();
            (engine.level().to_vec(), secs)
        });
        assert_eq!(
            bfs_levels, bfs_full,
            "fraction {fraction}: repaired BFS levels diverged from recompute"
        );

        // WCC: repair labels vs a from-scratch labeling. Mixed batches
        // contain deletes, so the engine recomputes (fallback) — the
        // honest number for this workload shape.
        let (wcc_labels, wcc_inc_s) = best_secs(reps(), || {
            let mut engine = wcc0.clone();
            let t = Instant::now();
            engine.apply(&merged, &batch);
            let secs = t.elapsed().as_secs_f64();
            (engine.labels().to_vec(), secs)
        });
        let (wcc_full, wcc_full_s) = best_secs(reps(), || {
            let t = Instant::now();
            let engine = wcc::IncrementalWcc::new(&merged);
            let secs = t.elapsed().as_secs_f64();
            (engine.labels().to_vec(), secs)
        });
        assert_eq!(
            wcc_labels, wcc_full,
            "fraction {fraction}: repaired WCC labels diverged from recompute"
        );

        table.add_row(vec![
            scale.to_string(),
            ne.to_string(),
            format!("{fraction}"),
            n_ops.to_string(),
            fmt_secs(apply_s),
            format!("{:.0}", n_ops as f64 / apply_s.max(1e-12)),
            fmt_secs(compact_s),
            if pr_fallback { "fallback" } else { "repair" }.to_string(),
            fmt_secs(pr_inc_s),
            fmt_secs(pr_full_s),
            fmt_ratio(pr_full_s / pr_inc_s.max(1e-12)),
            fmt_secs(bfs_inc_s),
            fmt_secs(bfs_full_s),
            fmt_ratio(bfs_full_s / bfs_inc_s.max(1e-12)),
            fmt_secs(wcc_inc_s),
            fmt_secs(wcc_full_s),
            fmt_ratio(wcc_full_s / wcc_inc_s.max(1e-12)),
        ]);
        println!(
            "  apply {} ({:.0} updates/s), compact {}; pagerank {} vs {} ({}), \
             bfs {} vs {}, wcc {} vs {}",
            fmt_secs(apply_s),
            n_ops as f64 / apply_s.max(1e-12),
            fmt_secs(compact_s),
            fmt_secs(pr_inc_s),
            fmt_secs(pr_full_s),
            if pr_fallback { "fallback" } else { "repair" },
            fmt_secs(bfs_inc_s),
            fmt_secs(bfs_full_s),
            fmt_secs(wcc_inc_s),
            fmt_secs(wcc_full_s),
        );
        // The acceptance-bar row is the trajectory headline.
        if (fraction - 0.01).abs() < 1e-9 {
            ctx.headline(
                "exp_update_throughput",
                "pagerank_repair_speedup",
                pr_full_s / pr_inc_s.max(1e-12),
            );
        }
    }

    table.print();
    println!();
    println!(
        "expected shape: repairs win while the batch stays under the 5% \
         fallback fraction — the acceptance bar is pagerank >= 5.0x at \
         delta_fraction 0.01 — and the 0.10 row recomputes (speedups ~1x) \
         by design. WCC falls back whenever a batch contains deletes."
    );
    ctx.save(&table);
}

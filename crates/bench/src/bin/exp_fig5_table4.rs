//! Figure 5 + Table 4: cache-locality optimizations. BFS and PageRank
//! on four layouts — unsorted adjacency list, neighbor-sorted
//! adjacency list, edge array, and grid — with times (Fig. 5) and
//! simulated LLC miss ratios (Table 4).
//!
//! Expected shape: the grid halves the miss ratio and wins PageRank
//! end-to-end despite its pre-processing; for BFS the grid's algorithm
//! time improves but pre-processing makes it the slowest overall;
//! sorting the per-vertex arrays never pays (same miss ratio, more
//! pre-processing).

use egraph_bench::{fmt_pct, fmt_secs, graphs, llc, ExperimentCtx, ResultTable};
use egraph_core::algo::{bfs, pagerank};
use egraph_core::layout::EdgeDirection;
use egraph_core::preprocess::{CsrBuilder, GridBuilder, Strategy};
use egraph_core::telemetry::{CounterKind, ExecContext, PhaseProfiler};

/// Runs `f` under the profiler's hardware counters and returns the
/// measured LLC miss ratio, when both LLC counters opened.
fn hw_llc_ratio(prof: &PhaseProfiler, f: impl FnOnce()) -> Option<f64> {
    prof.profile("hw", f);
    prof.take_phases()
        .pop()
        .and_then(|p| p.hardware_llc_miss_ratio())
}

fn main() {
    let ctx = ExperimentCtx::from_args();
    ctx.banner(
        "exp_fig5_table4",
        "Figure 5 + Table 4 (cache-locality layouts)",
    );
    // Opened before any parallel work: the counters only cover threads
    // spawned after them, and the first graph build creates the pool.
    let prof = PhaseProfiler::enabled();

    let graph = graphs::rmat(ctx.scale);
    let degrees = graphs::out_degrees_u32(&graph);
    let root = graphs::best_root(&graph);
    let side = graphs::grid_side(graph.num_vertices());
    let pr_cfg = pagerank::PagerankConfig::default();
    println!(
        "graph: RMAT{} ({} edges); grid {side}x{side}\n",
        ctx.scale,
        graph.num_edges()
    );

    let (adj, pre_adj) =
        CsrBuilder::new(Strategy::RadixSort, EdgeDirection::Out).build_timed(&graph);
    let (adj_sorted, pre_sorted) = CsrBuilder::new(Strategy::RadixSort, EdgeDirection::Out)
        .sort_neighbors(true)
        .build_timed(&graph);
    let (grid, pre_grid) = GridBuilder::new(Strategy::RadixSort)
        .side(side)
        .build_timed(&graph);

    let mut fig5 = ResultTable::new(
        "fig5_cache_layout_times",
        &[
            "algorithm",
            "layout",
            "preprocess(s)",
            "algorithm(s)",
            "total(s)",
        ],
    );
    let mut table4 = ResultTable::new(
        "table4_llc_miss_ratios",
        &["layout", "source", "BFS", "Pagerank"],
    );

    // --- timing runs (NullProbe, full speed) ---
    let bfs_adj = bfs::push(&adj, root).algorithm_seconds();
    let bfs_sorted = bfs::push(&adj_sorted, root).algorithm_seconds();
    let bfs_edge = bfs::edge_centric(&graph, root).algorithm_seconds();
    let bfs_grid = bfs::grid(&grid, root).algorithm_seconds();

    let pr_adj = pagerank::push(adj.out(), &degrees, pr_cfg, pagerank::PushSync::Atomics).seconds;
    let pr_sorted = pagerank::push(
        adj_sorted.out(),
        &degrees,
        pr_cfg,
        pagerank::PushSync::Atomics,
    )
    .seconds;
    let pr_edge =
        pagerank::edge_centric(&graph, &degrees, pr_cfg, pagerank::PushSync::Atomics).seconds;
    let pr_grid = pagerank::grid_push(&grid, &degrees, pr_cfg, false).seconds;

    let rows = [
        ("adj. unsorted", pre_adj.seconds, bfs_adj, pr_adj),
        ("adj. sorted", pre_sorted.seconds, bfs_sorted, pr_sorted),
        ("edge array", 0.0, bfs_edge, pr_edge),
        ("grid", pre_grid.seconds, bfs_grid, pr_grid),
    ];
    for (name, pre, bfs_s, pr_s) in rows {
        fig5.add_row(vec![
            "bfs".into(),
            name.into(),
            fmt_secs(pre),
            fmt_secs(bfs_s),
            fmt_secs(pre + bfs_s),
        ]);
        fig5.add_row(vec![
            "pagerank".into(),
            name.into(),
            fmt_secs(pre),
            fmt_secs(pr_s),
            fmt_secs(pre + pr_s),
        ]);
    }
    fig5.print();

    // --- miss-ratio runs (probed, one PR iteration / full BFS) ---
    println!("\nmeasuring LLC miss ratios (scaled machine-B cache)…");
    let pr_probe_cfg = pagerank::PagerankConfig {
        iterations: 1,
        ..pr_cfg
    };
    let mut add_llc = |name: &str, bfs_miss: f64, pr_miss: f64| {
        table4.add_row(vec![
            name.into(),
            "simulated".into(),
            fmt_pct(bfs_miss),
            fmt_pct(pr_miss),
        ]);
    };

    let probe = llc::probe_for(graph.num_vertices(), 1);
    bfs::push_ctx(&adj, root, &ExecContext::new().with_probe(&probe));
    let b = probe.report().overall_miss_ratio();
    let probe = llc::probe_for(graph.num_vertices(), 12);
    pagerank::push_ctx(
        adj.out(),
        &degrees,
        pr_probe_cfg,
        pagerank::PushSync::Atomics,
        &ExecContext::new().with_probe(&probe),
    );
    add_llc("adj. unsorted", b, probe.report().overall_miss_ratio());

    let probe = llc::probe_for(graph.num_vertices(), 1);
    bfs::push_ctx(&adj_sorted, root, &ExecContext::new().with_probe(&probe));
    let b = probe.report().overall_miss_ratio();
    let probe = llc::probe_for(graph.num_vertices(), 12);
    pagerank::push_ctx(
        adj_sorted.out(),
        &degrees,
        pr_probe_cfg,
        pagerank::PushSync::Atomics,
        &ExecContext::new().with_probe(&probe),
    );
    add_llc("adj. sorted", b, probe.report().overall_miss_ratio());

    let probe = llc::probe_for(graph.num_vertices(), 1);
    bfs::edge_centric_ctx(&graph, root, &ExecContext::new().with_probe(&probe));
    let b = probe.report().overall_miss_ratio();
    let probe = llc::probe_for(graph.num_vertices(), 12);
    pagerank::edge_centric_ctx(
        &graph,
        &degrees,
        pr_probe_cfg,
        pagerank::PushSync::Atomics,
        &ExecContext::new().with_probe(&probe),
    );
    add_llc("edge array", b, probe.report().overall_miss_ratio());

    // The probed grid must be sized to the *simulated* LLC, exactly as
    // the paper's 256x256 was sized to machine B's 16 MB: two vertex
    // ranges of metadata should fit the scaled cache.
    let probe_side = {
        let cap = llc::scaled_machine_b(graph.num_vertices() * 12).capacity;
        let range = (cap / (2 * 12)).max(64);
        graph.num_vertices().div_ceil(range).clamp(8, 256)
    };
    let grid_probe_layout = GridBuilder::new(Strategy::RadixSort)
        .side(probe_side)
        .build(&graph);
    println!("(probed grid uses side {probe_side}, matched to the scaled LLC)");
    let probe = llc::probe_for(graph.num_vertices(), 1);
    bfs::grid_ctx(
        &grid_probe_layout,
        root,
        &ExecContext::new().with_probe(&probe),
    );
    let b = probe.report().overall_miss_ratio();
    let probe = llc::probe_for(graph.num_vertices(), 12);
    pagerank::grid_push_ctx(
        &grid_probe_layout,
        &degrees,
        pr_probe_cfg,
        false,
        &ExecContext::new().with_probe(&probe),
    );
    add_llc("grid", b, probe.report().overall_miss_ratio());

    // --- hardware miss ratios (real PMU, full-speed runs) ---
    // Same layouts and configs as the simulated pass, measured with
    // perf LLC-loads / LLC-load-misses instead of the cache model. On
    // hosts that restrict perf_event_open the table simply keeps its
    // simulated rows.
    let kinds = prof.available_counters();
    if kinds.contains(&CounterKind::LlcLoads) && kinds.contains(&CounterKind::LlcLoadMisses) {
        println!("\nmeasuring LLC miss ratios (hardware counters)…");
        let hw_rows = [
            (
                "adj. unsorted",
                hw_llc_ratio(&prof, || {
                    bfs::push(&adj, root);
                }),
                hw_llc_ratio(&prof, || {
                    pagerank::push(
                        adj.out(),
                        &degrees,
                        pr_probe_cfg,
                        pagerank::PushSync::Atomics,
                    );
                }),
            ),
            (
                "adj. sorted",
                hw_llc_ratio(&prof, || {
                    bfs::push(&adj_sorted, root);
                }),
                hw_llc_ratio(&prof, || {
                    pagerank::push(
                        adj_sorted.out(),
                        &degrees,
                        pr_probe_cfg,
                        pagerank::PushSync::Atomics,
                    );
                }),
            ),
            (
                "edge array",
                hw_llc_ratio(&prof, || {
                    bfs::edge_centric(&graph, root);
                }),
                hw_llc_ratio(&prof, || {
                    pagerank::edge_centric(
                        &graph,
                        &degrees,
                        pr_probe_cfg,
                        pagerank::PushSync::Atomics,
                    );
                }),
            ),
            (
                "grid",
                hw_llc_ratio(&prof, || {
                    bfs::grid(&grid, root);
                }),
                hw_llc_ratio(&prof, || {
                    pagerank::grid_push(&grid, &degrees, pr_probe_cfg, false);
                }),
            ),
        ];
        let fmt_opt = |r: Option<f64>| r.map(fmt_pct).unwrap_or_else(|| "n/a".into());
        for (name, bfs_hw, pr_hw) in hw_rows {
            table4.add_row(vec![
                name.into(),
                "hardware".into(),
                fmt_opt(bfs_hw),
                fmt_opt(pr_hw),
            ]);
        }
    } else {
        println!(
            "\nhardware LLC counters unavailable on this host; Table 4 keeps simulated rows only"
        );
    }

    println!();
    table4.print();
    println!();
    println!("paper Table 4 (RMAT26): edge array 57%/83%, grid 23%/35%,");
    println!("adj 63%/78%, adj sorted 63%/78% — grid halves the miss ratio,");
    println!("sorting neighbor arrays changes nothing.");
    ctx.save(&fig5);
    ctx.save(&table4);
}

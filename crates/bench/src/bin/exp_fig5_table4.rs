//! Figure 5 + Table 4: cache-locality optimizations. BFS and PageRank
//! on four layouts — unsorted adjacency list, neighbor-sorted
//! adjacency list, edge array, and grid — with times (Fig. 5) and
//! simulated LLC miss ratios (Table 4).
//!
//! Expected shape: the grid halves the miss ratio and wins PageRank
//! end-to-end despite its pre-processing; for BFS the grid's algorithm
//! time improves but pre-processing makes it the slowest overall;
//! sorting the per-vertex arrays never pays (same miss ratio, more
//! pre-processing).

use egraph_bench::{fmt_pct, fmt_secs, graphs, llc, ExperimentCtx, ResultTable};
use egraph_core::algo::pagerank;
use egraph_core::exec::ExecCtx;
use egraph_core::preprocess::Strategy;
use egraph_core::telemetry::{CounterKind, PhaseProfiler};
use egraph_core::types::Edge;
use egraph_core::variant::{
    run_variant, Algo, Direction, Layout, PreparedGraph, RunParams, VariantId, VariantRun,
};

/// Runs `f` under the profiler's hardware counters and returns the
/// measured LLC miss ratio, when both LLC counters opened.
fn hw_llc_ratio(prof: &PhaseProfiler, f: impl FnOnce()) -> Option<f64> {
    prof.profile("hw", f);
    prof.take_phases()
        .pop()
        .and_then(|p| p.hardware_llc_miss_ratio())
}

/// One variant run through the unified resolver; every combination
/// this experiment asks for is in the support matrix.
fn run(
    id: VariantId,
    ctx: &ExecCtx<'_>,
    graph: &PreparedGraph<'_, Edge>,
    params: &RunParams<'_>,
) -> VariantRun {
    run_variant(&id, ctx, graph, params).expect("variant is in the support matrix")
}

fn main() {
    let ctx = ExperimentCtx::from_args();
    ctx.banner(
        "exp_fig5_table4",
        "Figure 5 + Table 4 (cache-locality layouts)",
    );
    // Opened before any parallel work: the counters only cover threads
    // spawned after them, and the first graph build creates the pool.
    let prof = PhaseProfiler::enabled();

    let graph = graphs::rmat(ctx.scale);
    let root = graphs::best_root(&graph);
    let side = graphs::grid_side(graph.num_vertices());
    let pr_cfg = pagerank::PagerankConfig::default();
    println!(
        "graph: RMAT{} ({} edges); grid {side}x{side}\n",
        ctx.scale,
        graph.num_edges()
    );

    // One PreparedGraph per build configuration; each caches its
    // layouts so the timing, probed and hardware passes share builds.
    let prep = PreparedGraph::new(&graph).strategy(Strategy::RadixSort);
    let prep_sorted = PreparedGraph::new(&graph)
        .strategy(Strategy::RadixSort)
        .sort_neighbors(true);
    let prep_grid = PreparedGraph::new(&graph)
        .strategy(Strategy::RadixSort)
        .side(side);

    let bfs_adj_id = VariantId::new(Algo::Bfs, Layout::Adjacency, Direction::Push);
    let bfs_edge_id = VariantId::new(Algo::Bfs, Layout::EdgeList, Direction::Push);
    let bfs_grid_id = VariantId::new(Algo::Bfs, Layout::Grid, Direction::Push);
    let pr_adj_id = VariantId::new(Algo::Pagerank, Layout::Adjacency, Direction::Push);
    let pr_edge_id = VariantId::new(Algo::Pagerank, Layout::EdgeList, Direction::Push);
    let pr_grid_id = VariantId::new(Algo::Pagerank, Layout::Grid, Direction::Push);

    let bfs_params = RunParams {
        root,
        ..RunParams::default()
    };
    let pr_params = RunParams {
        pagerank: pr_cfg,
        ..RunParams::default()
    };

    let mut fig5 = ResultTable::new(
        "fig5_cache_layout_times",
        &[
            "algorithm",
            "layout",
            "preprocess(s)",
            "algorithm(s)",
            "total(s)",
        ],
    );
    let mut table4 = ResultTable::new(
        "table4_llc_miss_ratios",
        &["layout", "source", "BFS", "Pagerank"],
    );

    // --- timing runs (no probe, full speed) ---
    let plain = ExecCtx::new(None);
    let bfs_adj = run(bfs_adj_id, &plain, &prep, &bfs_params);
    let bfs_sorted = run(bfs_adj_id, &plain, &prep_sorted, &bfs_params);
    let bfs_edge = run(bfs_edge_id, &plain, &prep, &bfs_params);
    let bfs_grid = run(bfs_grid_id, &plain, &prep_grid, &bfs_params);

    let pr_adj = run(pr_adj_id, &plain, &prep, &pr_params);
    let pr_sorted = run(pr_adj_id, &plain, &prep_sorted, &pr_params);
    let pr_edge = run(pr_edge_id, &plain, &prep, &pr_params);
    let pr_grid = run(pr_grid_id, &plain, &prep_grid, &pr_params);

    let rows = [
        ("adj. unsorted", &bfs_adj, &pr_adj),
        ("adj. sorted", &bfs_sorted, &pr_sorted),
        ("edge array", &bfs_edge, &pr_edge),
        ("grid", &bfs_grid, &pr_grid),
    ];
    for (name, bfs_run, pr_run) in rows {
        fig5.add_row(vec![
            "bfs".into(),
            name.into(),
            fmt_secs(bfs_run.preprocess_seconds),
            fmt_secs(bfs_run.algorithm_seconds),
            fmt_secs(bfs_run.preprocess_seconds + bfs_run.algorithm_seconds),
        ]);
        fig5.add_row(vec![
            "pagerank".into(),
            name.into(),
            fmt_secs(pr_run.preprocess_seconds),
            fmt_secs(pr_run.algorithm_seconds),
            fmt_secs(pr_run.preprocess_seconds + pr_run.algorithm_seconds),
        ]);
    }
    fig5.print();

    // --- miss-ratio runs (probed, one PR iteration / full BFS) ---
    println!("\nmeasuring LLC miss ratios (scaled machine-B cache)…");
    let pr_probe_params = RunParams {
        pagerank: pagerank::PagerankConfig {
            iterations: 1,
            ..pr_cfg
        },
        ..RunParams::default()
    };
    let mut add_llc = |name: &str, bfs_miss: f64, pr_miss: f64| {
        table4.add_row(vec![
            name.into(),
            "simulated".into(),
            fmt_pct(bfs_miss),
            fmt_pct(pr_miss),
        ]);
    };
    // The layouts are already cached in the PreparedGraphs, so the
    // probe observes only the algorithm's accesses.
    let probed = |id: VariantId, g: &PreparedGraph<'_, Edge>, params: &RunParams<'_>| {
        let words = if id.algo == Algo::Bfs { 1 } else { 12 };
        let probe = llc::probe_for(graph.num_vertices(), words);
        run(id, &ExecCtx::new(None).probe(&probe), g, params);
        probe.report().overall_miss_ratio()
    };

    let b = probed(bfs_adj_id, &prep, &bfs_params);
    let p = probed(pr_adj_id, &prep, &pr_probe_params);
    add_llc("adj. unsorted", b, p);

    let b = probed(bfs_adj_id, &prep_sorted, &bfs_params);
    let p = probed(pr_adj_id, &prep_sorted, &pr_probe_params);
    add_llc("adj. sorted", b, p);

    let b = probed(bfs_edge_id, &prep, &bfs_params);
    let p = probed(pr_edge_id, &prep, &pr_probe_params);
    add_llc("edge array", b, p);

    // The probed grid must be sized to the *simulated* LLC, exactly as
    // the paper's 256x256 was sized to machine B's 16 MB: two vertex
    // ranges of metadata should fit the scaled cache.
    let probe_side = {
        let cap = llc::scaled_machine_b(graph.num_vertices() * 12).capacity;
        let range = (cap / (2 * 12)).max(64);
        graph.num_vertices().div_ceil(range).clamp(8, 256)
    };
    let prep_probe_grid = PreparedGraph::new(&graph)
        .strategy(Strategy::RadixSort)
        .side(probe_side);
    println!("(probed grid uses side {probe_side}, matched to the scaled LLC)");
    let b = probed(bfs_grid_id, &prep_probe_grid, &bfs_params);
    let p = probed(pr_grid_id, &prep_probe_grid, &pr_probe_params);
    add_llc("grid", b, p);

    // --- hardware miss ratios (real PMU, full-speed runs) ---
    // Same layouts and configs as the simulated pass, measured with
    // perf LLC-loads / LLC-load-misses instead of the cache model. On
    // hosts that restrict perf_event_open the table simply keeps its
    // simulated rows.
    let kinds = prof.available_counters();
    if kinds.contains(&CounterKind::LlcLoads) && kinds.contains(&CounterKind::LlcLoadMisses) {
        println!("\nmeasuring LLC miss ratios (hardware counters)…");
        let hw_rows = [
            ("adj. unsorted", &prep, bfs_adj_id, pr_adj_id),
            ("adj. sorted", &prep_sorted, bfs_adj_id, pr_adj_id),
            ("edge array", &prep, bfs_edge_id, pr_edge_id),
            ("grid", &prep_grid, bfs_grid_id, pr_grid_id),
        ];
        let fmt_opt = |r: Option<f64>| r.map(fmt_pct).unwrap_or_else(|| "n/a".into());
        for (name, g, bfs_id, pr_id) in hw_rows {
            let bfs_hw = hw_llc_ratio(&prof, || {
                run(bfs_id, &plain, g, &bfs_params);
            });
            let pr_hw = hw_llc_ratio(&prof, || {
                run(pr_id, &plain, g, &pr_probe_params);
            });
            table4.add_row(vec![
                name.into(),
                "hardware".into(),
                fmt_opt(bfs_hw),
                fmt_opt(pr_hw),
            ]);
        }
    } else {
        println!(
            "\nhardware LLC counters unavailable on this host; Table 4 keeps simulated rows only"
        );
    }

    println!();
    table4.print();
    println!();
    println!("paper Table 4 (RMAT26): edge array 57%/83%, grid 23%/35%,");
    println!("adj 63%/78%, adj sorted 63%/78% — grid halves the miss ratio,");
    println!("sorting neighbor arrays changes nothing.");
    ctx.save(&fig5);
    ctx.save(&table4);
}

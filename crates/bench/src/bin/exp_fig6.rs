//! Figure 6: per-iteration algorithm time of push vs pull BFS on RMAT.
//!
//! Expected shape: push wins the first iteration and the tail; pull
//! wins the middle iterations (2–3) where most of the graph is
//! discovered and push does redundant work.

use egraph_bench::{fmt_secs, graphs, ExperimentCtx, ResultTable};
use egraph_core::algo::bfs;
use egraph_core::layout::EdgeDirection;
use egraph_core::preprocess::{CsrBuilder, Strategy};

fn main() {
    let ctx = ExperimentCtx::from_args();
    ctx.banner("exp_fig6", "Figure 6 (per-iteration push vs pull BFS)");

    let graph = graphs::rmat(ctx.scale);
    let root = graphs::best_root(&graph);
    let adj = CsrBuilder::new(Strategy::RadixSort, EdgeDirection::Both).build(&graph);

    let push = bfs::push(&adj, root);
    let pull = bfs::pull(&adj, root);
    assert_eq!(push.reachable_count(), pull.reachable_count());

    let mut table = ResultTable::new(
        "fig6_per_iteration_push_pull",
        &["iteration", "frontier", "push(s)", "pull(s)", "winner"],
    );
    let iters = push.iterations.len().max(pull.iterations.len());
    let mut pull_wins_middle = false;
    for i in 0..iters {
        let p = push.iterations.get(i);
        let q = pull.iterations.get(i);
        let ps = p.map(|s| s.seconds).unwrap_or(0.0);
        let qs = q.map(|s| s.seconds).unwrap_or(0.0);
        let winner = if ps < qs { "push" } else { "pull" };
        if (1..=3).contains(&i) && qs < ps {
            pull_wins_middle = true;
        }
        table.add_row(vec![
            (i + 1).to_string(),
            p.map(|s| s.frontier_size.to_string()).unwrap_or_default(),
            fmt_secs(ps),
            fmt_secs(qs),
            winner.into(),
        ]);
    }
    table.print();
    println!();
    println!(
        "pull wins the high-density middle iterations: {}",
        if pull_wins_middle {
            "yes (matches Fig. 6)"
        } else {
            "no (graph too small to show it)"
        }
    );
    println!("paper: push faster in iteration 1 and after 3; pull faster in iterations 2-3.");
    ctx.save(&table);
}

//! Table 2 companion: peak heap footprint of building each data
//! layout (edge list, CSR adjacency, grid) at RMAT scales 16/18/20.
//!
//! The paper reports layout build *time* (Table 2) and notes the 2D
//! grid's metadata overhead in passing; this experiment pins down the
//! memory side with the tracking allocator: bytes allocated, the peak
//! live over each build window, and the process RSS after it.
//!
//! Build with `--features alloc-track` for real allocator numbers —
//! without it the peak/allocated columns read 0 and only the RSS
//! fallback moves.

use egraph_bench::{graphs, ExperimentCtx, ResultTable};
use egraph_core::layout::EdgeDirection;
use egraph_core::preprocess::{CsrBuilder, GridBuilder, Strategy};
use egraph_metrics::alloc;

#[cfg(feature = "alloc-track")]
#[global_allocator]
static ALLOC: alloc::TrackingAlloc = alloc::TrackingAlloc;

fn fmt_bytes(b: u64) -> String {
    format!("{:.1}", b as f64 / (1 << 20) as f64)
}

fn main() {
    let ctx = ExperimentCtx::from_args();
    ctx.banner(
        "exp_table2_memory",
        "Table 2 companion (peak memory per layout build)",
    );
    if !alloc::tracking_installed() {
        eprintln!(
            "note: tracking allocator not installed (build with \
             --features alloc-track); peak/allocated columns will be 0"
        );
    }

    let mut table = ResultTable::new(
        "table2_layout_memory",
        &[
            "scale",
            "vertices",
            "edges",
            "layout",
            "peak_MiB",
            "allocated_MiB",
            "end_rss_MiB",
            "peak_bytes",
            "allocated_bytes",
            "end_rss_bytes",
        ],
    );

    // The paper's scales: 16, 18, 20 with the default --scale 16.
    for scale in [ctx.scale, ctx.scale + 2, ctx.scale + 4] {
        let w = alloc::window("edgelist");
        let graph = graphs::rmat(scale);
        let edgelist = w.finish();
        let mut record = |layout: &str, stats: alloc::PhaseAllocStats| {
            let rss = alloc::rss_bytes().unwrap_or(0);
            table.add_row(vec![
                scale.to_string(),
                graph.num_vertices().to_string(),
                graph.num_edges().to_string(),
                layout.to_string(),
                fmt_bytes(stats.peak_bytes),
                fmt_bytes(stats.allocated_bytes),
                fmt_bytes(rss),
                stats.peak_bytes.to_string(),
                stats.allocated_bytes.to_string(),
                rss.to_string(),
            ]);
        };
        record("edgelist", edgelist);

        // Each build window re-baselines the peak to the live bytes at
        // entry, so the peak column is the layout's own transient +
        // resident footprint on top of the edge list it reads.
        let w = alloc::window("csr");
        let (csr, _) = CsrBuilder::new(Strategy::RadixSort, EdgeDirection::Out).build_timed(&graph);
        record("csr", w.finish());
        drop(csr);

        let w = alloc::window("grid");
        let (grid, _) = GridBuilder::new(Strategy::RadixSort)
            .side(graphs::grid_side(graph.num_vertices()))
            .build_timed(&graph);
        record("grid", w.finish());
        drop(grid);
    }

    table.print();
    println!();
    println!(
        "paper context: the grid's per-block metadata makes it the heaviest \
         build; CSR's radix scratch doubles the edge array transiently"
    );
    ctx.save(&table);
}

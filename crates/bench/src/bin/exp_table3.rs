//! Table 3: adjacency-list creation with loading time included.
//! Dynamic building fully overlaps with loading, count sort overlaps
//! its first pass, radix sort overlaps nothing — so on a slow disk the
//! dynamic approach wins, while on SSD radix wins or ties.
//!
//! Pre-processing times are measured for real; loading times come from
//! the storage medium's bandwidth and the overlap model of
//! `egraph_storage::pipeline` (see DESIGN.md §4).

use egraph_bench::{fmt_secs, graphs, ExperimentCtx, ResultTable};
use egraph_core::layout::EdgeDirection;
use egraph_core::metrics::timed;
use egraph_core::preprocess::{CsrBuilder, Strategy};
use egraph_storage::{Medium, OverlapPlan};

fn main() {
    let ctx = ExperimentCtx::from_args();
    ctx.banner(
        "exp_table3",
        "Table 3 (loading + pre-processing, SSD vs HDD)",
    );

    let graph = graphs::rmat(ctx.scale);
    let bytes = (graph.num_edges() * std::mem::size_of::<egraph_core::types::Edge>()) as u64;
    println!(
        "graph: RMAT{} — {} edges, {:.1} MB on storage\n",
        ctx.scale,
        graph.num_edges(),
        bytes as f64 / 1e6
    );

    // Measure each strategy's pure pre-processing, out and in-out.
    let mut measured = Vec::new();
    for direction in [EdgeDirection::Out, EdgeDirection::Both] {
        let (_, dyn_stats) = CsrBuilder::new(Strategy::Dynamic, direction).build_timed(&graph);
        let (_, radix_stats) = CsrBuilder::new(Strategy::RadixSort, direction).build_timed(&graph);
        // Split count sort into its two passes: the counting pass (the
        // overlappable half) and the scatter.
        let (_, count_pass) = timed(|| {
            let _ = graph.out_degrees();
            if direction == EdgeDirection::Both {
                let _ = graph.in_degrees();
            }
        });
        let (_, count_total) = {
            let (_, s) = CsrBuilder::new(Strategy::CountSort, direction).build_timed(&graph);
            ((), s.seconds)
        };
        measured.push((
            direction,
            dyn_stats.seconds,
            radix_stats.seconds,
            count_pass,
            count_total,
        ));
    }

    let mut table = ResultTable::new(
        "table3_loading_included",
        &["pre-processing approach", "out(s)", "in-out(s)"],
    );
    for medium in [Medium::ssd(), Medium::hdd()] {
        let mut row_dynamic = vec![format!("dynamic, loaded from {}", medium.name)];
        let mut row_radix = vec![format!("radix-sort, loaded from {}", medium.name)];
        let mut row_count = vec![format!("count-sort, loaded from {}", medium.name)];
        for &(_, dyn_s, radix_s, count_pass, count_total) in &measured {
            row_dynamic.push(fmt_secs(
                OverlapPlan::dynamic(dyn_s).makespan(medium, bytes),
            ));
            row_radix.push(fmt_secs(
                OverlapPlan::radix(radix_s).makespan(medium, bytes),
            ));
            row_count.push(fmt_secs(
                OverlapPlan::count_sort(count_pass, (count_total - count_pass).max(0.0))
                    .makespan(medium, bytes),
            ));
        }
        table.add_row(row_dynamic);
        table.add_row(row_radix);
        table.add_row(row_count);
    }
    table.print();

    println!();
    println!("paper reference (RMAT26): SSD dynamic 20.7/40.0, SSD radix 21.2/27.0;");
    println!("                          HDD dynamic 61.0/61.1, HDD radix 65.0/71.0");
    println!("expected shape: radix wins/ties on SSD (in-out especially); dynamic wins on HDD.");
    ctx.save(&table);
}

//! Table 2: adjacency-list creation cost (dynamic vs count sort vs
//! radix sort) for out-only and in+out directions, plus the simulated
//! LLC miss percentage of each construction technique.
//!
//! Paper (Twitter, machine B): dynamic 20.0/27.2 s @ 69% misses,
//! count 19.5/23.9 s @ 71%, radix 4.0/8.5 s @ 26%.

use egraph_bench::{fmt_pct, fmt_ratio, fmt_secs, graphs, llc, trace, ExperimentCtx, ResultTable};
use egraph_core::layout::EdgeDirection;
use egraph_core::preprocess::{CsrBuilder, Strategy};

fn main() {
    let ctx = ExperimentCtx::from_args();
    ctx.banner(
        "exp_table2",
        "Table 2 (adjacency-list creation cost + LLC misses)",
    );

    let graph = graphs::twitter_like(ctx.scale);
    println!(
        "graph: {} vertices, {} edges (twitter-shaped)\n",
        graph.num_vertices(),
        graph.num_edges()
    );

    let mut table = ResultTable::new(
        "table2_adjlist_creation",
        &["variation", "out(s)", "in-out(s)", "LLC misses"],
    );

    let mut radix_out = 0.0f64;
    let mut count_out = 0.0f64;
    let mut dynamic_out = 0.0f64;
    let reps = egraph_bench::reps();
    for strategy in Strategy::ALL {
        let ((), out_secs) = egraph_bench::min_time(reps, || {
            let (_, stats) = CsrBuilder::new(strategy, EdgeDirection::Out).build_timed(&graph);
            ((), stats.seconds)
        });
        let ((), both_secs) = egraph_bench::min_time(reps, || {
            let (_, stats) = CsrBuilder::new(strategy, EdgeDirection::Both).build_timed(&graph);
            ((), stats.seconds)
        });

        // Replay the construction's access stream against the scaled
        // LLC (index metadata: ~8 B per vertex).
        let probe = llc::probe_for(graph.num_vertices(), 8);
        match strategy {
            Strategy::Dynamic => trace::trace_dynamic(graph.edges(), graph.num_vertices(), &probe),
            Strategy::CountSort => {
                trace::trace_count_sort(graph.edges(), graph.num_vertices(), &probe)
            }
            Strategy::RadixSort => {
                trace::trace_radix_sort(graph.edges(), graph.num_vertices(), &probe)
            }
        }
        let miss = probe.report().overall_miss_ratio();

        match strategy {
            Strategy::Dynamic => dynamic_out = out_secs,
            Strategy::CountSort => count_out = out_secs,
            Strategy::RadixSort => radix_out = out_secs,
        }
        table.add_row(vec![
            strategy.name().into(),
            fmt_secs(out_secs),
            fmt_secs(both_secs),
            fmt_pct(miss),
        ]);
    }
    table.print();

    println!();
    println!(
        "radix speedup vs count sort: {}   (paper: 4.8x)",
        fmt_ratio(count_out / radix_out.max(1e-9))
    );
    println!(
        "radix speedup vs dynamic:    {}   (paper: 4.9x)",
        fmt_ratio(dynamic_out / radix_out.max(1e-9))
    );
    println!("paper reference (Twitter, machine B): dynamic 20.0/27.2 69% | count 19.5/23.9 71% | radix 4.0/8.5 26%");
    ctx.save(&table);
    ctx.headline(
        "exp_table2",
        "radix_vs_count",
        count_out / radix_out.max(1e-9),
    );
    ctx.headline(
        "exp_table2",
        "radix_vs_dynamic",
        dynamic_out / radix_out.max(1e-9),
    );
}

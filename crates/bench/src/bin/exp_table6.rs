//! Table 6: best approaches for WCC, SpMV, SSSP and ALS across the
//! datasets, with the end-to-end breakdown.
//!
//! Paper: WCC → edge array on low-diameter graphs (undirected copy
//! makes adjacency pre-processing too expensive) but adj. list on the
//! high-diameter road graph; SpMV → always edge array; SSSP → adj.
//! list push; ALS → adj. list pull (no lock). Each row also runs the
//! paper's loser to verify the ordering. All timings are minimum-of-N
//! (EGRAPH_REPS) to filter host noise.

use egraph_bench::{fmt_secs, graphs, min_time, reps, ExperimentCtx, ResultTable};
use egraph_core::algo::{als, spmv, sssp, wcc};
use egraph_core::layout::EdgeDirection;
use egraph_core::preprocess::{CsrBuilder, Strategy};

fn main() {
    let ctx = ExperimentCtx::from_args();
    ctx.banner(
        "exp_table6",
        "Table 6 (best approaches: WCC, SpMV, SSSP, ALS)",
    );
    let reps = reps();

    let mut table = ResultTable::new(
        "table6_other_algorithms",
        &[
            "algo",
            "graph",
            "layout",
            "model",
            "preprocess(s)",
            "algorithm(s)",
            "total(s)",
        ],
    );
    let row = |t: &mut ResultTable,
               algo: &str,
               graph: &str,
               layout: &str,
               model: &str,
               pre: f64,
               alg: f64| {
        t.add_row(vec![
            algo.into(),
            graph.into(),
            layout.into(),
            model.into(),
            fmt_secs(pre),
            fmt_secs(alg),
            fmt_secs(pre + alg),
        ]);
    };

    // --- WCC on RMAT (low diameter: edge array should win) and road
    // (high diameter: adjacency list should win). ---
    for (name, graph) in [
        ("RMAT", graphs::rmat(ctx.scale)),
        ("US-Road", graphs::road_like(ctx.scale)),
    ] {
        // The road edge-centric run rescans all edges per pass for
        // hundreds of passes; one repetition is conclusive.
        let wcc_reps = if name == "US-Road" { 1 } else { reps };
        let (r, wcc_edge) = min_time(wcc_reps, || {
            let r = wcc::edge_centric(&graph);
            let s = r.algorithm_seconds();
            (r, s)
        });
        row(&mut table, "WCC", name, "Edge array", "Push", 0.0, wcc_edge);

        let (adj, wcc_pre) = min_time(reps, || {
            let start = std::time::Instant::now();
            let undirected = graph.to_undirected();
            let (adj, _) =
                CsrBuilder::new(Strategy::RadixSort, EdgeDirection::Out).build_timed(&undirected);
            let s = start.elapsed().as_secs_f64();
            (adj, s)
        });
        let (r2, wcc_adj) = min_time(reps, || {
            let r = wcc::push(&adj);
            let s = r.algorithm_seconds();
            (r, s)
        });
        assert_eq!(
            r.component_count(),
            r2.component_count(),
            "WCC variants agree"
        );
        row(
            &mut table,
            "WCC",
            name,
            "Adj. list",
            "Push",
            wcc_pre,
            wcc_adj,
        );
    }

    // --- SpMV: edge array vs adjacency list on RMAT. ---
    {
        let graph = graphs::rmat(ctx.scale);
        let weighted = graphs::with_weights(&graph);
        let x: Vec<f32> = (0..graph.num_vertices()).map(|i| (i % 13) as f32).collect();
        let ((), spmv_edge) = min_time(reps, || {
            let r = spmv::edge_centric(&weighted, &x);
            ((), r.seconds)
        });
        row(
            &mut table,
            "SpMV",
            "RMAT",
            "Edge array",
            "Push",
            0.0,
            spmv_edge,
        );
        let (wadj, wpre) = min_time(reps, || {
            let (a, s) =
                CsrBuilder::new(Strategy::RadixSort, EdgeDirection::Out).build_timed(&weighted);
            (a, s.seconds)
        });
        let ((), spmv_adj) = min_time(reps, || {
            let r = spmv::push(wadj.out(), &x);
            ((), r.seconds)
        });
        row(
            &mut table,
            "SpMV",
            "RMAT",
            "Adj. list",
            "Push",
            wpre,
            spmv_adj,
        );
    }

    // --- SSSP: adjacency push vs edge array on RMAT and road. ---
    for (name, base) in [
        ("RMAT", graphs::rmat(ctx.scale)),
        ("US-Road", graphs::road_like(ctx.scale)),
    ] {
        let weighted = graphs::with_weights(&base);
        let root = graphs::best_root(&base);
        let (wadj, wpre) = min_time(reps, || {
            let (a, s) =
                CsrBuilder::new(Strategy::RadixSort, EdgeDirection::Out).build_timed(&weighted);
            (a, s.seconds)
        });
        let (r, sssp_adj) = min_time(reps, || {
            let r = sssp::push(&wadj, root);
            let s = r.algorithm_seconds();
            (r, s)
        });
        row(
            &mut table,
            "SSSP",
            name,
            "Adj. list",
            "Push",
            wpre,
            sssp_adj,
        );
        let sssp_reps = if name == "US-Road" { 1 } else { reps };
        let (r2, sssp_edge) = min_time(sssp_reps, || {
            let r = sssp::edge_centric(&weighted, root);
            let s = r.algorithm_seconds();
            (r, s)
        });
        assert_eq!(
            r.reachable_count(),
            r2.reachable_count(),
            "SSSP variants agree"
        );
        row(
            &mut table,
            "SSSP",
            name,
            "Edge array",
            "Push",
            0.0,
            sssp_edge,
        );
    }

    // --- ALS on the Netflix-shaped bipartite graph. ---
    let (ratings, num_users) = graphs::netflix_like(ctx.scale.min(16));
    let (radj, rpre) = min_time(reps, || {
        let (a, s) =
            CsrBuilder::new(Strategy::RadixSort, EdgeDirection::Both).build_timed(&ratings);
        (a, s.seconds)
    });
    let (r, als_secs) = min_time(reps, || {
        let r = als::als(
            radj.out(),
            radj.incoming(),
            num_users,
            als::AlsConfig::default(),
        );
        let s = r.seconds;
        (r, s)
    });
    row(
        &mut table,
        "ALS",
        "Netflix",
        "Adj. list",
        "Pull (no lock)",
        rpre,
        als_secs,
    );
    println!(
        "(ALS trained to RMSE {:.3} over {} ratings)\n",
        r.rmse_history.last().copied().unwrap_or(f64::NAN),
        ratings.num_edges()
    );

    table.print();
    println!();
    println!("paper Table 6: WCC RMAT edge 11.0 / Twitter edge 19.2 / US-Road adj 57.4;");
    println!("SpMV always edge array; SSSP always adj push; ALS Netflix adj pull 8.1.");
    ctx.save(&table);
}

//! Serving throughput: query batching vs one-at-a-time execution in
//! the `egraph serve` daemon.
//!
//! Starts two in-process daemons on the same RMAT graph — one with the
//! full 64-query batching window, one with `max_wave = 1` (every query
//! runs its own traversal) — and drives each with 1..=64 concurrent
//! TCP clients issuing BFS point queries. Reports queries/second and
//! p50/p99 latency per client count, and checks every root's checksum
//! agrees between the two modes (batching must not change answers).
//!
//! Expected shape: one-at-a-time throughput is flat (the graph is
//! scanned once per query no matter how many clients wait); batched
//! throughput grows with concurrency because up to 64 queries share
//! one bit-packed edge scan. The acceptance bar is ≥2× qps at 64
//! clients on RMAT-18 (`--scale 18`).

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use egraph_bench::{fmt_ratio, graphs, ExperimentCtx, ResultTable};
use egraph_core::serve::{ServeConfig, ServeDaemon, ServeGraph, MAX_WAVE};

/// Queries issued per client-count level (split across the clients).
const TOTAL_QUERIES: usize = 256;

/// One client session: `count` sequential BFS queries starting at
/// `first`, returning per-query latencies and (root, checksum) pairs.
fn client(
    addr: SocketAddr,
    roots: &[u32],
    first: usize,
    count: usize,
) -> (Vec<f64>, Vec<(u32, String)>) {
    let stream = TcpStream::connect(addr).expect("connect to serve daemon");
    stream
        .set_read_timeout(Some(Duration::from_secs(300)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let mut latencies = Vec::with_capacity(count);
    let mut checksums = Vec::with_capacity(count);
    let mut line = String::new();
    for i in 0..count {
        let root = roots[(first + i) % roots.len()];
        let start = Instant::now();
        writer
            .write_all(format!("{{\"id\":{i},\"algo\":\"bfs\",\"source\":{root}}}\n").as_bytes())
            .unwrap();
        line.clear();
        reader.read_line(&mut line).expect("response line");
        latencies.push(start.elapsed().as_secs_f64());
        let checksum = line
            .split("\"checksum\":\"")
            .nth(1)
            .and_then(|rest| rest.split('"').next())
            .unwrap_or_else(|| panic!("response without checksum: {line}"))
            .to_string();
        checksums.push((root, checksum));
    }
    (latencies, checksums)
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

/// Drives `clients` concurrent sessions against `addr`; returns
/// (qps, p50 seconds, p99 seconds) and folds checksums into `seen`.
fn drive(
    addr: SocketAddr,
    clients: usize,
    roots: &[u32],
    seen: &Mutex<BTreeMap<u32, String>>,
) -> (f64, f64, f64) {
    let per_client = TOTAL_QUERIES.div_ceil(clients);
    let wall = Instant::now();
    let mut latencies: Vec<f64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| s.spawn(move || client(addr, roots, c * per_client, per_client)))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| {
                let (lat, sums) = h.join().expect("client thread");
                let mut seen = seen.lock().unwrap();
                for (root, sum) in sums {
                    let prev = seen.entry(root).or_insert_with(|| sum.clone());
                    assert_eq!(
                        *prev, sum,
                        "root {root}: batched and unbatched answers must be bit-identical"
                    );
                }
                lat
            })
            .collect()
    });
    let wall = wall.elapsed().as_secs_f64();
    latencies.sort_by(|a, b| a.total_cmp(b));
    let qps = latencies.len() as f64 / wall;
    (
        qps,
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.99),
    )
}

fn main() {
    let ctx = ExperimentCtx::from_args();
    ctx.banner(
        "exp_serve_qps",
        "serve-mode throughput (query batching vs one-at-a-time)",
    );

    let graph = graphs::rmat(ctx.scale);
    println!(
        "graph: RMAT{} ({} vertices, {} edges); wave limit {MAX_WAVE}\n",
        ctx.scale,
        graph.num_vertices(),
        graph.num_edges()
    );
    let nv = graph.num_vertices() as u32;
    let roots: Vec<u32> = (0..64u32)
        .map(|i| (i.wrapping_mul(2654435761)) % nv)
        .collect();

    let batched = ServeDaemon::start(
        "127.0.0.1:0",
        ServeGraph::Unweighted(graph.clone()),
        ServeConfig {
            metrics: false,
            ..ServeConfig::default()
        },
    )
    .expect("bind batched daemon");
    let unbatched = ServeDaemon::start(
        "127.0.0.1:0",
        ServeGraph::Unweighted(graph.clone()),
        ServeConfig {
            max_wave: 1,
            metrics: false,
            ..ServeConfig::default()
        },
    )
    .expect("bind unbatched daemon");
    batched.wait_ready();
    unbatched.wait_ready();

    let mut table = ResultTable::new(
        "serve_qps",
        &["mode", "clients", "queries", "qps", "p50(ms)", "p99(ms)"],
    );
    let seen = Mutex::new(BTreeMap::new());
    let mut speedup_at_max = 0.0;
    for clients in [1usize, 2, 4, 8, 16, 32, 64] {
        let (one_qps, one_p50, one_p99) = drive(unbatched.addr(), clients, &roots, &seen);
        let (bat_qps, bat_p50, bat_p99) = drive(batched.addr(), clients, &roots, &seen);
        for (mode, qps, p50, p99) in [
            ("one-at-a-time", one_qps, one_p50, one_p99),
            ("batched", bat_qps, bat_p50, bat_p99),
        ] {
            table.add_row(vec![
                mode.into(),
                clients.to_string(),
                TOTAL_QUERIES.to_string(),
                format!("{qps:.1}"),
                format!("{:.2}", p50 * 1e3),
                format!("{:.2}", p99 * 1e3),
            ]);
        }
        println!(
            "{clients:>2} clients: batched {bat_qps:>8.1} qps vs one-at-a-time {one_qps:>8.1} qps ({})",
            fmt_ratio(bat_qps / one_qps.max(1e-9))
        );
        if clients == 64 {
            speedup_at_max = bat_qps / one_qps.max(1e-9);
        }
    }

    println!(
        "\nchecksums: {} distinct roots, all bit-identical across modes",
        seen.lock().unwrap().len()
    );
    println!(
        "batching speedup at 64 clients: {}  (acceptance bar: >=2x on RMAT-18)",
        fmt_ratio(speedup_at_max)
    );
    table.print();
    ctx.save(&table);

    batched.shutdown();
    unbatched.shutdown();
}

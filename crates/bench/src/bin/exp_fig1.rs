//! Figure 1: the pre-processing vs. algorithm trade-off for BFS on the
//! Twitter graph — push-pull wins algorithm time ~3×, but its doubled
//! pre-processing (both edge directions) makes it ~1.5× slower
//! end-to-end.

use egraph_bench::{fmt_ratio, fmt_secs, graphs, ExperimentCtx, ResultTable};
use egraph_core::algo::bfs;
use egraph_core::exec::ExecCtx;
use egraph_core::layout::EdgeDirection;
use egraph_core::metrics::TimeBreakdown;
use egraph_core::preprocess::{CsrBuilder, Strategy};
use egraph_core::telemetry::{RunTrace, TraceRecorder};
use egraph_core::variant::{run_variant, PreparedGraph, RunParams, VariantId};

fn main() {
    let ctx = ExperimentCtx::from_args();
    ctx.banner(
        "exp_fig1",
        "Figure 1 (BFS push vs push-pull, Twitter-shaped graph)",
    );

    let graph = graphs::twitter_like(ctx.scale);
    let root = graphs::best_root(&graph);
    println!(
        "graph: {} vertices, {} edges; root {}\n",
        graph.num_vertices(),
        graph.num_edges(),
        root
    );

    // Minimum of N runs to filter shared-host scheduling noise.
    let reps = egraph_bench::reps();

    // Push: only the out-direction is built.
    let (adj_out, pre_push_secs) = egraph_bench::min_time(reps, || {
        let (adj, stats) =
            CsrBuilder::new(Strategy::RadixSort, EdgeDirection::Out).build_timed(&graph);
        (adj, stats.seconds)
    });
    let (push, _) = egraph_bench::min_time(reps, || {
        let r = bfs::push(&adj_out, root);
        let s = r.algorithm_seconds();
        (r, s)
    });

    // Push-pull: both directions are built (the Fig. 1 penalty).
    let (adj_both, pre_pp_secs) = egraph_bench::min_time(reps, || {
        let (adj, stats) =
            CsrBuilder::new(Strategy::RadixSort, EdgeDirection::Both).build_timed(&graph);
        (adj, stats.seconds)
    });
    let (push_pull, _) = egraph_bench::min_time(reps, || {
        let r = bfs::push_pull(&adj_both, root);
        let s = r.algorithm_seconds();
        (r, s)
    });

    assert_eq!(
        push.reachable_count(),
        push_pull.reachable_count(),
        "variants must agree"
    );

    let mut table = ResultTable::new(
        "fig1_bfs_push_vs_pushpull",
        &["config", "preprocess(s)", "algorithm(s)", "total(s)"],
    );
    let rows = [
        ("bfs push-pull", pre_pp_secs, push_pull.algorithm_seconds()),
        ("bfs push", pre_push_secs, push.algorithm_seconds()),
    ];
    for (name, pre, algo) in rows {
        table.add_row(vec![
            name.into(),
            fmt_secs(pre),
            fmt_secs(algo),
            fmt_secs(pre + algo),
        ]);
    }
    table.print();

    let algo_gain = push.algorithm_seconds() / push_pull.algorithm_seconds().max(1e-9);
    let total_pp = pre_pp_secs + push_pull.algorithm_seconds();
    let total_push = pre_push_secs + push.algorithm_seconds();
    println!();
    println!(
        "algorithm speedup of push-pull: {}   (paper: ~3x)",
        fmt_ratio(algo_gain)
    );
    println!(
        "end-to-end push-pull / push:    {}   (paper: ~1.5x worse)",
        fmt_ratio(total_pp / total_push.max(1e-9))
    );
    println!(
        "pre-processing push-pull / push: {}  (paper: ~2x)",
        fmt_ratio(pre_pp_secs / pre_push_secs.max(1e-9))
    );
    ctx.save(&table);
    ctx.headline("exp_fig1", "algo_gain", algo_gain);
    ctx.headline(
        "exp_fig1",
        "end_to_end_ratio",
        total_pp / total_push.max(1e-9),
    );

    // With --trace-out, replay the winning push-pull run once more
    // with a recorder attached and emit the same machine-readable
    // document the CLI's `run --trace-out` produces.
    if ctx.tracing() {
        egraph_parallel::telemetry::reset();
        egraph_parallel::telemetry::enable();
        let recorder = TraceRecorder::new();
        let prepared = PreparedGraph::new(&graph).strategy(Strategy::RadixSort);
        let id: VariantId = "bfs/adj/push-pull".parse().expect("valid variant spec");
        let params = RunParams {
            root,
            ..RunParams::default()
        };
        let traced = run_variant(
            &id,
            &ExecCtx::new(None).recorder(&recorder),
            &prepared,
            &params,
        )
        .expect("variant is in the support matrix");
        egraph_parallel::telemetry::disable();
        let pool = egraph_parallel::telemetry::snapshot();

        let mut trace = RunTrace::new("bfs");
        trace.config.insert("experiment".into(), "exp_fig1".into());
        trace.config.insert("flow".into(), "push-pull".into());
        trace.config.insert("scale".into(), ctx.scale.to_string());
        trace.config.insert(
            "threads".into(),
            egraph_parallel::current_num_threads().to_string(),
        );
        trace.breakdown = TimeBreakdown {
            preprocess: pre_pp_secs,
            algorithm: traced.algorithm_seconds,
            ..TimeBreakdown::default()
        };
        trace.absorb(&recorder);
        trace
            .counters
            .insert("pool.regions".into(), pool.regions as f64);
        trace
            .counters
            .insert("pool.chunks".into(), pool.chunks as f64);
        trace
            .counters
            .insert("pool.steals".into(), pool.steals as f64);
        trace
            .counters
            .insert("pool.tasks".into(), pool.tasks as f64);
        trace
            .counters
            .insert("pool.busy_seconds_total".into(), pool.total_busy_seconds());
        trace
            .counters
            .insert("pool.load_imbalance".into(), pool.load_imbalance());
        ctx.save_trace(&trace);
    }
}

//! Figure 7: BFS on a directed RMAT graph — push-pull vs push (with
//! locks) vs pull (without locks), end-to-end.
//!
//! Expected shape: push-pull has the best algorithm time but the worst
//! end-to-end time (both directions must be built); push beats pull by
//! ~20% despite using locks, because only a small fraction of vertices
//! is active per iteration.

use egraph_bench::{fmt_ratio, fmt_secs, graphs, ExperimentCtx, ResultTable};
use egraph_core::algo::bfs;
use egraph_core::layout::EdgeDirection;
use egraph_core::preprocess::{CsrBuilder, Strategy};

fn main() {
    let ctx = ExperimentCtx::from_args();
    ctx.banner(
        "exp_fig7",
        "Figure 7 (BFS push-pull vs push(locks) vs pull(no lock))",
    );

    let graph = graphs::rmat(ctx.scale);
    let root = graphs::best_root(&graph);

    let reps = egraph_bench::reps();
    let (adj_both, pre_both) = egraph_bench::min_time(reps, || {
        let (a, s) = CsrBuilder::new(Strategy::RadixSort, EdgeDirection::Both).build_timed(&graph);
        (a, s.seconds)
    });
    let (adj_out, pre_out) = egraph_bench::min_time(reps, || {
        let (a, s) = CsrBuilder::new(Strategy::RadixSort, EdgeDirection::Out).build_timed(&graph);
        (a, s.seconds)
    });
    let (adj_in, pre_in) = egraph_bench::min_time(reps, || {
        let (a, s) = CsrBuilder::new(Strategy::RadixSort, EdgeDirection::In).build_timed(&graph);
        (a, s.seconds)
    });

    let (push_pull, _) = egraph_bench::min_time(reps, || {
        let r = bfs::push_pull(&adj_both, root);
        let s = r.algorithm_seconds();
        (r, s)
    });
    let (push_locked, _) = egraph_bench::min_time(reps, || {
        let r = bfs::push_locked(&adj_out, root);
        let s = r.algorithm_seconds();
        (r, s)
    });
    let (pull, _) = egraph_bench::min_time(reps, || {
        let r = bfs::pull(&adj_in, root);
        let s = r.algorithm_seconds();
        (r, s)
    });
    assert_eq!(push_pull.reachable_count(), push_locked.reachable_count());
    assert_eq!(push_pull.reachable_count(), pull.reachable_count());

    let mut table = ResultTable::new(
        "fig7_bfs_flow_variants",
        &["config", "preprocess(s)", "algorithm(s)", "total(s)"],
    );
    let rows = [
        ("adj. push-pull", pre_both, push_pull.algorithm_seconds()),
        (
            "adj. push (locks)",
            pre_out,
            push_locked.algorithm_seconds(),
        ),
        ("adj. pull (no lock)", pre_in, pull.algorithm_seconds()),
    ];
    for (name, pre, algo) in rows {
        table.add_row(vec![
            name.into(),
            fmt_secs(pre),
            fmt_secs(algo),
            fmt_secs(pre + algo),
        ]);
    }
    table.print();

    let total_pp = pre_both + push_pull.algorithm_seconds();
    let total_push = pre_out + push_locked.algorithm_seconds();
    println!();
    println!(
        "push-pull end-to-end vs push: {} (paper: ~1.5x worse)",
        fmt_ratio(total_pp / total_push.max(1e-9))
    );
    println!(
        "pull vs push algorithm time:  {} (paper: push ~20% better)",
        fmt_ratio(pull.algorithm_seconds() / push_locked.algorithm_seconds().max(1e-9))
    );
    ctx.save(&table);
}

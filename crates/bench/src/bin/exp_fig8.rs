//! Figure 8: PageRank synchronization strategies — push with locks vs
//! pull without locks, on adjacency lists and grids.
//!
//! Expected shape: removing locks wins. On adjacency lists, pull
//! (no locks) ~40% faster end-to-end than push (locks); on grids, the
//! no-lock (column/row ownership) version gains ~1.5× over the locked
//! one.

use egraph_bench::{fmt_ratio, fmt_secs, graphs, ExperimentCtx, ResultTable};
use egraph_core::algo::pagerank;
use egraph_core::layout::EdgeDirection;
use egraph_core::preprocess::{CsrBuilder, GridBuilder, Strategy};

fn main() {
    let ctx = ExperimentCtx::from_args();
    ctx.banner(
        "exp_fig8",
        "Figure 8 (PageRank: locks vs no locks, adj vs grid)",
    );

    let graph = graphs::rmat(ctx.scale);
    let degrees = graphs::out_degrees_u32(&graph);
    let side = graphs::grid_side(graph.num_vertices());
    let cfg = pagerank::PagerankConfig::default();

    let reps = egraph_bench::reps();
    let (adj_out, pre_out) = egraph_bench::min_time(reps, || {
        let (a, s) = CsrBuilder::new(Strategy::RadixSort, EdgeDirection::Out).build_timed(&graph);
        (a, s.seconds)
    });
    let (adj_in, pre_in) = egraph_bench::min_time(reps, || {
        let (a, s) = CsrBuilder::new(Strategy::RadixSort, EdgeDirection::In).build_timed(&graph);
        (a, s.seconds)
    });
    let (grid, pre_grid) = egraph_bench::min_time(reps, || {
        let (g, s) = GridBuilder::new(Strategy::RadixSort)
            .side(side)
            .build_timed(&graph);
        (g, s.seconds)
    });

    let (push_locks, _) = egraph_bench::min_time(reps, || {
        let r = pagerank::push(adj_out.out(), &degrees, cfg, pagerank::PushSync::Locks);
        let s = r.seconds;
        (r, s)
    });
    let (pull_nolock, _) = egraph_bench::min_time(reps, || {
        let r = pagerank::pull(adj_in.incoming(), &degrees, cfg);
        let s = r.seconds;
        (r, s)
    });
    let (grid_locks, _) = egraph_bench::min_time(reps, || {
        let r = pagerank::grid_push(&grid, &degrees, cfg, true);
        let s = r.seconds;
        (r, s)
    });
    let (grid_nolock, _) = egraph_bench::min_time(reps, || {
        let r = pagerank::grid_push(&grid, &degrees, cfg, false);
        let s = r.seconds;
        (r, s)
    });

    let mut table = ResultTable::new(
        "fig8_pagerank_sync",
        &["config", "preprocess(s)", "algorithm(s)", "total(s)"],
    );
    let rows = [
        ("adj. push (locks)", pre_out, push_locks.seconds),
        ("adj. pull (no lock)", pre_in, pull_nolock.seconds),
        ("grid (locks)", pre_grid, grid_locks.seconds),
        ("grid (no lock)", pre_grid, grid_nolock.seconds),
    ];
    for (name, pre, algo) in rows {
        table.add_row(vec![
            name.into(),
            fmt_secs(pre),
            fmt_secs(algo),
            fmt_secs(pre + algo),
        ]);
    }
    table.print();

    println!();
    println!(
        "adj: pull(no lock) end-to-end gain over push(locks): {} (paper: ~40%)",
        fmt_ratio((pre_out + push_locks.seconds) / (pre_in + pull_nolock.seconds).max(1e-9))
    );
    println!(
        "grid: no-lock end-to-end gain over locks:            {} (paper: ~1.5x)",
        fmt_ratio((pre_grid + grid_locks.seconds) / (pre_grid + grid_nolock.seconds).max(1e-9))
    );
    ctx.save(&table);
}

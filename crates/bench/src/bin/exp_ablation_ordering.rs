//! Ablation: how much of each layout's cache behaviour is the layout,
//! and how much is input friendliness?
//!
//! Real inputs carry two accidental kinds of locality: spatially
//! correlated **vertex ids** (DIMACS road vertices are numbered along
//! the geometry) and spatially correlated **edge order** (arcs grouped
//! by tail). This run measures one PageRank iteration's simulated LLC
//! miss ratio on the edge array and the grid for the natural input,
//! the edge-shuffled input, and the vertex-permuted input.
//!
//! Expected: the edge array's good numbers on road-like inputs
//! evaporate under either perturbation, while the grid — which
//! re-imposes locality structurally — barely moves. This is the
//! mechanism behind the paper's "no approach fits every graph" (§9).

use egraph_bench::{fmt_pct, graphs, llc, ExperimentCtx, ResultTable};
use egraph_core::algo::pagerank;
use egraph_core::exec::ExecCtx;
use egraph_core::preprocess::Strategy;
use egraph_core::types::{Edge, EdgeList};
use egraph_core::variant::{
    run_variant, Algo, Direction, Layout, PreparedGraph, RunParams, VariantId,
};

fn miss_ratios(graph: &EdgeList<Edge>) -> (f64, f64) {
    let cfg = pagerank::PagerankConfig {
        iterations: 1,
        ..Default::default()
    };
    let params = RunParams {
        pagerank: cfg,
        ..RunParams::default()
    };
    let side = {
        let cap = llc::scaled_machine_b(graph.num_vertices() * 12).capacity;
        let range = (cap / (2 * 12)).max(64);
        graph.num_vertices().div_ceil(range).clamp(8, 256)
    };
    let prepared = PreparedGraph::new(graph)
        .strategy(Strategy::RadixSort)
        .side(side);

    let edge_id = VariantId::new(Algo::Pagerank, Layout::EdgeList, Direction::Push);
    let probe = llc::probe_for(graph.num_vertices(), 12);
    run_variant(
        &edge_id,
        &ExecCtx::new(None).probe(&probe),
        &prepared,
        &params,
    )
    .expect("variant is in the support matrix");
    let edge_miss = probe.report().overall_miss_ratio();

    let grid_id = VariantId::new(Algo::Pagerank, Layout::Grid, Direction::Push);
    let probe = llc::probe_for(graph.num_vertices(), 12);
    run_variant(
        &grid_id,
        &ExecCtx::new(None).probe(&probe),
        &prepared,
        &params,
    )
    .expect("variant is in the support matrix");
    (edge_miss, probe.report().overall_miss_ratio())
}

fn main() {
    let ctx = ExperimentCtx::from_args();
    ctx.banner(
        "exp_ablation_ordering",
        "ablation: input friendliness vs layout (edge order & vertex ids)",
    );

    let natural = graphs::road_like_ordered(ctx.scale);
    let variants: Vec<(&str, EdgeList<Edge>)> = vec![
        ("natural order", natural.clone()),
        (
            "edges shuffled",
            egraph_graphgen::shuffle_edges(&natural, 0xBEEF),
        ),
        (
            "vertices permuted",
            egraph_graphgen::permute_vertices(&natural, 0xBEEF),
        ),
    ];

    let mut table = ResultTable::new(
        "ablation_ordering",
        &["road-like input", "edge-array miss", "grid miss"],
    );
    for (name, graph) in &variants {
        let (edge_miss, grid_miss) = miss_ratios(graph);
        table.add_row(vec![(*name).into(), fmt_pct(edge_miss), fmt_pct(grid_miss)]);
    }
    table.print();
    println!();
    println!("expected shape: the edge array's near-zero miss ratio on the natural");
    println!("input is *inherited from the input*, not earned by the layout — either");
    println!("perturbation destroys it. The grid re-creates locality structurally and");
    println!("stays low throughout.");
    ctx.save(&table);
}

//! Figure 2: pre-processing time of the three construction techniques
//! across RMAT sizes — all scale linearly, radix sort is always
//! fastest (3.3× vs count sort and 3.8× vs dynamic on RMAT26).

use egraph_bench::{fmt_ratio, fmt_secs, graphs, ExperimentCtx, ResultTable};
use egraph_core::layout::EdgeDirection;
use egraph_core::preprocess::{CsrBuilder, Strategy};

fn main() {
    let ctx = ExperimentCtx::from_args();
    ctx.banner(
        "exp_fig2",
        "Figure 2 (pre-processing scaling across RMAT sizes)",
    );

    let scales: Vec<u32> = (ctx.scale.saturating_sub(4)..=ctx.scale).collect();
    let mut table = ResultTable::new(
        "fig2_preprocessing_scaling",
        &["graph", "edges", "radix(s)", "dynamic(s)", "count(s)"],
    );

    let mut last: Option<[f64; 3]> = None;
    let mut ratios_ok = true;
    for &scale in &scales {
        let graph = graphs::rmat(scale);
        let reps = egraph_bench::reps();
        let mut secs = [0.0f64; 3];
        for (i, strategy) in [Strategy::RadixSort, Strategy::Dynamic, Strategy::CountSort]
            .into_iter()
            .enumerate()
        {
            let ((), best) = egraph_bench::min_time(reps, || {
                let (_, stats) = CsrBuilder::new(strategy, EdgeDirection::Out).build_timed(&graph);
                ((), stats.seconds)
            });
            secs[i] = best;
        }
        table.add_row(vec![
            format!("RMAT{scale}"),
            graph.num_edges().to_string(),
            fmt_secs(secs[0]),
            fmt_secs(secs[1]),
            fmt_secs(secs[2]),
        ]);
        if let Some(prev) = last {
            // Doubling the graph should roughly double each time.
            for i in 0..3 {
                let growth = secs[i] / prev[i].max(1e-9);
                if !(1.2..=4.0).contains(&growth) {
                    ratios_ok = false;
                }
            }
        }
        last = Some(secs);
    }
    table.print();

    if let Some(secs) = last {
        println!();
        println!(
            "radix vs count at RMAT{}:   {} (paper: 3.3x)",
            ctx.scale,
            fmt_ratio(secs[2] / secs[0].max(1e-9))
        );
        ctx.headline("exp_fig2", "radix_vs_count", secs[2] / secs[0].max(1e-9));
        println!(
            "radix vs dynamic at RMAT{}: {} (paper: 3.8x)",
            ctx.scale,
            fmt_ratio(secs[1] / secs[0].max(1e-9))
        );
        println!(
            "linear scaling across doublings: {}",
            if ratios_ok {
                "yes (~2x per step)"
            } else {
                "noisy at this scale"
            }
        );
    }
    ctx.save(&table);
}

//! The experiment harness: shared plumbing for the per-figure/table
//! binaries in `src/bin/` (see `DESIGN.md` §5 for the experiment
//! index).
//!
//! Every binary follows the same shape: build the scaled dataset, run
//! each configuration the paper compares, print the same rows/series
//! the paper reports (with the paper's own numbers alongside for shape
//! comparison), and drop a CSV under `bench_results/`.
//!
//! # Scaling
//!
//! The paper's machines had 32 cores and 256 GB of RAM; experiments
//! default to RMAT-16-sized inputs and accept `--scale N` (or the
//! `EGRAPH_SCALE` environment variable) to grow them. Relative
//! comparisons — who wins, and by roughly what factor — are
//! scale-stable (the paper's own Fig. 2 shows linear scaling), which is
//! what `EXPERIMENTS.md` records.

pub mod graphs;
pub mod llc;
pub mod table;
pub mod trace;

use std::path::PathBuf;

use egraph_core::telemetry::{RunTrace, TraceFormat};

pub use table::ResultTable;

/// Shared context of one experiment run.
#[derive(Debug, Clone)]
pub struct ExperimentCtx {
    /// RMAT scale used for synthetic datasets (vertices = 2^scale).
    pub scale: u32,
    /// Where CSV outputs are written.
    pub out_dir: PathBuf,
    /// Where a machine-readable [`RunTrace`] is written, if requested
    /// with `--trace-out FILE` (same document the CLI's `run
    /// --trace-out` emits; a `.csv` extension selects the CSV form).
    pub trace_out: Option<PathBuf>,
    /// Live `/metrics` endpoint, if requested with `--metrics-addr
    /// HOST:PORT`. Held so the accept thread survives for the whole
    /// experiment; the last clone dropping shuts it down.
    pub metrics: Option<std::sync::Arc<egraph_metrics::MetricsServer>>,
    /// PR (or commit-sequence) number stamped into trajectory records,
    /// from `--pr N` or the `EGRAPH_PR` environment variable. `None`
    /// renders as JSON `null` — local runs still append, just unpinned.
    pub pr: Option<u64>,
}

impl ExperimentCtx {
    /// Builds a context from `--scale N` / `--out DIR` /
    /// `--trace-out FILE` / `--metrics-addr HOST:PORT` command-line
    /// arguments and the `EGRAPH_SCALE` environment variable.
    pub fn from_args() -> Self {
        let mut scale: u32 = std::env::var("EGRAPH_SCALE")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(16);
        let mut out_dir = PathBuf::from("bench_results");
        let mut trace_out = None;
        let mut metrics_addr: Option<String> = None;
        let mut pr: Option<u64> = std::env::var("EGRAPH_PR").ok().and_then(|s| s.parse().ok());
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" if i + 1 < args.len() => {
                    scale = args[i + 1].parse().unwrap_or(scale);
                    i += 2;
                }
                "--out" if i + 1 < args.len() => {
                    out_dir = PathBuf::from(&args[i + 1]);
                    i += 2;
                }
                "--trace-out" if i + 1 < args.len() => {
                    trace_out = Some(PathBuf::from(&args[i + 1]));
                    i += 2;
                }
                "--metrics-addr" if i + 1 < args.len() => {
                    metrics_addr = Some(args[i + 1].clone());
                    i += 2;
                }
                "--pr" if i + 1 < args.len() => {
                    pr = args[i + 1].parse().ok();
                    i += 2;
                }
                other => {
                    eprintln!("ignoring unknown argument: {other}");
                    i += 1;
                }
            }
        }
        let metrics = metrics_addr.map(|addr| {
            egraph_metrics::register_pool_metrics();
            egraph_metrics::register_alloc_metrics();
            egraph_storage::counters::register_metrics();
            egraph_parallel::telemetry::enable();
            egraph_storage::counters::enable();
            // A typed BindError names the offending address; exit
            // cleanly instead of unwinding a panic through main.
            let server = egraph_metrics::serve(addr.as_str()).unwrap_or_else(|e| {
                eprintln!("error: {e}");
                std::process::exit(2);
            });
            println!("serving metrics on http://{}/metrics", server.addr());
            std::sync::Arc::new(server)
        });
        Self {
            scale,
            out_dir,
            trace_out,
            metrics,
            pr,
        }
    }

    /// Whether this run should collect telemetry for [`Self::save_trace`].
    pub fn tracing(&self) -> bool {
        self.trace_out.is_some()
    }

    /// Writes a run trace to the `--trace-out` path (no-op when the
    /// flag was not given). The format follows the file extension:
    /// `.csv` selects CSV, anything else JSON. I/O failures are
    /// reported, not fatal.
    pub fn save_trace(&self, trace: &RunTrace) {
        let Some(path) = &self.trace_out else { return };
        let format = match path.extension().and_then(|e| e.to_str()) {
            Some("csv") => TraceFormat::Csv,
            _ => TraceFormat::Json,
        };
        match std::fs::write(path, trace.render(format)) {
            Ok(()) => println!("\nwrote trace to {}", path.display()),
            Err(e) => eprintln!("\ncould not write trace: {e}"),
        }
    }

    /// Prints the experiment banner.
    pub fn banner(&self, experiment: &str, paper_artifact: &str) {
        println!("=== {experiment} — reproducing {paper_artifact} ===");
        println!(
            "scale: RMAT-{} ({} vertices); threads: {}",
            self.scale,
            1u64 << self.scale,
            egraph_parallel::current_num_threads()
        );
        println!();
    }

    /// Saves a table as CSV under the output directory; prints the
    /// path. I/O failures are reported, not fatal (the console output
    /// already has the data).
    pub fn save(&self, table: &ResultTable) {
        match table.save_csv(&self.out_dir) {
            Ok(path) => println!("\nsaved: {}", path.display()),
            Err(e) => eprintln!("\ncould not save CSV: {e}"),
        }
    }

    /// Appends one headline metric of this experiment to
    /// `<out_dir>/trajectory.ndjson` — the cross-PR performance ledger
    /// `scripts/bench_trajectory.sh` builds. One self-contained JSON
    /// object per line, so successive PRs (each appending its own
    /// stamped lines) accumulate into a plottable time series without
    /// any of them parsing what came before. I/O failures are reported,
    /// not fatal.
    pub fn headline(&self, experiment: &str, metric: &str, value: f64) {
        let pr = match self.pr {
            Some(n) => n.to_string(),
            None => "null".to_string(),
        };
        let line = format!(
            r#"{{"pr":{pr},"experiment":"{experiment}","metric":"{metric}","value":{value},"scale":{}}}"#,
            self.scale
        );
        let write = || -> std::io::Result<()> {
            std::fs::create_dir_all(&self.out_dir)?;
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(self.out_dir.join("trajectory.ndjson"))?;
            writeln!(f, "{line}")
        };
        if let Err(e) = write() {
            eprintln!("could not append trajectory record: {e}");
        }
    }
}

/// Repetitions used by timing-sensitive experiments (override with
/// `EGRAPH_REPS`); the minimum of N runs filters the scheduling noise
/// of shared hosts.
pub fn reps() -> usize {
    std::env::var("EGRAPH_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(3)
}

/// Runs `f` (which returns a value and its wall-clock seconds) `reps`
/// times and returns the fastest run's value and time.
pub fn min_time<T>(reps: usize, mut f: impl FnMut() -> (T, f64)) -> (T, f64) {
    let mut best: Option<(T, f64)> = None;
    for _ in 0..reps.max(1) {
        let (value, secs) = f();
        let better = best.as_ref().map(|&(_, b)| secs < b).unwrap_or(true);
        if better {
            best = Some((value, secs));
        }
    }
    best.expect("reps >= 1")
}

/// Formats seconds with sensible precision for table cells.
pub fn fmt_secs(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.0}")
    } else if s >= 1.0 {
        format!("{s:.2}")
    } else {
        format!("{s:.4}")
    }
}

/// Formats a ratio like "3.3x".
pub fn fmt_ratio(r: f64) -> String {
    format!("{r:.1}x")
}

/// Formats a fraction as a percentage.
pub fn fmt_pct(f: f64) -> String {
    format!("{:.0}%", f * 100.0)
}

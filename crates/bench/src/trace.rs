//! Memory-access replay of the three adjacency-list construction
//! techniques, used to reproduce Table 2's "LLC misses" column.
//!
//! Each function drives the LLC simulator with the exact address
//! stream the corresponding builder issues — sequential input scans,
//! per-vertex scattered appends (dynamic), random counter increments
//! and offset scatters (count sort), or sequential bucket writes
//! (radix sort). The paper's explanation (§3.3) is that radix sort
//! wins *because* of this difference, so the replay makes the
//! explanation measurable.

use egraph_cachesim::probe::regions;
use egraph_cachesim::{AccessKind, MemProbe};
use egraph_core::types::EdgeRecord;

/// Replays the dynamic per-vertex building pass: a sequential input
/// scan plus one append (and occasional reallocation copy) per edge
/// into per-vertex arrays scattered over the heap.
pub fn trace_dynamic<E: EdgeRecord, P: MemProbe>(edges: &[E], nv: usize, probe: &P) {
    let esize = std::mem::size_of::<E>() as u64;
    let mut lens = vec![0u32; nv];
    let heap_base = |v: u32| -> u64 {
        // Per-vertex arrays live at hashed heap locations.
        regions::DST_META + (v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) % (1 << 36)
    };
    for (i, e) in edges.iter().enumerate() {
        probe.touch(AccessKind::Edge, regions::EDGES + i as u64 * esize);
        let v = e.src();
        let len = lens[v as usize];
        // Read the vertex's length/capacity header, then append.
        probe.touch(AccessKind::SrcMeta, regions::SRC_META + v as u64 * 16);
        probe.touch(AccessKind::DstMeta, heap_base(v) + len as u64 * esize);
        // Reallocation: growing past a power of two copies the array
        // to a fresh location ("32 million reallocations for an
        // RMAT26 graph").
        if len > 0 && len.is_power_of_two() {
            let new_base = heap_base(v) ^ ((len as u64) << 20);
            for k in 0..len as u64 {
                probe.touch(AccessKind::DstMeta, heap_base(v) + k * esize);
                probe.touch(AccessKind::DstMeta, new_base + k * esize);
            }
        }
        lens[v as usize] = len + 1;
    }
}

/// Replays count sort: a counting pass with random per-vertex counter
/// increments, a sequential prefix pass, and a scatter pass whose
/// writes "jump between distant positions in the array".
pub fn trace_count_sort<E: EdgeRecord, P: MemProbe>(edges: &[E], nv: usize, probe: &P) {
    let esize = std::mem::size_of::<E>() as u64;
    // Pass 1: count degrees.
    let mut counts = vec![0u64; nv + 1];
    for (i, e) in edges.iter().enumerate() {
        probe.touch(AccessKind::Edge, regions::EDGES + i as u64 * esize);
        probe.touch(AccessKind::SrcMeta, regions::INDEX + e.src() as u64 * 8);
        counts[e.src() as usize] += 1;
    }
    // Prefix sum: sequential scan of the counter array.
    let mut run = 0u64;
    for (v, c) in counts.iter_mut().enumerate() {
        probe.touch(AccessKind::SrcMeta, regions::INDEX + v as u64 * 8);
        let cur = *c;
        *c = run;
        run += cur;
    }
    // Pass 2: scatter each edge to its final offset.
    for (i, e) in edges.iter().enumerate() {
        probe.touch(AccessKind::Edge, regions::EDGES + i as u64 * esize);
        let v = e.src() as usize;
        probe.touch(AccessKind::SrcMeta, regions::INDEX + v as u64 * 8);
        let pos = counts[v];
        counts[v] += 1;
        probe.touch(AccessKind::DstMeta, regions::DST_META + pos * esize);
    }
}

const RADIX_BITS: u32 = 8;
const RADIX_SEQ_THRESHOLD: usize = 4 * 1024;

/// Replays the recursive MSD radix sort: every level reads its range
/// sequentially and writes 256 *sequential* bucket streams — the
/// locality that makes radix the fastest builder (Table 2).
pub fn trace_radix_sort<E: EdgeRecord, P: MemProbe>(edges: &[E], nv: usize, probe: &P) {
    let key_bits = egraph_sort::key_bits(nv);
    let digits = key_bits.div_ceil(RADIX_BITS);
    let top_shift = (digits - 1) * RADIX_BITS;
    let keys: Vec<u32> = edges.iter().map(|e| e.src()).collect();
    let esize = std::mem::size_of::<E>() as u64;
    trace_radix_level(&keys, 0, top_shift, false, esize, probe);
}

fn trace_radix_level<P: MemProbe>(
    keys: &[u32],
    start: u64,
    shift: u32,
    in_scratch: bool,
    esize: u64,
    probe: &P,
) {
    let (src_region, dst_region) = if in_scratch {
        (regions::DST_META, regions::EDGES)
    } else {
        (regions::EDGES, regions::DST_META)
    };
    if keys.len() <= RADIX_SEQ_THRESHOLD {
        // Small bucket: comparison sort — sequential reads and writes
        // of a cache-resident range.
        for k in 0..keys.len() as u64 {
            probe.touch(AccessKind::Edge, src_region + (start + k) * esize);
        }
        return;
    }
    // Histogram pass: sequential read.
    let mut counts = [0u64; 256];
    for (k, key) in keys.iter().enumerate() {
        probe.touch(AccessKind::Edge, src_region + (start + k as u64) * esize);
        counts[((key >> shift) & 0xFF) as usize] += 1;
    }
    // Scatter pass: sequential read, 256 sequential write cursors.
    let mut offsets = [0u64; 256];
    let mut run = 0u64;
    for b in 0..256 {
        offsets[b] = run;
        run += counts[b];
    }
    let mut cursors = offsets;
    for (k, key) in keys.iter().enumerate() {
        probe.touch(AccessKind::Edge, src_region + (start + k as u64) * esize);
        let b = ((key >> shift) & 0xFF) as usize;
        probe.touch(
            AccessKind::DstMeta,
            dst_region + (start + cursors[b]) * esize,
        );
        cursors[b] += 1;
    }
    if shift == 0 {
        return;
    }
    // Recurse per bucket, with the buckets' actual contents.
    let mut grouped: Vec<Vec<u32>> = vec![Vec::new(); 256];
    for key in keys {
        grouped[((key >> shift) & 0xFF) as usize].push(*key);
    }
    for b in 0..256 {
        if !grouped[b].is_empty() {
            trace_radix_level(
                &grouped[b],
                start + offsets[b],
                shift - RADIX_BITS,
                !in_scratch,
                esize,
                probe,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::llc;
    use egraph_core::types::Edge;

    fn skewed_edges(nv: usize, ne: usize) -> Vec<Edge> {
        let mut state = 11u64;
        (0..ne)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                // Square the uniform sample for mild skew.
                let r = ((state >> 33) as f64 / (1u64 << 31) as f64).powi(2);
                let src = (r * nv as f64) as u32 % nv as u32;
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let dst = ((state >> 33) % nv as u64) as u32;
                Edge::new(src, dst)
            })
            .collect()
    }

    #[test]
    fn radix_has_lowest_miss_ratio() {
        // The Table 2 ordering: radix << count, radix << dynamic.
        let nv = 1 << 14;
        let edges = skewed_edges(nv, 1 << 18);
        let ratios: Vec<f64> = [
            trace_dynamic::<Edge, egraph_cachesim::HierarchyProbe>
                as fn(&[Edge], usize, &egraph_cachesim::HierarchyProbe),
            trace_count_sort::<Edge, egraph_cachesim::HierarchyProbe>,
            trace_radix_sort::<Edge, egraph_cachesim::HierarchyProbe>,
        ]
        .iter()
        .map(|f| {
            let probe = llc::probe_for(nv, 8);
            f(&edges, nv, &probe);
            probe.report().overall_miss_ratio()
        })
        .collect();
        let (dynamic, count, radix) = (ratios[0], ratios[1], ratios[2]);
        assert!(radix < 0.6 * dynamic, "radix {radix} vs dynamic {dynamic}");
        assert!(radix < 0.6 * count, "radix {radix} vs count {count}");
    }
}

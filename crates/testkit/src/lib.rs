//! Differential conformance oracle + deterministic fault injection.
//!
//! The paper is a technique-isolation study: its claims only hold if
//! every {layout × iteration model × direction × lock strategy}
//! combination computes the *same answer*. This crate enforces that
//! systematically:
//!
//! * [`corpus`] — a shared set of generated graphs (RMAT, small-world,
//!   road-shaped) plus adversarial shapes (empty, single-vertex,
//!   self-loops, duplicate edges, star, chain, disconnected);
//! * [`matrix`] — enumerates every algorithm variant over every graph
//!   at thread counts {1, 2, 4, 8} and checks each result against two
//!   oracles: a serial analytic reference (`bfs::reference`, union-find
//!   WCC, Dijkstra, power-iteration PageRank, serial SpMV) and the same
//!   variant's own single-threaded run (bit-identical for
//!   deterministic variants, bounded relative error for variants whose
//!   float accumulation order legitimately depends on the schedule).
//!
//! Fault injection lives next to the code it stresses —
//! [`egraph_parallel::fault`] (steal storms, delayed workers, worker
//!   panics) and [`egraph_storage::fault`] (short reads, truncation,
//!   mid-stream I/O errors) — and this crate's integration tests drive
//! both, asserting typed errors and clean panic propagation: never a
//! hang, never a silently wrong result.
//!
//! Every random choice derives from one seed, overridable with the
//! `EGRAPH_TEST_SEED` environment variable; failures log the seed so
//! any CI failure reproduces locally.

pub mod corpus;
pub mod matrix;
pub mod update;

pub use corpus::{
    exhaustive_corpus, quick_corpus, ratings_graph, test_seed, weighted, NamedGraph, DEFAULT_SEED,
};
pub use matrix::{run_matrix, MatrixConfig, MatrixReport, Mismatch};
pub use update::{run_update_matrix, UpdateConfig, UpdateReport};

/// Thread counts exercised by the quick tier (inside `cargo test -q`).
pub const QUICK_THREADS: &[usize] = &[1, 4, 8];

/// Thread counts exercised by the exhaustive tier.
pub const EXHAUSTIVE_THREADS: &[usize] = &[1, 2, 4, 8];

//! The shared graph corpus: realistic generated shapes plus the
//! adversarial edge cases every technique must survive.

use egraph_core::types::{Edge, EdgeList, EdgeRecord, WEdge};

/// Seed used when `EGRAPH_TEST_SEED` is not set.
pub const DEFAULT_SEED: u64 = 0xE662_0017;

/// The test seed: `EGRAPH_TEST_SEED` (decimal or `0x`-prefixed hex) if
/// set and valid, otherwise [`DEFAULT_SEED`]. Harness failure messages
/// log this value so any CI failure reproduces locally.
pub fn test_seed() -> u64 {
    parse_seed(std::env::var("EGRAPH_TEST_SEED").ok().as_deref())
}

fn parse_seed(raw: Option<&str>) -> u64 {
    match raw {
        Some(raw) => {
            let raw = raw.trim();
            let parsed = match raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
                Some(hex) => u64::from_str_radix(hex, 16),
                None => raw.parse::<u64>(),
            };
            parsed.unwrap_or(DEFAULT_SEED)
        }
        None => DEFAULT_SEED,
    }
}

/// A corpus entry: a graph plus the name failure reports refer to it by.
#[derive(Debug, Clone)]
pub struct NamedGraph {
    /// Stable name, e.g. `"rmat_s6"` or `"adversarial/self_loops"`.
    pub name: String,
    /// The (unweighted, directed) edge list.
    pub graph: EdgeList<Edge>,
}

impl NamedGraph {
    fn new(name: &str, graph: EdgeList<Edge>) -> Self {
        Self {
            name: name.to_string(),
            graph,
        }
    }
}

fn edge_list(nv: usize, edges: Vec<Edge>) -> EdgeList<Edge> {
    EdgeList::new(nv, edges).expect("corpus edges must be in bounds")
}

/// The adversarial shapes: degenerate graphs that historically break
/// boundary arithmetic long before performance matters.
fn adversarial() -> Vec<NamedGraph> {
    let mut graphs = Vec::new();
    graphs.push(NamedGraph::new(
        "adversarial/empty",
        edge_list(0, Vec::new()),
    ));
    graphs.push(NamedGraph::new(
        "adversarial/single_vertex",
        edge_list(1, Vec::new()),
    ));
    graphs.push(NamedGraph::new(
        "adversarial/single_self_loop",
        edge_list(1, vec![Edge::new(0, 0)]),
    ));
    // Self loops sprinkled into a small cycle.
    let mut loops = Vec::new();
    for v in 0..8u32 {
        loops.push(Edge::new(v, (v + 1) % 8));
        if v % 2 == 0 {
            loops.push(Edge::new(v, v));
        }
    }
    graphs.push(NamedGraph::new(
        "adversarial/self_loops",
        edge_list(8, loops),
    ));
    // Every edge duplicated (and one triplicated).
    let mut dups = Vec::new();
    for v in 0..6u32 {
        let e = Edge::new(v, (v + 2) % 6);
        dups.push(e);
        dups.push(e);
    }
    dups.push(Edge::new(0, 2));
    graphs.push(NamedGraph::new(
        "adversarial/duplicate_edges",
        edge_list(6, dups),
    ));
    // Star: hub 0 points at every spoke; two spokes point back.
    let mut star = Vec::new();
    for v in 1..33u32 {
        star.push(Edge::new(0, v));
    }
    star.push(Edge::new(7, 0));
    star.push(Edge::new(15, 0));
    graphs.push(NamedGraph::new("adversarial/star", edge_list(33, star)));
    // Chain: a long path exercises many BFS/WCC iterations.
    let chain: Vec<Edge> = (0..40u32).map(|v| Edge::new(v, v + 1)).collect();
    graphs.push(NamedGraph::new("adversarial/chain", edge_list(41, chain)));
    // Disconnected: two separate cycles plus isolated vertices.
    let mut disc = Vec::new();
    for v in 0..5u32 {
        disc.push(Edge::new(v, (v + 1) % 5));
    }
    for v in 0..7u32 {
        disc.push(Edge::new(8 + v, 8 + (v + 1) % 7));
    }
    graphs.push(NamedGraph::new(
        "adversarial/disconnected",
        edge_list(20, disc),
    ));
    graphs
}

/// The quick corpus: all adversarial shapes plus small generated
/// graphs. Small enough for the full matrix to run inside
/// `cargo test -q`.
pub fn quick_corpus(seed: u64) -> Vec<NamedGraph> {
    let mut graphs = adversarial();
    graphs.push(NamedGraph::new(
        "rmat_s6",
        egraph_graphgen::rmat(6, 8, seed ^ 0x1),
    ));
    graphs.push(NamedGraph::new(
        "small_world_128",
        egraph_graphgen::small_world(128, 4, 0.1, seed ^ 0x2),
    ));
    graphs.push(NamedGraph::new(
        "road_8x8",
        egraph_graphgen::road_like(8, 8),
    ));
    graphs
}

/// The exhaustive corpus: the quick corpus plus larger instances of
/// each realistic family and a shuffled/permuted variant (same graph,
/// different edge order and vertex ids — results must not care).
pub fn exhaustive_corpus(seed: u64) -> Vec<NamedGraph> {
    let mut graphs = quick_corpus(seed);
    graphs.push(NamedGraph::new(
        "rmat_s8",
        egraph_graphgen::rmat(8, 8, seed ^ 0x10),
    ));
    graphs.push(NamedGraph::new(
        "twitter_like_s8",
        egraph_graphgen::twitter_like(8, seed ^ 0x11),
    ));
    graphs.push(NamedGraph::new(
        "small_world_512",
        egraph_graphgen::small_world(512, 6, 0.05, seed ^ 0x12),
    ));
    graphs.push(NamedGraph::new(
        "road_24x24",
        egraph_graphgen::road_like(24, 24),
    ));
    graphs.push(NamedGraph::new(
        "uniform_400",
        egraph_graphgen::uniform(400, 2400, seed ^ 0x13),
    ));
    let base = egraph_graphgen::rmat(7, 8, seed ^ 0x14);
    let shuffled = egraph_graphgen::shuffle_edges(&base, seed ^ 0x15);
    graphs.push(NamedGraph::new(
        "rmat_s7_shuffled",
        egraph_graphgen::permute_vertices(&shuffled, seed ^ 0x16),
    ));
    graphs
}

/// Attaches deterministic positive weights in `(0, 1]` to a graph —
/// the weighted view used by SSSP and SpMV. The weight of an edge
/// depends only on its endpoints, so duplicate edges carry equal
/// weights and any edge reordering yields the same weighted graph.
pub fn weighted(graph: &EdgeList<Edge>) -> EdgeList<WEdge> {
    graph.map_records(|e| WEdge::new(e.src(), e.dst(), edge_weight(e.src(), e.dst())))
}

/// A deterministic pseudo-random weight in `(0, 1]` for edge `(s, d)`.
/// Public so the update oracle can weight *inserted* edges the same way
/// [`weighted`] weights base edges — merging weighted deltas then must
/// equal weighting the merged graph.
pub fn edge_weight(s: u32, d: u32) -> f32 {
    let h = mix(((s as u64) << 32) | d as u64);
    ((h >> 40) as f32 + 1.0) / (1u64 << 24) as f32
}

/// A deterministic input vector for SpMV, entries in `[0, 1)`.
pub fn spmv_input(nv: usize) -> Vec<f32> {
    (0..nv)
        .map(|i| (mix(i as u64 ^ 0xABCD) >> 40) as f32 / (1u64 << 24) as f32)
        .collect()
}

/// A small bipartite ratings graph for ALS: `(graph, num_users)`.
pub fn ratings_graph(seed: u64) -> (EdgeList<WEdge>, usize) {
    let num_users = 24;
    (
        egraph_graphgen::netflix_like(num_users, 12, 6, seed ^ 0x20),
        num_users,
    )
}

/// SplitMix64 finalizer.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_contains_required_shapes() {
        let names: Vec<String> = quick_corpus(1).into_iter().map(|g| g.name).collect();
        for required in [
            "adversarial/empty",
            "adversarial/single_vertex",
            "adversarial/self_loops",
            "adversarial/duplicate_edges",
            "adversarial/star",
            "adversarial/chain",
            "adversarial/disconnected",
            "rmat_s6",
            "small_world_128",
            "road_8x8",
        ] {
            assert!(names.iter().any(|n| n == required), "missing {required}");
        }
    }

    #[test]
    fn weights_are_positive_and_reorder_invariant() {
        let g = egraph_graphgen::rmat(5, 8, 7);
        let w = weighted(&g);
        assert!(w
            .edges()
            .iter()
            .all(|e| e.weight() > 0.0 && e.weight() <= 1.0));
        let shuffled = egraph_graphgen::shuffle_edges(&g, 99);
        let ws = weighted(&shuffled);
        // Same endpoint pair → same weight, regardless of edge order.
        let key = |e: &WEdge| (e.src(), e.dst(), e.weight().to_bits());
        let mut a: Vec<_> = w.edges().iter().map(key).collect();
        let mut b: Vec<_> = ws.edges().iter().map(key).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn seed_env_override_parses_hex_and_decimal() {
        // Avoid mutating the process env (tests run concurrently);
        // exercise the parser with explicit inputs instead.
        assert_eq!(parse_seed(None), DEFAULT_SEED);
        assert_eq!(parse_seed(Some("77")), 77);
        assert_eq!(parse_seed(Some(" 0xDEADBEEF ")), 0xDEAD_BEEF);
        assert_eq!(parse_seed(Some("0X10")), 16);
        assert_eq!(parse_seed(Some("not a number")), DEFAULT_SEED);
        assert_eq!(parse_seed(Some("")), DEFAULT_SEED);
    }
}

//! The update-aware conformance oracle: every incremental result must
//! equal a from-scratch recompute on the merged graph.
//!
//! The mutable delta layout (DESIGN.md §16) introduces a second axis of
//! correctness the static matrix cannot see: results now depend on a
//! *history* of applied batches, not just on one frozen graph. This
//! module drives that history deterministically — seeded random batches
//! of inserts, deletes, duplicates and self-loops against every corpus
//! graph — and after **every** applied batch checks three things:
//!
//! 1. the incremental engines ([`pagerank::IncrementalPagerank`],
//!    [`wcc::IncrementalWcc`], [`bfs::IncrementalBfs`]) agree with the
//!    serial reference on the merged graph, whichever path (repair or
//!    fallback) they took;
//! 2. every `Layout::Delta` variant — all directions, both sync modes,
//!    at every configured thread count — agrees with the same algorithm
//!    run from scratch on the merged graph (integer results exactly,
//!    float results within the documented reorder tolerance);
//! 3. after compaction the published snapshot is the merged graph at a
//!    bumped epoch, and queries against it still agree.
//!
//! Scheduler fault injection (delayed workers + steal storms, seeded)
//! runs underneath the variant sweep when enabled: update correctness
//! must not depend on a benign schedule. The fault plan is
//! process-global, so callers enabling it must serialize (see
//! `tests/updates.rs`).

use egraph_core::algo::{bfs, pagerank, wcc};
use egraph_core::exec::ExecCtx;
use egraph_core::layout::{
    DeltaBatch, DeltaGraph, DeltaList, DeltaLog, DeltaOp, EdgeDirection, NeighborAccess,
    VertexLayout,
};
use egraph_core::preprocess::{CsrBuilder, Strategy};
use egraph_core::types::{Edge, EdgeList, EdgeRecord, WEdge};
use egraph_core::variant::{
    run_variant, supported_variants, sync_matters, Layout, PreparedGraph, RunParams, SyncMode,
    VariantId, VariantOutput,
};
use egraph_parallel::fault::{FaultGuard, FaultPlan};
use egraph_parallel::{with_pool, ThreadPool};

use crate::corpus::{edge_weight, spmv_input, weighted, NamedGraph};
use crate::matrix::{Mismatch, REORDER_TOL};

/// Update-oracle run parameters.
#[derive(Debug, Clone)]
pub struct UpdateConfig {
    /// Thread counts the variant sweep runs at.
    pub thread_counts: Vec<usize>,
    /// Seed deriving every batch (echoed in failure messages).
    pub seed: u64,
    /// Applied batches per graph.
    pub batches: usize,
    /// Ops per batch.
    pub ops_per_batch: usize,
    /// Install the seeded scheduler fault plan (delayed workers +
    /// steal storms) around the variant sweep. Process-global: callers
    /// must serialize against other fault-installing tests.
    pub faults: bool,
}

impl UpdateConfig {
    /// The quick tier: small batches, [`crate::QUICK_THREADS`].
    pub fn quick(seed: u64) -> Self {
        Self {
            thread_counts: crate::QUICK_THREADS.to_vec(),
            seed,
            batches: 3,
            ops_per_batch: 6,
            faults: false,
        }
    }

    /// The exhaustive tier: more and bigger batches (including ones
    /// past the fallback threshold), [`crate::EXHAUSTIVE_THREADS`],
    /// faults on.
    pub fn exhaustive(seed: u64) -> Self {
        Self {
            thread_counts: crate::EXHAUSTIVE_THREADS.to_vec(),
            seed,
            batches: 5,
            ops_per_batch: 12,
            faults: true,
        }
    }
}

/// The outcome of an update-oracle run.
#[derive(Debug)]
pub struct UpdateReport {
    /// Comparisons executed.
    pub checks_run: usize,
    /// Every failed comparison.
    pub mismatches: Vec<Mismatch>,
    /// The seed, echoed for reproduction.
    pub seed: u64,
}

impl UpdateReport {
    /// Panics with a reproducible report if any check failed.
    pub fn assert_clean(&self) {
        assert!(self.checks_run > 0, "update oracle ran no checks");
        if self.mismatches.is_empty() {
            return;
        }
        let mut msg = format!(
            "update oracle failed ({} of {} checks; \
             reproduce with EGRAPH_TEST_SEED={:#x}):\n",
            self.mismatches.len(),
            self.checks_run,
            self.seed
        );
        for m in &self.mismatches {
            msg.push_str(&format!("  {m}\n"));
        }
        panic!("{msg}");
    }
}

/// SplitMix64: one independent stream per (graph, purpose).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut x = self.0;
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// One seeded batch: inserts (fresh, duplicate, self-loop) and deletes
/// of edges present in `current` (kept in sync with the merged graph so
/// deletes usually hit something).
fn random_batch(rng: &mut Rng, nv: usize, current: &[Edge], ops: usize) -> DeltaBatch<Edge> {
    let mut batch = DeltaBatch::new();
    for _ in 0..ops {
        let op = match rng.below(8) {
            // Fresh insert (may collide with an existing edge, which is
            // a legal duplicate).
            0..=3 => DeltaOp::Insert(Edge::new(rng.below(nv) as u32, rng.below(nv) as u32)),
            // Exact duplicate of an existing edge.
            4 if !current.is_empty() => DeltaOp::Insert(current[rng.below(current.len())]),
            // Self-loop.
            5 => {
                let v = rng.below(nv) as u32;
                DeltaOp::Insert(Edge::new(v, v))
            }
            // Delete an existing edge (multiset-wide).
            _ if !current.is_empty() => {
                let e = current[rng.below(current.len())];
                DeltaOp::Delete {
                    src: e.src(),
                    dst: e.dst(),
                }
            }
            _ => DeltaOp::Insert(Edge::new(rng.below(nv) as u32, rng.below(nv) as u32)),
        };
        batch.ops.push(op);
    }
    batch
}

/// The weighted twin of an unweighted batch, weighting inserted edges
/// exactly as [`weighted`] weights base edges.
fn weighted_batch(batch: &DeltaBatch<Edge>) -> DeltaBatch<WEdge> {
    let mut out = DeltaBatch::new();
    for op in &batch.ops {
        out.ops.push(match op {
            DeltaOp::Insert(e) => {
                DeltaOp::Insert(WEdge::new(e.src(), e.dst(), edge_weight(e.src(), e.dst())))
            }
            DeltaOp::Delete { src, dst } => DeltaOp::Delete {
                src: *src,
                dst: *dst,
            },
        });
    }
    out
}

/// The merged both-direction delta view of `base` + `log` the
/// incremental engines repair over, plus its out-degrees.
fn merged_view(base: &EdgeList<Edge>, log: &DeltaLog<Edge>) -> (DeltaList<Edge>, Vec<u32>) {
    let (out, inc) = CsrBuilder::new(Strategy::RadixSort, EdgeDirection::Both)
        .sort_neighbors(true)
        .build(base)
        .into_parts();
    let view = DeltaList::new(out, inc, log);
    let out = view.out();
    let degrees = (0..out.num_vertices() as u32)
        .map(|v| out.degree(v) as u32)
        .collect();
    (view, degrees)
}

fn mismatch(
    graph: &str,
    algo: &'static str,
    variant: &str,
    threads: usize,
    detail: String,
) -> Mismatch {
    Mismatch {
        graph: graph.to_string(),
        algo,
        variant: variant.to_string(),
        threads,
        detail,
    }
}

fn ints_equal(got: &[u32], want: &[u32]) -> Result<(), String> {
    if got.len() != want.len() {
        return Err(format!("length {} != {}", got.len(), want.len()));
    }
    for (i, (x, y)) in got.iter().zip(want).enumerate() {
        if x != y {
            return Err(format!("[{i}] got {x}, want {y}"));
        }
    }
    Ok(())
}

fn floats_close(got: &[f32], want: &[f32], tol: f64) -> Result<(), String> {
    if got.len() != want.len() {
        return Err(format!("length {} != {}", got.len(), want.len()));
    }
    for (i, (&x, &y)) in got.iter().zip(want).enumerate() {
        if x == y {
            continue; // covers equal infinities
        }
        if !x.is_finite() || !y.is_finite() {
            return Err(format!("[{i}] got {x:?}, want {y:?}"));
        }
        let (a, b) = (x as f64, y as f64);
        if (a - b).abs() > tol * a.abs().max(b.abs()).max(1.0) {
            return Err(format!("[{i}] got {x:?}, want {y:?} (tol {tol:e})"));
        }
    }
    Ok(())
}

/// Runs the update oracle over `graphs`.
///
/// Per graph: keeps one [`DeltaGraph`] (the epoch-published mutable
/// form), one growing [`DeltaLog`] and the three incremental engines
/// alive across `cfg.batches` seeded batches, checking after each batch
/// and once more after compaction. Empty graphs are skipped — there is
/// nothing to mutate.
pub fn run_update_matrix(graphs: &[NamedGraph], cfg: &UpdateConfig) -> UpdateReport {
    let mut report = UpdateReport {
        checks_run: 0,
        mismatches: Vec::new(),
        seed: cfg.seed,
    };

    for named in graphs {
        let base = &named.graph;
        let nv = base.num_vertices();
        if nv == 0 {
            continue;
        }
        let name = &named.name;
        let mut rng = Rng(cfg.seed
            ^ name
                .bytes()
                .fold(0u64, |h, b| h.wrapping_mul(31).wrapping_add(b as u64)));

        let dgraph = DeltaGraph::new(base.clone());
        let mut log = DeltaLog::new();
        let (view0, degrees0) = merged_view(base, &log);
        let damping = pagerank::PagerankConfig::default().damping;
        let mut inc_pr = pagerank::IncrementalPagerank::new(&view0, &degrees0, damping);
        let mut inc_wcc = wcc::IncrementalWcc::new(base);
        let mut inc_bfs = bfs::IncrementalBfs::new(&view0, 0);

        for batch_no in 0..cfg.batches {
            let merged_before = log.merge_into(base);
            let batch = random_batch(&mut rng, nv, merged_before.edges(), cfg.ops_per_batch);
            log.append(&batch);
            dgraph
                .apply(&batch)
                .expect("generated batches are in-bounds");
            let merged = log.merge_into(base);

            check_incremental(
                &mut report,
                name,
                batch_no,
                base,
                &log,
                &merged,
                &batch,
                damping,
                &mut inc_pr,
                &mut inc_wcc,
                &mut inc_bfs,
            );
            check_variants(&mut report, name, base, &log, &merged, cfg);
        }

        // Compaction: the published snapshot must be the merged graph
        // at a bumped epoch, and the log of pending work must drain.
        let before = dgraph.epoch();
        let stats = dgraph.compact();
        let snapshot = dgraph.snapshot();
        report.checks_run += 1;
        if stats.epoch != before + 1 || snapshot.epoch != stats.epoch || dgraph.pending_ops() != 0 {
            report.mismatches.push(mismatch(
                name,
                "compact",
                "epoch",
                0,
                format!(
                    "epoch {} -> {} (snapshot {}), {} pending after compact",
                    before,
                    stats.epoch,
                    snapshot.epoch,
                    dgraph.pending_ops()
                ),
            ));
        }
        let merged = log.merge_into(base);
        report.checks_run += 1;
        if snapshot.edges.edges() != merged.edges() {
            report.mismatches.push(mismatch(
                name,
                "compact",
                "snapshot",
                0,
                format!(
                    "compacted snapshot has {} edges, merged log has {}",
                    snapshot.edges.num_edges(),
                    merged.num_edges()
                ),
            ));
        }
        // Post-compaction queries: BFS on the compacted snapshot equals
        // BFS on the merged graph (trivially the same input now — the
        // check guards the compaction path, not the algorithm).
        let snap_csr = CsrBuilder::new(Strategy::RadixSort, EdgeDirection::Out)
            .sort_neighbors(true)
            .build(&snapshot.edges);
        report.checks_run += 1;
        if let Err(detail) = ints_equal(
            &bfs::reference(snap_csr.out(), 0),
            &bfs::reference(
                CsrBuilder::new(Strategy::RadixSort, EdgeDirection::Out)
                    .sort_neighbors(true)
                    .build(&merged)
                    .out(),
                0,
            ),
        ) {
            report
                .mismatches
                .push(mismatch(name, "compact", "post-compaction bfs", 1, detail));
        }
    }
    report
}

/// Check 1: the three incremental engines against serial references on
/// the merged graph.
#[allow(clippy::too_many_arguments)]
fn check_incremental(
    report: &mut UpdateReport,
    name: &str,
    batch_no: usize,
    base: &EdgeList<Edge>,
    log: &DeltaLog<Edge>,
    merged: &EdgeList<Edge>,
    batch: &DeltaBatch<Edge>,
    damping: f32,
    inc_pr: &mut pagerank::IncrementalPagerank,
    inc_wcc: &mut wcc::IncrementalWcc,
    inc_bfs: &mut bfs::IncrementalBfs,
) {
    let (view, degrees) = merged_view(base, log);

    let outcome = inc_pr.apply(&view, &degrees, batch);
    let want = pagerank::reference_converged(merged, &degrees, damping);
    report.checks_run += 1;
    if let Err(detail) = floats_close(&inc_pr.ranks(), &want, REORDER_TOL) {
        report.mismatches.push(mismatch(
            name,
            "pagerank",
            &format!("incremental/batch{batch_no}(fallback={})", outcome.fallback),
            1,
            format!("vs converged reference: {detail}"),
        ));
    }

    let outcome = inc_wcc.apply(merged, batch);
    report.checks_run += 1;
    if let Err(detail) = ints_equal(inc_wcc.labels(), &wcc::reference(merged)) {
        report.mismatches.push(mismatch(
            name,
            "wcc",
            &format!("incremental/batch{batch_no}(fallback={})", outcome.fallback),
            1,
            format!("vs union-find reference: {detail}"),
        ));
    }

    let outcome = inc_bfs.apply(&view, batch);
    let merged_csr = CsrBuilder::new(Strategy::RadixSort, EdgeDirection::Out)
        .sort_neighbors(true)
        .build(merged);
    report.checks_run += 1;
    if let Err(detail) = ints_equal(inc_bfs.level(), &bfs::reference(merged_csr.out(), 0)) {
        report.mismatches.push(mismatch(
            name,
            "bfs",
            &format!("incremental/batch{batch_no}(fallback={})", outcome.fallback),
            1,
            format!("vs serial reference: {detail}"),
        ));
    }
}

/// Check 2: every `Layout::Delta` variant (base CSR + pending log
/// overlay) against the same algorithm from scratch on the merged
/// graph, across thread counts, directions and sync modes — optionally
/// under the seeded scheduler fault plan.
fn check_variants(
    report: &mut UpdateReport,
    name: &str,
    base: &EdgeList<Edge>,
    log: &DeltaLog<Edge>,
    merged: &EdgeList<Edge>,
    cfg: &UpdateConfig,
) {
    let _fault_guard = cfg
        .faults
        .then(|| FaultGuard::install(FaultPlan::new(cfg.seed).delay_workers().steal_storm()));

    let wbase = weighted(base);
    let wlog = {
        let mut l = DeltaLog::new();
        l.append(&weighted_batch(&log.as_batch()));
        l
    };
    let wmerged = weighted(merged);
    let x = spmv_input(base.num_vertices());

    for &threads in &cfg.thread_counts {
        let pool = ThreadPool::new(threads);
        with_pool(&pool, || {
            let delta_g = PreparedGraph::new(base).sort_neighbors(true).deltas(log);
            let delta_w = PreparedGraph::new(&wbase)
                .sort_neighbors(true)
                .deltas(&wlog);
            let fresh_g = PreparedGraph::new(merged).sort_neighbors(true);
            let fresh_w = PreparedGraph::new(&wmerged).sort_neighbors(true);
            let ctx = ExecCtx::new(None);

            for id in supported_variants() {
                if id.layout != Layout::Delta {
                    continue;
                }
                let syncs: &[SyncMode] = if sync_matters(&id) {
                    &[SyncMode::Atomics, SyncMode::Locks]
                } else {
                    &[SyncMode::Atomics]
                };
                for &sync in syncs {
                    let params = RunParams {
                        root: 0,
                        pagerank: pagerank::PagerankConfig {
                            iterations: 5,
                            ..Default::default()
                        },
                        sync,
                        x: Some(&x),
                    };
                    let fresh_id = VariantId::new(id.algo, Layout::Adjacency, id.direction);
                    let (got, want) = if id.algo.needs_weights() {
                        (
                            run_variant(&id, &ctx, &delta_w, &params),
                            run_variant(&fresh_id, &ctx, &fresh_w, &params),
                        )
                    } else {
                        (
                            run_variant(&id, &ctx, &delta_g, &params),
                            run_variant(&fresh_id, &ctx, &fresh_g, &params),
                        )
                    };
                    let (got, want) = (
                        got.expect("delta variants must run").output,
                        want.expect("adjacency variants must run").output,
                    );
                    report.checks_run += 1;
                    let variant = format!(
                        "delta/{}{}",
                        id.direction.name(),
                        if sync == SyncMode::Locks {
                            "+locks"
                        } else {
                            ""
                        }
                    );
                    let check = compare_outputs(&got, &want);
                    if let Err(detail) = check {
                        report.mismatches.push(mismatch(
                            name,
                            id.algo.name(),
                            &variant,
                            threads,
                            format!("vs from-scratch recompute: {detail}"),
                        ));
                    }
                }
            }
        });
    }
}

/// Integer outputs compare exactly; float outputs within the reorder
/// tolerance (the delta overlay legitimately reorders accumulation
/// relative to a fresh CSR), except SSSP distances, which are
/// order-independent fixed points and must match exactly.
fn compare_outputs(got: &VariantOutput, want: &VariantOutput) -> Result<(), String> {
    match (got, want) {
        (VariantOutput::Bfs(a), VariantOutput::Bfs(b)) => ints_equal(&a.level, &b.level),
        (VariantOutput::Wcc(a), VariantOutput::Wcc(b)) => ints_equal(&a.label, &b.label),
        (VariantOutput::Sssp(a), VariantOutput::Sssp(b)) => floats_close(&a.dist, &b.dist, 0.0),
        (VariantOutput::Pagerank(a), VariantOutput::Pagerank(b)) => {
            floats_close(&a.ranks, &b.ranks, REORDER_TOL)
        }
        (VariantOutput::Spmv(a), VariantOutput::Spmv(b)) => floats_close(&a.y, &b.y, REORDER_TOL),
        _ => Err("output kind mismatch".to_string()),
    }
}

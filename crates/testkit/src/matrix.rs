//! The conformance matrix: every algorithm variant × every layout ×
//! every thread count, checked against two oracles.
//!
//! For each corpus graph the matrix runs every implemented technique
//! combination — edge-centric, vertex-centric push/pull/hybrid over
//! CSR, and grid — under scoped thread pools of each configured width,
//! and compares:
//!
//! 1. **against a serial analytic reference** (textbook BFS, union-find
//!    WCC, Dijkstra SSSP, power-iteration PageRank, serial SpMV):
//!    integer results must match bit-for-bit; float results within a
//!    per-variant tolerance (`0.0` meaning exactly equal);
//! 2. **against the same variant at one thread**: deterministic
//!    variants (single-writer, fixed accumulation order) must be
//!    bit-identical at every thread count; variants whose `f32`
//!    accumulation order legitimately depends on the schedule (atomic
//!    or locked push) get the documented tolerance instead.
//!
//! A literal `1e-9` relative bound is only meaningful for the
//! deterministic variants — they achieve `0.0`. Reordered `f32` sums
//! cannot meet `1e-9` even in principle (f32 epsilon is ~`1.2e-7`), so
//! those variants carry an explicit, wider tolerance. DESIGN.md §11
//! spells out the classification.

use egraph_core::algo::{als, bfs, pagerank, spmv, sssp, wcc};
use egraph_core::exec::ExecCtx;
use egraph_core::layout::EdgeDirection;
use egraph_core::preprocess::{CsrBuilder, Strategy};
use egraph_core::types::{Edge, EdgeList, WEdge};
use egraph_core::variant::{
    cross_thread_deterministic, run_variant, supported_variants, sync_matters, Algo, Layout,
    PreparedGraph, RunParams, SyncMode, VariantId, VariantOutput,
};
use egraph_parallel::{with_pool, ThreadPool};

use crate::corpus::{spmv_input, weighted, NamedGraph};

/// Relative tolerance for float variants whose accumulation order is
/// schedule-dependent (atomic/locked push). See the module docs.
pub const REORDER_TOL: f64 = 1e-4;

/// Tolerance for deterministic float variants against the
/// *same-variant* single-thread baseline: exactly equal (which
/// trivially satisfies the 1e-9 requirement).
pub const EXACT: f64 = 0.0;

/// Matrix run parameters.
#[derive(Debug, Clone)]
pub struct MatrixConfig {
    /// Thread counts to exercise; 1 is always run as the baseline.
    pub thread_counts: Vec<usize>,
    /// The corpus seed (used in failure messages so runs reproduce).
    pub seed: u64,
    /// Power iterations for the PageRank variants.
    pub pagerank_iterations: usize,
}

impl MatrixConfig {
    /// The quick-tier configuration for `seed`.
    pub fn quick(seed: u64) -> Self {
        Self {
            thread_counts: crate::QUICK_THREADS.to_vec(),
            seed,
            pagerank_iterations: 5,
        }
    }

    /// The exhaustive-tier configuration for `seed`.
    pub fn exhaustive(seed: u64) -> Self {
        Self {
            thread_counts: crate::EXHAUSTIVE_THREADS.to_vec(),
            seed,
            pagerank_iterations: 10,
        }
    }
}

/// One failed comparison.
#[derive(Debug, Clone)]
pub struct Mismatch {
    /// Corpus graph name.
    pub graph: String,
    /// Algorithm (`"bfs"`, `"pagerank"`, …).
    pub algo: &'static str,
    /// Technique combination (`"grid/push+locks"`, …).
    pub variant: String,
    /// Thread count of the failing run.
    pub threads: usize,
    /// Which oracle disagreed and how.
    pub detail: String,
}

impl std::fmt::Display for Mismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{}/{} @ {} thread(s): {}",
            self.graph, self.algo, self.variant, self.threads, self.detail
        )
    }
}

/// The outcome of a matrix run.
#[derive(Debug)]
pub struct MatrixReport {
    /// Number of (graph, algo, variant, threads) combinations executed.
    pub combos_run: usize,
    /// Every failed comparison.
    pub mismatches: Vec<Mismatch>,
    /// The corpus seed, echoed for failure messages.
    pub seed: u64,
}

impl MatrixReport {
    /// Panics with a reproducible report if any combination mismatched.
    pub fn assert_clean(&self) {
        assert!(
            !self.mismatches.is_empty() || self.combos_run > 0,
            "conformance matrix ran no combinations"
        );
        if self.mismatches.is_empty() {
            return;
        }
        let mut msg = format!(
            "conformance matrix failed ({} of {} combinations; \
             reproduce with EGRAPH_TEST_SEED={:#x}):\n",
            self.mismatches.len(),
            self.combos_run,
            self.seed
        );
        for m in &self.mismatches {
            msg.push_str(&format!("  {m}\n"));
        }
        panic!("{msg}");
    }
}

/// A computed result: dense per-vertex integers or floats.
#[derive(Debug, Clone, PartialEq)]
enum Output {
    Ints(Vec<u32>),
    Floats(Vec<f32>),
}

/// One variant's result plus its comparison policy.
struct VariantOut {
    algo: &'static str,
    variant: String,
    /// Tolerance against the analytic reference (0.0 = exact).
    ref_tol: f64,
    /// Tolerance against the single-thread same-variant baseline.
    cross_tol: f64,
    output: Output,
}

impl VariantOut {
    fn ints(algo: &'static str, variant: String, v: Vec<u32>) -> Self {
        Self {
            algo,
            variant,
            ref_tol: EXACT,
            cross_tol: EXACT,
            output: Output::Ints(v),
        }
    }

    fn floats(
        algo: &'static str,
        variant: String,
        ref_tol: f64,
        cross_tol: f64,
        v: Vec<f32>,
    ) -> Self {
        Self {
            algo,
            variant,
            ref_tol,
            cross_tol,
            output: Output::Floats(v),
        }
    }
}

/// Analytic references for one graph, computed serially once.
struct References {
    bfs: Option<Vec<u32>>,
    wcc: Vec<u32>,
    sssp: Option<Vec<f32>>,
    pagerank: Vec<f32>,
    spmv: Vec<f32>,
}

/// Runs the full conformance matrix over `graphs`.
///
/// The single-thread baseline always runs first (with a fixed layout
/// strategy); every configured thread count is then compared against
/// both the analytic reference and that baseline. CSR construction
/// strategies rotate across thread counts (neighbor lists are sorted,
/// so all strategies produce the same canonical layout); grids always
/// build with count sort, whose within-cell edge order is the stable
/// input order regardless of worker count.
pub fn run_matrix(graphs: &[NamedGraph], cfg: &MatrixConfig) -> MatrixReport {
    let mut report = MatrixReport {
        combos_run: 0,
        mismatches: Vec::new(),
        seed: cfg.seed,
    };
    let pr_cfg = pagerank::PagerankConfig {
        iterations: cfg.pagerank_iterations,
        ..Default::default()
    };
    let csr_strategies = [Strategy::CountSort, Strategy::Dynamic, Strategy::RadixSort];

    for named in graphs {
        let g = &named.graph;
        let w = weighted(g);
        let x = spmv_input(g.num_vertices());
        let degrees: Vec<u32> = g.out_degrees().iter().map(|&d| d as u32).collect();
        let refs = compute_references(g, &w, &degrees, &x, pr_cfg);

        let baseline_pool = ThreadPool::new(1);
        let baseline = with_pool(&baseline_pool, || {
            run_variants(g, &w, &x, pr_cfg, Strategy::CountSort)
        });
        for v in &baseline {
            report.combos_run += 1;
            check_reference(&mut report, &named.name, 1, v, &refs);
        }

        for (ti, &threads) in cfg.thread_counts.iter().enumerate() {
            if threads == 1 {
                continue; // already covered by the baseline run
            }
            let pool = ThreadPool::new(threads);
            let strategy = csr_strategies[ti % csr_strategies.len()];
            let outs = with_pool(&pool, || run_variants(g, &w, &x, pr_cfg, strategy));
            for v in &outs {
                report.combos_run += 1;
                check_reference(&mut report, &named.name, threads, v, &refs);
                let base = baseline
                    .iter()
                    .find(|b| b.algo == v.algo && b.variant == v.variant)
                    .expect("baseline ran the same variant set");
                if let Err(detail) = compare(&v.output, &base.output, v.cross_tol) {
                    report.mismatches.push(Mismatch {
                        graph: named.name.clone(),
                        algo: v.algo,
                        variant: v.variant.clone(),
                        threads,
                        detail: format!("vs 1-thread baseline: {detail}"),
                    });
                }
            }
        }
    }

    run_als(&mut report, cfg);
    report
}

fn compute_references(
    g: &EdgeList<Edge>,
    w: &EdgeList<WEdge>,
    degrees: &[u32],
    x: &[f32],
    pr_cfg: pagerank::PagerankConfig,
) -> References {
    let has_root = g.num_vertices() > 0;
    let bfs = has_root.then(|| {
        let csr = CsrBuilder::new(Strategy::CountSort, EdgeDirection::Out).build(g);
        bfs::reference(csr.out(), 0)
    });
    References {
        bfs,
        wcc: wcc::reference(g),
        sssp: has_root.then(|| sssp::reference(w, 0)),
        pagerank: pagerank::reference(g, degrees, pr_cfg),
        spmv: spmv::reference(w, x),
    }
}

fn check_reference(
    report: &mut MatrixReport,
    graph: &str,
    threads: usize,
    v: &VariantOut,
    refs: &References,
) {
    let reference: Option<Output> = match v.algo {
        "bfs" => refs.bfs.clone().map(Output::Ints),
        "wcc" => Some(Output::Ints(refs.wcc.clone())),
        "sssp" => refs.sssp.clone().map(Output::Floats),
        "pagerank" => Some(Output::Floats(refs.pagerank.clone())),
        "spmv" => Some(Output::Floats(refs.spmv.clone())),
        _ => None,
    };
    if let Some(reference) = reference {
        if let Err(detail) = compare(&v.output, &reference, v.ref_tol) {
            report.mismatches.push(Mismatch {
                graph: graph.to_string(),
                algo: v.algo,
                variant: v.variant.clone(),
                threads,
                detail: format!("vs serial reference: {detail}"),
            });
        }
    }
}

/// The matrix-facing name of one combination, e.g. `"adj/push+locks"`.
fn variant_name(id: &VariantId, sync: SyncMode) -> String {
    let mut name = format!("{}/{}", id.layout.name(), id.direction.name());
    if sync == SyncMode::Locks {
        name.push_str("+locks");
    }
    name
}

/// Classifies one completed run into its comparison policy (see the
/// module docs and DESIGN.md §11): integer results and SSSP distances
/// are exact; float results compare to the serial reference with the
/// reorder tolerance, and to the single-thread baseline exactly iff
/// [`cross_thread_deterministic`] says the schedule cannot reorder the
/// accumulation.
fn classify(id: &VariantId, sync: SyncMode, output: VariantOutput) -> VariantOut {
    let variant = variant_name(id, sync);
    let cross = if cross_thread_deterministic(id, sync) {
        EXACT
    } else {
        REORDER_TOL
    };
    match output {
        VariantOutput::Bfs(r) => VariantOut::ints("bfs", variant, r.level),
        VariantOutput::Wcc(r) => VariantOut::ints("wcc", variant, r.label),
        VariantOutput::Sssp(r) => VariantOut::floats("sssp", variant, EXACT, EXACT, r.dist),
        VariantOutput::Pagerank(r) => {
            VariantOut::floats("pagerank", variant, REORDER_TOL, cross, r.ranks)
        }
        VariantOutput::Spmv(r) => VariantOut::floats("spmv", variant, REORDER_TOL, cross, r.y),
    }
}

/// Runs every supported variant of every algorithm under the *current*
/// pool (install one with [`egraph_parallel::with_pool`] first).
/// Layouts are built lazily by [`PreparedGraph`] inside the scope so
/// preprocessing also runs under the pool. The variant set comes from
/// [`supported_variants`] — the matrix has no hand-written dispatch of
/// its own, so a combination added to `egraph-core` is conformance-
/// checked automatically.
fn run_variants(
    g: &EdgeList<Edge>,
    w: &EdgeList<WEdge>,
    x: &[f32],
    pr_cfg: pagerank::PagerankConfig,
    strategy: Strategy,
) -> Vec<VariantOut> {
    let nv = g.num_vertices();
    // Sorted neighbor lists make the CSR canonical: every construction
    // strategy and worker count yields byte-identical adjacencies, so
    // deterministic variants can demand bit-identical results. Grids
    // always build with count sort, whose within-cell edge order is the
    // stable input order regardless of worker count.
    let side = nv.clamp(1, 16);
    let prepared_g = PreparedGraph::new(g)
        .strategy(strategy)
        .grid_strategy(Strategy::CountSort)
        .sort_neighbors(true)
        .side(side);
    let prepared_w = PreparedGraph::new(w)
        .strategy(strategy)
        .grid_strategy(Strategy::CountSort)
        .sort_neighbors(true)
        .side(side);
    let ctx = ExecCtx::new(None);

    let mut outs = Vec::new();
    for id in supported_variants() {
        // Root-based algorithms need a vertex 0; grids need a non-empty
        // vertex range to partition.
        if nv == 0 && (matches!(id.algo, Algo::Bfs | Algo::Sssp) || id.layout == Layout::Grid) {
            continue;
        }
        let syncs: &[SyncMode] = if sync_matters(&id) {
            &[SyncMode::Atomics, SyncMode::Locks]
        } else {
            &[SyncMode::Atomics]
        };
        for &sync in syncs {
            let params = RunParams {
                root: 0,
                pagerank: pr_cfg,
                sync,
                x: Some(x),
            };
            let run = if id.algo.needs_weights() {
                run_variant(&id, &ctx, &prepared_w, &params)
            } else {
                run_variant(&id, &ctx, &prepared_g, &params)
            }
            .expect("supported_variants() entries must run");
            outs.push(classify(&id, sync, run.output));
        }
    }

    // Delta-stepping is an extra SSSP implementation outside the
    // algo × layout × direction space; it keeps its explicit call.
    if nv > 0 {
        let wcsr = CsrBuilder::new(strategy, EdgeDirection::Out)
            .sort_neighbors(true)
            .build(w);
        outs.push(VariantOut::floats(
            "sssp",
            "delta_stepping".to_string(),
            EXACT,
            EXACT,
            sssp::delta_stepping(&wcsr, 0, 0.25).dist,
        ));
    }

    outs
}

/// ALS runs once per thread count on the ratings graph; the
/// single-thread run is the oracle (per-vertex normal equations are
/// solved by a single writer in a fixed order → bit-identical).
fn run_als(report: &mut MatrixReport, cfg: &MatrixConfig) {
    let (ratings, num_users) = crate::corpus::ratings_graph(cfg.seed);
    let als_cfg = als::AlsConfig {
        rank: 4,
        lambda: 0.1,
        iterations: 2,
    };
    let run = |threads: usize| -> Vec<f32> {
        let pool = ThreadPool::new(threads);
        with_pool(&pool, || {
            let adj = CsrBuilder::new(Strategy::CountSort, EdgeDirection::Both)
                .sort_neighbors(true)
                .build(&ratings);
            als::als(adj.out(), adj.incoming(), num_users, als_cfg).factors
        })
    };
    let baseline = run(1);
    report.combos_run += 1;
    for &threads in &cfg.thread_counts {
        if threads == 1 {
            continue;
        }
        report.combos_run += 1;
        let got = run(threads);
        if let Err(detail) = compare(
            &Output::Floats(got),
            &Output::Floats(baseline.clone()),
            EXACT,
        ) {
            report.mismatches.push(Mismatch {
                graph: "netflix_like".to_string(),
                algo: "als",
                variant: "vertex".to_string(),
                threads,
                detail: format!("vs 1-thread baseline: {detail}"),
            });
        }
    }
}

/// Compares two outputs. `tol == 0.0` demands exact equality (bitwise
/// for integers; `==` for floats, so `inf == inf` passes and any NaN
/// fails). A positive `tol` accepts
/// `|a - b| <= tol * max(1, |a|, |b|)` per element.
fn compare(got: &Output, want: &Output, tol: f64) -> Result<(), String> {
    match (got, want) {
        (Output::Ints(a), Output::Ints(b)) => {
            if a.len() != b.len() {
                return Err(format!("length {} != {}", a.len(), b.len()));
            }
            for (i, (x, y)) in a.iter().zip(b).enumerate() {
                if x != y {
                    return Err(format!("[{i}] got {x}, want {y}"));
                }
            }
            Ok(())
        }
        (Output::Floats(a), Output::Floats(b)) => {
            if a.len() != b.len() {
                return Err(format!("length {} != {}", a.len(), b.len()));
            }
            for (i, (&x, &y)) in a.iter().zip(b).enumerate() {
                if !floats_close(x, y, tol) {
                    return Err(format!("[{i}] got {x:?}, want {y:?} (tol {tol:e})"));
                }
            }
            Ok(())
        }
        _ => Err("output kind mismatch (ints vs floats)".to_string()),
    }
}

fn floats_close(a: f32, b: f32, tol: f64) -> bool {
    if tol == 0.0 {
        return a == b;
    }
    if a == b {
        return true; // covers equal infinities
    }
    if !a.is_finite() || !b.is_finite() {
        return false;
    }
    let (a, b) = (a as f64, b as f64);
    (a - b).abs() <= tol * a.abs().max(b.abs()).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floats_close_handles_edges() {
        assert!(floats_close(f32::INFINITY, f32::INFINITY, 0.0));
        assert!(floats_close(f32::INFINITY, f32::INFINITY, 1e-4));
        assert!(!floats_close(f32::INFINITY, 1.0, 1e-4));
        assert!(!floats_close(f32::NAN, f32::NAN, 1e-4));
        assert!(floats_close(1.0, 1.0 + 1e-6, 1e-4));
        assert!(!floats_close(1.0, 1.1, 1e-4));
        assert!(!floats_close(1.0, 1.0 + 1e-6, 0.0));
    }

    #[test]
    fn compare_reports_first_divergence() {
        let a = Output::Ints(vec![1, 2, 3]);
        let b = Output::Ints(vec![1, 9, 3]);
        let err = compare(&a, &b, 0.0).unwrap_err();
        assert!(err.contains("[1]"), "{err}");
    }
}

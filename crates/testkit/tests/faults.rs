//! Deterministic fault injection, end to end.
//!
//! Storage faults (short reads, truncation, mid-stream I/O errors) must
//! surface as typed errors — never a panic, never a silently corrupted
//! graph. Scheduler faults (delayed workers, steal storms, worker
//! panics) must either leave results bit-for-bit unchanged or propagate
//! a panic cleanly to the caller, leaving the pool reusable — never a
//! hang.
//!
//! The scheduler fault plan is process-global, so every test that
//! installs one serializes on [`FAULT_LOCK`].

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

use egraph_core::types::{Edge, EdgeList, WEdge};
use egraph_parallel::fault::{FaultGuard, FaultPlan};
use egraph_parallel::{parallel_for, parallel_reduce, with_pool, ThreadPool};
use egraph_storage::{
    read_dimacs, read_edge_list, read_snap, write_edge_list, write_snap, FaultedReader,
    FormatError, IoFault, TextError,
};
use egraph_testkit::{quick_corpus, run_matrix, test_seed, weighted, MatrixConfig, NamedGraph};

/// Serializes tests that install the global scheduler fault plan.
static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn fault_lock() -> std::sync::MutexGuard<'static, ()> {
    FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn sample_graph() -> EdgeList<Edge> {
    egraph_graphgen::rmat(6, 8, test_seed())
}

fn assert_same_graph(a: &EdgeList<Edge>, b: &EdgeList<Edge>) {
    assert_eq!(a.num_vertices(), b.num_vertices());
    assert_eq!(a.edges(), b.edges());
}

// ---------------------------------------------------------------- storage

#[test]
fn short_reads_deliver_identical_binary_graphs() {
    let graph = sample_graph();
    let mut bytes = Vec::new();
    write_edge_list(&mut bytes, &graph).unwrap();
    for seed in 0..4 {
        let reader = FaultedReader::new(&bytes[..], IoFault::ShortReads { seed });
        let got: EdgeList<Edge> = read_edge_list(reader)
            .unwrap_or_else(|e| panic!("short reads (seed {seed}) must be harmless: {e}"));
        assert_same_graph(&got, &graph);
    }
}

#[test]
fn truncated_binary_is_always_a_typed_error() {
    let graph = sample_graph();
    let mut bytes = Vec::new();
    write_edge_list(&mut bytes, &graph).unwrap();
    // Every truncation point — mid-magic, mid-header, mid-record — must
    // produce a typed error, never a panic or a silently shorter graph.
    for offset in 0..bytes.len() as u64 {
        let reader = FaultedReader::new(&bytes[..], IoFault::TruncateAt { offset });
        let err = read_edge_list::<Edge, _>(reader)
            .expect_err(&format!("truncation at byte {offset} must fail"));
        assert!(
            matches!(
                err,
                FormatError::Io(_) | FormatError::Truncated { .. } | FormatError::BadMagic(_)
            ),
            "unexpected error class at byte {offset}: {err}"
        );
    }
}

#[test]
fn mid_stream_error_surfaces_as_io() {
    let graph = sample_graph();
    let mut bytes = Vec::new();
    write_edge_list(&mut bytes, &graph).unwrap();
    for offset in [0, 7, 64, bytes.len() as u64 - 1] {
        let reader = FaultedReader::new(&bytes[..], IoFault::ErrorAt { offset });
        match read_edge_list::<Edge, _>(reader) {
            Err(FormatError::Io(e)) => {
                assert_eq!(e.kind(), std::io::ErrorKind::Other, "at byte {offset}")
            }
            other => panic!("device error at byte {offset} must surface as Io, got {other:?}"),
        }
    }
}

#[test]
fn short_reads_deliver_identical_snap_graphs() {
    let graph = sample_graph();
    let mut text = Vec::new();
    write_snap(&mut text, &graph).unwrap();
    let reader = FaultedReader::new(&text[..], IoFault::ShortReads { seed: 11 });
    let got: EdgeList<Edge> = read_snap(reader, Some(graph.num_vertices())).unwrap();
    assert_same_graph(&got, &graph);
}

#[test]
fn truncated_dimacs_never_panics_and_errors_are_typed() {
    let graph = weighted(&sample_graph());
    let mut text = format!(
        "c generated\np sp {} {}\n",
        graph.num_vertices(),
        graph.num_edges()
    );
    for e in graph.edges() {
        text.push_str(&format!("a {} {} {}\n", e.src + 1, e.dst + 1, e.weight));
    }
    let bytes = text.as_bytes();
    // Sweep a prefix of offsets densely plus a coarse tail: every
    // truncation must either fail with a typed error or — when the cut
    // lands after the last arc — reproduce the graph exactly (the
    // declared arc count rules out silently shorter results).
    let offsets = (0..200u64).chain((200..=bytes.len() as u64).step_by(17));
    for offset in offsets {
        let reader = FaultedReader::new(bytes, IoFault::TruncateAt { offset });
        match read_dimacs(reader) {
            Ok(got) => {
                assert_eq!(got.num_vertices(), graph.num_vertices(), "at byte {offset}");
                assert_eq!(got.num_edges(), graph.num_edges(), "at byte {offset}");
            }
            Err(TextError::Io(_) | TextError::Parse { .. } | TextError::Graph(_)) => {}
        }
    }
}

#[test]
fn dimacs_mid_stream_error_surfaces_as_io() {
    let graph: EdgeList<WEdge> = weighted(&sample_graph());
    let mut text = format!("p sp {} {}\n", graph.num_vertices(), graph.num_edges());
    for e in graph.edges() {
        text.push_str(&format!("a {} {} {}\n", e.src + 1, e.dst + 1, e.weight));
    }
    let reader = FaultedReader::new(text.as_bytes(), IoFault::ErrorAt { offset: 40 });
    match read_dimacs(reader) {
        Err(TextError::Io(_)) => {}
        other => panic!("expected TextError::Io, got {other:?}"),
    }
}

// -------------------------------------------------------------- scheduler

/// A one-graph conformance matrix: the full oracle (serial reference +
/// single-thread baseline) under whatever fault plan is installed.
fn mini_matrix() {
    let seed = test_seed();
    let graphs = vec![NamedGraph {
        name: "fault/rmat_s5".to_string(),
        graph: egraph_graphgen::rmat(5, 8, seed),
    }];
    let cfg = MatrixConfig {
        thread_counts: vec![1, 4],
        seed,
        pagerank_iterations: 3,
    };
    run_matrix(&graphs, &cfg).assert_clean();
}

#[test]
fn delayed_workers_do_not_change_results() {
    let _lock = fault_lock();
    let _guard = FaultGuard::install(FaultPlan::new(test_seed()).delay_workers());
    mini_matrix();
}

#[test]
fn steal_storm_does_not_change_results() {
    let _lock = fault_lock();
    let _guard = FaultGuard::install(FaultPlan::new(test_seed()).steal_storm());
    mini_matrix();
}

#[test]
fn delayed_steal_storm_does_not_change_results() {
    let _lock = fault_lock();
    let _guard = FaultGuard::install(FaultPlan::new(test_seed()).delay_workers().steal_storm());
    mini_matrix();
}

#[test]
fn injected_worker_panic_propagates_and_pool_remains_usable() {
    let _lock = fault_lock();
    let pool = ThreadPool::new(4);
    {
        let _guard = FaultGuard::install(FaultPlan::new(test_seed()).panic_worker(1, 1));
        let result = catch_unwind(AssertUnwindSafe(|| {
            with_pool(&pool, || {
                parallel_for(0..10_000, 64, |_| {});
            })
        }));
        let payload = result.expect_err("the injected panic must reach the caller");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(
            msg.contains("injected fault"),
            "panic payload should identify the injection: {msg:?}"
        );
    }
    // Plan cleared by the guard: the same pool must still work and the
    // scoped-pool override must have been restored on unwind.
    let sum = with_pool(&pool, || {
        parallel_reduce(
            0..1_000usize,
            64,
            || 0usize,
            |acc, chunk| acc + chunk.sum::<usize>(),
            |a, b| a + b,
        )
    });
    assert_eq!(sum, 1_000 * 999 / 2);
}

#[test]
fn conformance_holds_after_panic_recovery() {
    let _lock = fault_lock();
    {
        let _guard = FaultGuard::install(FaultPlan::new(test_seed()).panic_worker(2, 1));
        let pool = ThreadPool::new(4);
        let result = catch_unwind(AssertUnwindSafe(|| {
            with_pool(&pool, || parallel_for(0..4_096, 16, |_| {}))
        }));
        assert!(result.is_err());
    }
    // With the plan cleared, the full oracle must pass again.
    mini_matrix();
}

// A cheap liveness check on the corpus itself: every fault test above
// relies on the quick corpus existing and being non-trivial.
#[test]
fn corpus_is_nonempty() {
    assert!(quick_corpus(test_seed()).len() >= 10);
}

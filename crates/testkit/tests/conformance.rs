//! The conformance matrix as a test: every technique combination over
//! the shared corpus, against both oracles.
//!
//! The quick tier always runs under `cargo test -q`. The exhaustive
//! tier (larger corpus, thread count 2, paper iteration counts) is
//! compiled in with `--features exhaustive` and runs in nightly CI.
//!
//! Override the corpus seed with `EGRAPH_TEST_SEED` (decimal or
//! `0x`-hex); failure messages echo the seed in use.

use egraph_testkit::{quick_corpus, run_matrix, test_seed, MatrixConfig};

#[test]
fn quick_matrix_is_conformant() {
    let seed = test_seed();
    let graphs = quick_corpus(seed);
    let report = run_matrix(&graphs, &MatrixConfig::quick(seed));
    assert!(
        report.combos_run > 300,
        "suspiciously small matrix: {} combos",
        report.combos_run
    );
    report.assert_clean();
}

#[cfg(feature = "exhaustive")]
#[test]
fn exhaustive_matrix_is_conformant() {
    let seed = test_seed();
    let graphs = egraph_testkit::exhaustive_corpus(seed);
    let report = run_matrix(&graphs, &MatrixConfig::exhaustive(seed));
    report.assert_clean();
}

//! Delta-log properties: random interleavings of insert / delete /
//! duplicate / self-loop batches round-trip through the log (overlay
//! and compaction) to the same graph a direct build produces, and
//! malformed NDJSON delta streams yield typed errors — never a panic.

use egraph_core::layout::{DeltaBatch, DeltaError, DeltaGraph, DeltaList, DeltaLog, DeltaOp};
use egraph_core::prelude::*;
// Explicit: both glob imports export a `Strategy` (the preprocess enum
// vs the proptest trait); the builder below means the enum, generator
// signatures name the trait by its full path.
use egraph_core::preprocess::Strategy;
use proptest::prelude::*;
use proptest::Strategy as PropStrategy;

/// One generated op, pre-resolution: indexes into the current merged
/// edge set so deletes and duplicates usually hit live edges.
#[derive(Debug, Clone)]
enum RawOp {
    Insert {
        src: u32,
        dst: u32,
    },
    SelfLoop {
        v: u32,
    },
    /// Duplicate the i-th live edge (modulo the live count).
    Duplicate {
        index: usize,
    },
    /// Delete the i-th live edge (modulo the live count); a delete on
    /// an empty graph degrades to a (legal) miss on (0, 0).
    Delete {
        index: usize,
    },
}

fn raw_op() -> impl PropStrategy<Value = RawOp> {
    // Tag-dispatched variant choice (the offline proptest stub has no
    // `prop_oneof!`): inserts get double weight so graphs tend to grow.
    (0u8..5, any::<u32>(), any::<u32>(), any::<usize>()).prop_map(|(tag, a, b, index)| match tag {
        0 | 1 => RawOp::Insert { src: a, dst: b },
        2 => RawOp::SelfLoop { v: a },
        3 => RawOp::Duplicate { index },
        _ => RawOp::Delete { index },
    })
}

/// Replays `raw` against a running merged edge set, yielding concrete
/// batches plus the expected final multiset (order-sensitive, multiset-
/// wide deletes — the documented semantics).
fn resolve(nv: usize, raw: &[Vec<RawOp>]) -> (Vec<DeltaBatch<Edge>>, Vec<Edge>) {
    let mut live: Vec<Edge> = Vec::new();
    let mut batches = Vec::new();
    for raw_batch in raw {
        let mut batch = DeltaBatch::new();
        for op in raw_batch {
            let op = match op {
                RawOp::Insert { src, dst } => {
                    DeltaOp::Insert(Edge::new(src % nv as u32, dst % nv as u32))
                }
                RawOp::SelfLoop { v } => {
                    let v = v % nv as u32;
                    DeltaOp::Insert(Edge::new(v, v))
                }
                RawOp::Duplicate { index } if !live.is_empty() => {
                    DeltaOp::Insert(live[index % live.len()])
                }
                RawOp::Duplicate { .. } => DeltaOp::Insert(Edge::new(0, 0)),
                RawOp::Delete { index } if !live.is_empty() => {
                    let e = live[index % live.len()];
                    DeltaOp::Delete {
                        src: e.src(),
                        dst: e.dst(),
                    }
                }
                RawOp::Delete { .. } => DeltaOp::Delete { src: 0, dst: 0 },
            };
            // Maintain the expected multiset by the documented replay
            // semantics: insert appends one copy; delete removes every
            // copy present right now.
            match op {
                DeltaOp::Insert(e) => live.push(e),
                DeltaOp::Delete { src, dst } => {
                    live.retain(|e| e.src() != src || e.dst() != dst);
                }
            }
            batch.ops.push(op);
        }
        batches.push(batch);
    }
    (batches, live)
}

/// Canonical sorted edge multiset for comparison.
fn canonical(edges: &[Edge]) -> Vec<(u32, u32)> {
    let mut v: Vec<(u32, u32)> = edges.iter().map(|e| (e.src(), e.dst())).collect();
    v.sort_unstable();
    v
}

/// Sorted per-vertex out-neighbor lists of a layout, via the overlay
/// iterator — what the delta kernels actually see.
fn out_neighbors<E: EdgeRecord, L: VertexLayout<E>>(layout: &L) -> Vec<Vec<u32>> {
    let out = layout.out();
    (0..out.num_vertices() as VertexId)
        .map(|v| {
            let mut ns = Vec::new();
            out.for_each_span(v, |span| {
                ns.extend(span.iter().map(EdgeRecord::dst));
                span.len()
            });
            ns.sort_unstable();
            ns
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random interleaved batches: the log's merged edge list, the
    /// overlay layout, and post-compaction snapshots all agree with a
    /// direct replay of the same ops.
    #[test]
    fn interleaved_batches_roundtrip_to_a_direct_build(
        nv in 1usize..48,
        base_raw in proptest::collection::vec((any::<u32>(), any::<u32>()), 0..64),
        raw in proptest::collection::vec(proptest::collection::vec(raw_op(), 0..12), 1..5),
    ) {
        let base_edges: Vec<Edge> = base_raw
            .iter()
            .map(|&(s, d)| Edge::new(s % nv as u32, d % nv as u32))
            .collect();
        let base = EdgeList::new(nv, base_edges.clone()).unwrap();

        // Seed the replay with the base edges so deletes can hit them.
        let mut seeded = vec![base_edges.iter().map(|e| RawOp::Insert { src: e.src(), dst: e.dst() }).collect::<Vec<_>>()];
        seeded.extend(raw.iter().cloned());
        let (batches, expected) = resolve(nv, &seeded);
        let update_batches = &batches[1..]; // batch 0 replayed the base

        // Route 1: one growing log merged into the base at the end.
        let mut log = DeltaLog::new();
        for b in update_batches {
            log.append(b);
        }
        let merged = log.merge_into(&base);
        prop_assert_eq!(canonical(merged.edges()), canonical(&expected));

        // Route 2: the overlay layout (base CSR + pending log) exposes
        // exactly the merged graph's adjacency.
        let (out, inc) = CsrBuilder::new(Strategy::RadixSort, EdgeDirection::Both)
            .sort_neighbors(true)
            .build(&base)
            .into_parts();
        let overlay = DeltaList::new(out, inc, &log);
        let direct = CsrBuilder::new(Strategy::RadixSort, EdgeDirection::Both)
            .sort_neighbors(true)
            .build(&merged);
        prop_assert_eq!(out_neighbors(&overlay), out_neighbors(&direct));

        // Route 3: batch-at-a-time with a compaction after every batch
        // — epochs advance (for non-empty batches) and the final
        // snapshot is the same multiset.
        let dgraph = DeltaGraph::new(base);
        for b in update_batches {
            dgraph.apply(b).unwrap();
            let before = dgraph.epoch();
            let stats = dgraph.compact();
            if b.is_empty() {
                prop_assert_eq!(stats.epoch, before);
            } else {
                prop_assert_eq!(stats.epoch, before + 1);
            }
            prop_assert_eq!(dgraph.pending_ops(), 0);
        }
        prop_assert_eq!(canonical(dgraph.snapshot().edges.edges()), canonical(&expected));
    }

    /// Malformed NDJSON delta lines parse to a typed [`DeltaError`] —
    /// never a panic. Structurally valid lines must satisfy the parsed
    /// op's invariants.
    #[test]
    fn malformed_ndjson_yields_typed_errors(
        bytes in proptest::collection::vec(any::<u8>(), 0..60),
    ) {
        // Arbitrary (mostly non-JSON) byte soup, lossily decoded.
        let line = String::from_utf8_lossy(&bytes).into_owned();
        match DeltaBatch::<Edge>::parse_line(&line, 1) {
            Ok(DeltaOp::Insert(_)) | Ok(DeltaOp::Delete { .. }) => {}
            Err(
                DeltaError::NotJson { .. }
                | DeltaError::MissingField { .. }
                | DeltaError::BadField { .. }
                | DeltaError::UnknownOp { .. }
                | DeltaError::VertexOutOfRange { .. },
            ) => {}
        }
    }

    /// Near-miss op lines (valid JSON shape, corrupted fields) are
    /// typed errors too, and a whole-stream parse stops at the first
    /// bad line without panicking.
    #[test]
    fn corrupted_op_streams_never_panic(
        op_bytes in proptest::collection::vec(b'a'..=b'z', 0..8),
        src in any::<i64>(),
        keep_dst in any::<bool>(),
        nv in 1usize..64,
    ) {
        let op = String::from_utf8(op_bytes).unwrap();
        let dst = if keep_dst { "\"dst\":3,".to_string() } else { String::new() };
        let text = format!(
            "{{\"op\":\"insert\",\"src\":1,\"dst\":2}}\n{{\"op\":\"{op}\",\"src\":{src},{dst}\"weight\":1.5}}\n"
        );
        match DeltaBatch::<Edge>::parse_ndjson(&text) {
            Ok(batch) => {
                // Every surviving op must still be validatable.
                let _ = batch.validate(nv);
            }
            Err(_typed) => {}
        }
    }
}

//! The update-aware conformance oracle as a test: seeded random
//! insert/delete batches against every corpus graph, with every
//! incremental result checked against a from-scratch recompute on the
//! merged graph — after every batch and after compaction.
//!
//! The quick tier always runs under `cargo test -q` (with the seeded
//! scheduler fault plan installed, so update correctness cannot depend
//! on a benign schedule). The exhaustive tier — more and bigger
//! batches, thread count 2 — is compiled in with
//! `--features exhaustive` and runs in nightly CI.
//!
//! Override the corpus seed with `EGRAPH_TEST_SEED`; failure messages
//! echo the seed in use.

use std::sync::Mutex;

use egraph_testkit::{quick_corpus, run_update_matrix, test_seed, UpdateConfig};

/// The scheduler fault plan is process-global: tests in this file that
/// enable `cfg.faults` serialize on this lock.
static FAULT_LOCK: Mutex<()> = Mutex::new(());

#[test]
fn quick_update_oracle_is_conformant() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let seed = test_seed();
    let graphs = quick_corpus(seed);
    let mut cfg = UpdateConfig::quick(seed);
    cfg.faults = true;
    let report = run_update_matrix(&graphs, &cfg);
    assert!(
        report.checks_run > 200,
        "suspiciously small update matrix: {} checks",
        report.checks_run
    );
    report.assert_clean();
}

/// A batch big enough to cross the fallback threshold must still
/// conform — the oracle sees both the repair and the recompute paths.
#[test]
fn oversized_batches_take_the_fallback_path_and_still_conform() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let seed = test_seed();
    let graphs: Vec<_> = quick_corpus(seed)
        .into_iter()
        .filter(|g| g.name == "rmat_s6")
        .collect();
    let cfg = UpdateConfig {
        batches: 2,
        // rmat_s6 has ~512 edges; 64 ops per batch is >5%.
        ops_per_batch: 64,
        ..UpdateConfig::quick(seed)
    };
    let report = run_update_matrix(&graphs, &cfg);
    report.assert_clean();
}

#[cfg(feature = "exhaustive")]
#[test]
fn exhaustive_update_oracle_is_conformant() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let seed = test_seed();
    let graphs = egraph_testkit::exhaustive_corpus(seed);
    let report = run_update_matrix(&graphs, &UpdateConfig::exhaustive(seed));
    report.assert_clean();
}

//! Compressed-CSR properties: encode→decode round-trips the sorted
//! adjacency over the conformance corpus and arbitrary graphs, and
//! arbitrary stream bytes decode to a typed error, never a panic.

use egraph_core::prelude::*;
// Explicit: both glob imports export a `Strategy` (the preprocess enum
// vs the proptest trait); the builder below means the enum.
use egraph_core::preprocess::{compress_sorted_csr, Strategy};
use egraph_testkit::corpus;
use proptest::prelude::*;

/// Neighbor id as stored in this direction (sources for in-adjacency,
/// destinations for out-adjacency).
fn neighbor_ids<E: EdgeRecord>(adj: &Adjacency<E>, v: VertexId) -> Vec<VertexId> {
    adj.neighbors(v)
        .iter()
        .map(|e| if adj.is_by_dst() { e.src() } else { e.dst() })
        .collect()
}

/// Asserts every vertex of `ccsr` decodes to exactly the sorted CSR
/// neighbor list it was encoded from, in both directions.
fn assert_roundtrip<E: EdgeRecord>(name: &str, csr: &AdjacencyList<E>, ccsr: &CcsrList<E>) {
    for (dir, (adj, compressed)) in [
        ("out", (csr.out_opt(), ccsr.out_opt())),
        ("in", (csr.incoming_opt(), ccsr.incoming_opt())),
    ] {
        let (Some(adj), Some(compressed)) = (adj, compressed) else {
            assert!(
                adj.is_none() && compressed.is_none(),
                "{name}/{dir}: directions disagree"
            );
            continue;
        };
        compressed
            .validate()
            .unwrap_or_else(|e| panic!("{name}/{dir}: fresh encoding invalid: {e}"));
        assert_eq!(
            adj.num_vertices(),
            compressed.num_vertices(),
            "{name}/{dir}"
        );
        assert_eq!(adj.num_edges(), compressed.num_edges(), "{name}/{dir}");
        for v in 0..adj.num_vertices() as VertexId {
            let decoded = compressed
                .decode_neighbors(v)
                .unwrap_or_else(|e| panic!("{name}/{dir}: vertex {v} failed to decode: {e}"));
            assert_eq!(decoded, neighbor_ids(adj, v), "{name}/{dir}: vertex {v}");
        }
    }
}

fn sorted_csr<E: EdgeRecord>(graph: &EdgeList<E>) -> AdjacencyList<E> {
    CsrBuilder::new(Strategy::RadixSort, EdgeDirection::Both)
        .sort_neighbors(true)
        .build(graph)
}

/// Every adversarial shape (empty, self loops, duplicate edges, star,
/// chain, disconnected) plus the small generated graphs round-trip.
#[test]
fn corpus_roundtrips_through_ccsr() {
    for named in corpus::quick_corpus(corpus::test_seed()) {
        let csr = sorted_csr(&named.graph);
        let ccsr = compress_sorted_csr(&csr);
        assert_roundtrip(&named.name, &csr, &ccsr);
    }
}

/// Weights ride in a flat side array: compression must keep them
/// aligned with the sorted CSR edge order.
#[test]
fn corpus_weights_survive_compression() {
    for named in corpus::quick_corpus(corpus::test_seed()) {
        let graph = corpus::weighted(&named.graph);
        let csr = sorted_csr(&graph);
        let ccsr = compress_sorted_csr(&csr);
        assert_roundtrip(&named.name, &csr, &ccsr);
        let (adj, compressed) = (csr.out(), ccsr.out());
        for v in 0..adj.num_vertices() as VertexId {
            let want: Vec<f32> = adj.neighbors(v).iter().map(|e| e.weight()).collect();
            assert_eq!(
                compressed.weights_of(v),
                &want[..],
                "{}: vertex {v}",
                named.name
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Arbitrary directed multigraphs (self loops and duplicates
    /// included) round-trip through the compressed encoding.
    #[test]
    fn random_graphs_roundtrip(
        nv in 1usize..120,
        raw in proptest::collection::vec((any::<u32>(), any::<u32>()), 0..400),
    ) {
        let edges: Vec<Edge> = raw
            .iter()
            .map(|&(s, d)| Edge::new(s % nv as u32, d % nv as u32))
            .collect();
        let graph = EdgeList::new(nv, edges).unwrap();
        let csr = sorted_csr(&graph);
        let ccsr = compress_sorted_csr(&csr);
        assert_roundtrip("random", &csr, &ccsr);
    }

    /// Arbitrary bytes presented as a vertex's encoded stream decode to
    /// `Ok` or a typed `CcsrError` — never a panic, never an
    /// out-of-range neighbor.
    #[test]
    fn arbitrary_stream_bytes_never_panic(
        degree in 1usize..200,
        bytes in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let adj: CcsrAdjacency<Edge> = CcsrAdjacency::from_parts(
            1,
            false,
            vec![0, degree as u64],
            vec![0, bytes.len() as u64],
            bytes,
            Vec::new(),
        );
        match adj.decode_neighbors(0) {
            Ok(decoded) => {
                prop_assert_eq!(decoded.len(), degree);
                prop_assert!(decoded.iter().all(|&n| n < 1));
            }
            Err(_typed) => {}
        }
        let _ = adj.validate();
    }
}

//! End-to-end tests of `egraph serve`: spawn the real binary on an
//! ephemeral port, hit it with concurrent clients and check the
//! batched answers are bit-identical to single-query runs through the
//! same `run_variant` resolver `egraph run` uses.

use std::fs::File;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, ChildStdout, Command, Stdio};
use std::sync::Barrier;
use std::time::Duration;

use egraph_cli::commands::dispatch;
use egraph_core::exec::ExecCtx;
use egraph_core::telemetry::json::{self, Value};
use egraph_core::types::{Edge, EdgeList};
use egraph_core::variant::{run_variant, PreparedGraph, RunParams, VariantId};

fn argv(items: &[&str]) -> Vec<String> {
    items.iter().map(|s| s.to_string()).collect()
}

fn tmp(name: &str) -> String {
    let dir = std::env::temp_dir().join("egraph-serve-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name).to_string_lossy().into_owned()
}

/// A spawned `egraph serve` child plus the address it announced.
struct Server {
    child: Child,
    addr: String,
    stdout: BufReader<ChildStdout>,
}

impl Server {
    fn spawn(path: &str, extra: &[&str]) -> Self {
        let mut child = Command::new(env!("CARGO_BIN_EXE_egraph"))
            .arg("serve")
            .arg(path)
            .args(["--listen", "127.0.0.1:0"])
            .args(extra)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn egraph serve");
        let mut stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
        let mut line = String::new();
        let addr = loop {
            line.clear();
            let n = stdout.read_line(&mut line).expect("read serve stdout");
            assert!(n > 0, "serve exited before announcing its address");
            if let Some(rest) = line.trim().strip_prefix("serving on ") {
                break rest.to_string();
            }
        };
        Server {
            child,
            addr,
            stdout,
        }
    }

    /// Closes stdin (the portable shutdown trigger), waits for exit and
    /// returns the remaining stdout.
    fn shutdown(mut self) -> String {
        drop(self.child.stdin.take());
        let status = self.child.wait().expect("serve exit status");
        assert!(status.success(), "serve exited with {status}");
        let mut rest = String::new();
        let mut line = String::new();
        while self.stdout.read_line(&mut line).unwrap_or(0) > 0 {
            rest.push_str(&line);
            line.clear();
        }
        rest
    }
}

fn connect(addr: &str) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect to serve");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    stream
}

fn roundtrip(stream: &mut TcpStream, request: &str) -> Value {
    stream.write_all(request.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).expect("response line");
    json::parse(line.trim()).expect("valid json response")
}

fn field<'a>(v: &'a Value, name: &str) -> &'a Value {
    v.as_object()
        .and_then(|o| o.iter().find(|(k, _)| k == name).map(|(_, v)| v))
        .unwrap_or(&Value::Null)
}

fn generate_unweighted(name: &str) -> String {
    let path = tmp(name);
    dispatch(&argv(&[
        "generate", "rmat", "--scale", "10", "--out", &path, "--seed", "5",
    ]))
    .expect("generate rmat");
    path
}

/// Single-query reference levels through the same resolver `egraph
/// run` dispatches to.
fn reference_levels(path: &str, root: u32) -> Vec<u32> {
    let graph: EdgeList<Edge> =
        egraph_storage::read_edge_list(BufReader::new(File::open(path).unwrap())).unwrap();
    let prepared = PreparedGraph::new(&graph);
    let id: VariantId = "bfs/adj/push".parse().unwrap();
    let run = run_variant(
        &id,
        &ExecCtx::new(None),
        &prepared,
        &RunParams {
            root,
            ..RunParams::default()
        },
    )
    .unwrap();
    run.output.as_bfs().unwrap().level.clone()
}

#[test]
fn concurrent_batched_queries_match_single_query_runs() {
    let path = generate_unweighted("serve_rmat.egr");
    // A wide batching window so the concurrent clients land in one wave.
    let server = Server::spawn(&path, &["--batch-window-ms", "200"]);

    let clients = 8usize;
    let roots: Vec<u32> = (0..clients as u32).map(|i| i * 97 % 1024).collect();
    let expected: Vec<Vec<u32>> = roots.iter().map(|&r| reference_levels(&path, r)).collect();

    let barrier = Barrier::new(clients);
    let addr = server.addr.clone();
    let wave_sizes: Vec<u64> = std::thread::scope(|s| {
        let handles: Vec<_> = roots
            .iter()
            .map(|&root| {
                let (addr, barrier) = (&addr, &barrier);
                s.spawn(move || {
                    let mut stream = connect(addr);
                    barrier.wait();
                    let request = format!(
                        "{{\"id\":{root},\"algo\":\"bfs\",\"source\":{root},\"values\":true}}"
                    );
                    let response = roundtrip(&mut stream, &request);
                    assert_eq!(field(&response, "ok"), &Value::Bool(true), "{response:?}");
                    let values = field(&response, "values").as_array().unwrap().to_vec();
                    let wave = field(&response, "wave_size").as_number().unwrap() as u64;
                    (values, wave)
                })
            })
            .collect();
        handles
            .into_iter()
            .zip(&expected)
            .map(|(h, want)| {
                let (values, wave) = h.join().unwrap();
                assert_eq!(values.len(), want.len(), "level array length");
                for (v, &w) in values.iter().zip(want) {
                    match v {
                        Value::Null => assert_eq!(w, u32::MAX, "unreachable mismatch"),
                        v => assert_eq!(v.as_number(), Some(f64::from(w)), "level mismatch"),
                    }
                }
                wave
            })
            .collect()
    });
    // The 200 ms window must have merged at least some of the eight
    // simultaneous queries into one multi-source wave.
    assert!(
        wave_sizes.iter().any(|&w| w > 1),
        "no batching observed: wave sizes {wave_sizes:?}"
    );

    let log = server.shutdown();
    assert!(log.contains("serve: clean shutdown"), "{log}");
}

#[test]
fn identical_queries_share_a_checksum_across_waves() {
    let path = generate_unweighted("serve_rmat_checksum.egr");
    let server = Server::spawn(&path, &["--batch-window-ms", "1"]);
    let mut stream = connect(&server.addr);
    let first = roundtrip(&mut stream, r#"{"id":1,"algo":"bfs","source":3}"#);
    let second = roundtrip(&mut stream, r#"{"id":2,"algo":"bfs","source":3}"#);
    assert_eq!(field(&first, "ok"), &Value::Bool(true));
    assert_eq!(
        field(&first, "checksum").as_str(),
        field(&second, "checksum").as_str(),
        "the same query must produce bit-identical results in any wave"
    );
    server.shutdown();
}

#[test]
fn mid_flight_disconnect_does_not_wedge_the_daemon() {
    let path = generate_unweighted("serve_rmat_disconnect.egr");
    let server = Server::spawn(&path, &["--batch-window-ms", "100"]);

    // Fire a query and slam the connection before the wave completes.
    {
        let mut stream = connect(&server.addr);
        stream
            .write_all(b"{\"id\":9,\"algo\":\"bfs\",\"source\":1}\n")
            .unwrap();
        // Dropped here, mid-flight.
    }
    // The daemon must still answer subsequent queries.
    let mut stream = connect(&server.addr);
    let response = roundtrip(
        &mut stream,
        r#"{"id":10,"algo":"khop","source":0,"depth":2}"#,
    );
    assert_eq!(field(&response, "ok"), &Value::Bool(true), "{response:?}");

    let log = server.shutdown();
    assert!(log.contains("serve: clean shutdown"), "{log}");
}

#[test]
fn serve_rejects_bad_listen_address_with_typed_error() {
    let path = generate_unweighted("serve_rmat_badaddr.egr");
    let output = Command::new(env!("CARGO_BIN_EXE_egraph"))
        .args(["serve", &path, "--listen", "256.256.256.256:1"])
        .output()
        .expect("run egraph serve");
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("256.256.256.256:1"),
        "error must name the address: {stderr}"
    );
}

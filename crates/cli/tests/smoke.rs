//! In-process smoke tests of every CLI subcommand.

use egraph_cli::commands::dispatch;

fn argv(items: &[&str]) -> Vec<String> {
    items.iter().map(|s| s.to_string()).collect()
}

fn tmp(name: &str) -> String {
    let dir = std::env::temp_dir().join("egraph-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name).to_string_lossy().into_owned()
}

#[test]
fn generate_info_run_roundtrip() {
    let path = tmp("smoke_rmat.egr");
    dispatch(&argv(&[
        "generate", "rmat", "--scale", "10", "--out", &path, "--seed", "5",
    ]))
    .expect("generate");
    dispatch(&argv(&["info", &path])).expect("info");
    dispatch(&argv(&[
        "run", "bfs", &path, "--layout", "adj", "--flow", "push",
    ]))
    .expect("bfs adj push");
    dispatch(&argv(&[
        "run",
        "bfs",
        &path,
        "--layout",
        "adj",
        "--flow",
        "push-pull",
    ]))
    .expect("bfs push-pull");
    dispatch(&argv(&["run", "bfs", &path, "--layout", "edge"])).expect("bfs edge");
    dispatch(&argv(&[
        "run", "bfs", &path, "--layout", "grid", "--side", "4",
    ]))
    .expect("bfs grid");
    dispatch(&argv(&[
        "run", "pagerank", &path, "--layout", "grid", "--flow", "pull", "--side", "4", "--iters",
        "3",
    ]))
    .expect("pagerank grid pull");
    dispatch(&argv(&["run", "wcc", &path, "--layout", "edge"])).expect("wcc edge");
    dispatch(&argv(&["partition", &path, "--nodes", "4"])).expect("partition");
}

#[test]
fn weighted_pipeline() {
    let path = tmp("smoke_weighted.egr");
    dispatch(&argv(&[
        "generate",
        "road",
        "--scale",
        "8",
        "--out",
        &path,
        "--weighted",
        "true",
    ]))
    .expect("generate weighted road");
    dispatch(&argv(&["run", "sssp", &path, "--layout", "adj"])).expect("sssp");
    dispatch(&argv(&["run", "spmv", &path, "--layout", "edge"])).expect("spmv");
}

#[test]
fn netflix_generator() {
    let path = tmp("smoke_netflix.egr");
    dispatch(&argv(&[
        "generate",
        "netflix",
        "--out",
        &path,
        "--users",
        "100",
        "--items",
        "20",
        "--ratings",
        "5",
    ]))
    .expect("generate netflix");
    dispatch(&argv(&["info", &path])).expect("info netflix");
}

#[test]
fn advise_all_machines() {
    for machine in ["a", "b", "single"] {
        dispatch(&argv(&[
            "advise",
            "--algo",
            "pagerank",
            "--machine",
            machine,
        ]))
        .expect("advise");
    }
}

#[test]
fn errors_are_reported_not_panicked() {
    assert!(dispatch(&argv(&[])).is_err(), "no command");
    assert!(dispatch(&argv(&["frobnicate"])).is_err(), "unknown command");
    assert!(
        dispatch(&argv(&["run", "bfs", "/nonexistent.egr"])).is_err(),
        "missing file"
    );
    assert!(
        dispatch(&argv(&["generate", "rmat", "--scale", "8"])).is_err(),
        "missing --out"
    );
    let path = tmp("smoke_err.egr");
    dispatch(&argv(&["generate", "rmat", "--scale", "8", "--out", &path])).unwrap();
    assert!(
        dispatch(&argv(&["run", "sssp", &path])).is_err(),
        "sssp needs weights"
    );
    assert!(
        dispatch(&argv(&["run", "bfs", &path, "--root", "999999999"])).is_err(),
        "root out of range"
    );
    assert!(
        dispatch(&argv(&["run", "bfs", &path, "--bogus-flag", "1"])).is_err(),
        "unknown flag"
    );
}

#[test]
fn trace_out_writes_full_document() {
    let graph = tmp("smoke_trace.egr");
    let trace = tmp("smoke_trace.json");
    dispatch(&argv(&[
        "generate", "rmat", "--scale", "10", "--out", &graph,
    ]))
    .unwrap();
    dispatch(&argv(&[
        "run",
        "bfs",
        &graph,
        "--flow",
        "push-pull",
        "--trace-out",
        &trace,
    ]))
    .expect("bfs with --trace-out");
    let text = std::fs::read_to_string(&trace).expect("trace file written");
    // TimeBreakdown phases.
    for key in ["\"load\"", "\"preprocess\"", "\"algorithm\"", "\"total\""] {
        assert!(text.contains(key), "breakdown key {key} missing: {text}");
    }
    // At least one per-iteration record with the direction fields.
    for key in ["\"frontier_size\"", "\"edges_scanned\"", "\"mode\""] {
        assert!(text.contains(key), "iteration key {key} missing: {text}");
    }
    // Pool and storage counters.
    for key in [
        "engine.edges_examined",
        "pool.steals",
        "pool.busy_seconds_total",
        "storage.bytes_read",
    ] {
        assert!(text.contains(key), "counter {key} missing: {text}");
    }
    // The document round-trips through the core parser.
    let parsed = egraph_core::telemetry::RunTrace::from_json(&text).expect("valid trace json");
    assert_eq!(parsed.algorithm, "bfs");
    assert!(!parsed.iterations.is_empty(), "no iteration records");
    // Schema v2: per-phase profiles plus a record of which hardware
    // counters opened ("unavailable" on restricted hosts — the run must
    // still succeed there).
    assert!(
        parsed.config.contains_key("hw_counters"),
        "missing hw_counters config entry: {text}"
    );
    for phase in ["load", "preprocess", "algorithm"] {
        let p = parsed
            .phases
            .iter()
            .find(|p| p.name == phase)
            .unwrap_or_else(|| panic!("missing phase profile '{phase}': {text}"));
        assert!(p.seconds >= 0.0);
        if parsed.config["hw_counters"] != "unavailable" {
            assert!(
                !p.hardware.is_empty(),
                "counters opened but phase '{phase}' recorded none"
            );
        }
    }
}

#[test]
fn trace_out_csv_format() {
    let graph = tmp("smoke_trace_csv.egr");
    let trace = tmp("smoke_trace.csv");
    dispatch(&argv(&[
        "generate", "rmat", "--scale", "9", "--out", &graph,
    ]))
    .unwrap();
    dispatch(&argv(&[
        "run",
        "pagerank",
        &graph,
        "--iters",
        "3",
        "--trace-out",
        &trace,
        "--trace-format",
        "csv",
    ]))
    .expect("pagerank with csv trace");
    let text = std::fs::read_to_string(&trace).expect("trace file written");
    let mut lines = text.lines();
    assert!(lines.next().unwrap().starts_with("record,"), "csv header");
    assert!(
        text.lines().filter(|l| l.starts_with("iteration,")).count() >= 3,
        "expected one csv row per pagerank iteration: {text}"
    );
    assert!(
        dispatch(&argv(&[
            "run",
            "bfs",
            &graph,
            "--trace-out",
            &trace,
            "--trace-format",
            "bogus",
        ]))
        .is_err(),
        "unknown trace format"
    );
}

#[test]
fn trace_diff_gates_on_regression() {
    let graph = tmp("smoke_diff.egr");
    let old_path = tmp("smoke_diff_old.json");
    let new_path = tmp("smoke_diff_new.json");
    dispatch(&argv(&[
        "generate", "rmat", "--scale", "9", "--out", &graph,
    ]))
    .unwrap();
    dispatch(&argv(&["run", "bfs", &graph, "--trace-out", &old_path])).expect("baseline run");
    // Identical traces: the gate passes.
    dispatch(&argv(&["trace", "diff", &old_path, &old_path])).expect("identical traces");
    // Pin the algorithm phase above the noise floor, then slow a copy
    // down 2x: the gate must fail with the default 10% threshold.
    let mut old =
        egraph_core::telemetry::RunTrace::from_json(&std::fs::read_to_string(&old_path).unwrap())
            .unwrap();
    old.breakdown.algorithm = 1.0;
    std::fs::write(&old_path, old.to_json()).unwrap();
    let mut new = old.clone();
    new.breakdown.algorithm = 2.0;
    std::fs::write(&new_path, new.to_json()).unwrap();
    assert!(
        dispatch(&argv(&["trace", "diff", &old_path, &new_path])).is_err(),
        "2x algorithm slowdown must trip the gate"
    );
    // A looser threshold tolerates the same slowdown.
    dispatch(&argv(&[
        "trace",
        "diff",
        &old_path,
        &new_path,
        "--threshold",
        "150",
    ]))
    .expect("150% threshold tolerates a 100% slowdown");
    // The gate reads CSV baselines too, sniffing the format.
    let old_csv = tmp("smoke_diff_old.csv");
    std::fs::write(&old_csv, old.to_csv()).unwrap();
    assert!(
        dispatch(&argv(&["trace", "diff", &old_csv, &new_path])).is_err(),
        "csv baseline vs json candidate"
    );
    assert!(
        dispatch(&argv(&["trace", "frobnicate"])).is_err(),
        "unknown trace subcommand"
    );
}

#[test]
fn trace_out_emits_v4_schema_with_memory_section() {
    let graph = tmp("smoke_v4.egr");
    let trace = tmp("smoke_v4.json");
    dispatch(&argv(&[
        "generate", "rmat", "--scale", "9", "--out", &graph,
    ]))
    .unwrap();
    dispatch(&argv(&["run", "bfs", &graph, "--trace-out", &trace])).expect("bfs with trace");
    let text = std::fs::read_to_string(&trace).unwrap();
    assert!(
        text.contains("egraph-trace/4"),
        "trace must declare the v4 schema: {text}"
    );
    let parsed = egraph_core::telemetry::RunTrace::from_json(&text).unwrap();
    assert_eq!(parsed.schema, egraph_core::telemetry::TRACE_SCHEMA);
    // Every profiled phase carries the memory section. Without the
    // alloc-track build the allocator fields read zero, but the RSS
    // fallback fills in on any Linux host.
    for phase in ["load", "algorithm"] {
        let p = parsed.phases.iter().find(|p| p.name == phase).unwrap();
        let mem = p
            .memory
            .unwrap_or_else(|| panic!("phase '{phase}' missing memory section: {text}"));
        if std::path::Path::new("/proc/self/statm").exists() {
            assert!(mem.end_rss_bytes > 0, "rss fallback should be non-zero");
        }
    }
}

#[test]
fn trace_diff_gates_on_peak_memory_regression() {
    use egraph_core::telemetry::PhaseMemory;
    let graph = tmp("smoke_memdiff.egr");
    let old_path = tmp("smoke_memdiff_old.json");
    let new_path = tmp("smoke_memdiff_new.json");
    dispatch(&argv(&[
        "generate", "rmat", "--scale", "9", "--out", &graph,
    ]))
    .unwrap();
    dispatch(&argv(&["run", "bfs", &graph, "--trace-out", &old_path])).expect("baseline run");
    let mut old =
        egraph_core::telemetry::RunTrace::from_json(&std::fs::read_to_string(&old_path).unwrap())
            .unwrap();
    // Pin a real peak on the algorithm phase, then double it in a copy:
    // the memory gate must trip at the default 10% threshold.
    let algo = old
        .phases
        .iter_mut()
        .find(|p| p.name == "algorithm")
        .expect("algorithm phase profiled");
    algo.memory = Some(PhaseMemory {
        allocated_bytes: 96 << 20,
        freed_bytes: 32 << 20,
        peak_bytes: 64 << 20,
        end_rss_bytes: 128 << 20,
    });
    std::fs::write(&old_path, old.to_json()).unwrap();
    let mut new = old.clone();
    new.phases
        .iter_mut()
        .find(|p| p.name == "algorithm")
        .unwrap()
        .memory
        .as_mut()
        .unwrap()
        .peak_bytes = 128 << 20;
    std::fs::write(&new_path, new.to_json()).unwrap();
    assert!(
        dispatch(&argv(&["trace", "diff", &old_path, &new_path])).is_err(),
        "2x peak-memory growth must trip the gate"
    );
    dispatch(&argv(&[
        "trace",
        "diff",
        &old_path,
        &new_path,
        "--threshold",
        "150",
    ]))
    .expect("150% threshold tolerates a 100% growth");
    // Raising the floor above both peaks declares the metric noise.
    dispatch(&argv(&[
        "trace",
        "diff",
        &old_path,
        &new_path,
        "--min-bytes",
        "1073741824",
    ]))
    .expect("--min-bytes above both peaks disarms the memory gate");
}

#[test]
fn trace_diff_rejects_unknown_schema_with_its_tag() {
    let bogus = tmp("smoke_future.json");
    std::fs::write(
        &bogus,
        "{\"schema\": \"egraph-trace/9\", \"algorithm\": \"bfs\"}",
    )
    .unwrap();
    let err = dispatch(&argv(&["trace", "diff", &bogus, &bogus]))
        .expect_err("future schema must be refused");
    let msg = err.to_string();
    assert!(
        msg.contains("egraph-trace/9"),
        "error must name the offending schema tag: {msg}"
    );
    assert!(
        msg.contains("egraph-trace/4"),
        "error must list what this build reads: {msg}"
    );
}

#[test]
fn run_with_metrics_addr_serves_and_matches_trace() {
    let graph = tmp("smoke_metrics.egr");
    let trace = tmp("smoke_metrics.json");
    dispatch(&argv(&[
        "generate", "rmat", "--scale", "9", "--out", &graph,
    ]))
    .unwrap();
    dispatch(&argv(&[
        "run",
        "pagerank",
        &graph,
        "--iters",
        "3",
        "--trace-out",
        &trace,
        "--metrics-addr",
        "127.0.0.1:0",
    ]))
    .expect("run with --metrics-addr");
    let parsed =
        egraph_core::telemetry::RunTrace::from_json(&std::fs::read_to_string(&trace).unwrap())
            .unwrap();
    // The registry is process-global, so the teed counters are still
    // readable after the endpoint shut down — and only this test drives
    // them, so the totals must equal what the trace recorded.
    let text = egraph_metrics::global().render();
    for name in [
        "egraph_pool_steals_total",
        "egraph_pool_busy_seconds_total",
        "egraph_storage_bytes_read_total",
        "egraph_alloc_live_bytes",
        "egraph_algo_iterations_total",
        "egraph_algo_step_seconds_bucket",
    ] {
        assert!(text.contains(name), "missing metric {name}:\n{text}");
    }
    let iterations = text
        .lines()
        .find_map(|l| l.strip_prefix("egraph_algo_iterations_total "))
        .expect("iterations sample present")
        .trim()
        .parse::<f64>()
        .unwrap();
    assert_eq!(iterations as usize, parsed.iterations.len());
}

#[test]
fn timeline_out_writes_chrome_trace() {
    let graph = tmp("smoke_timeline.egr");
    let out = tmp("smoke_timeline.json");
    dispatch(&argv(&[
        "generate", "rmat", "--scale", "10", "--out", &graph,
    ]))
    .unwrap();
    dispatch(&argv(&[
        "run",
        "bfs",
        &graph,
        "--flow",
        "push",
        "--timeline-out",
        &out,
    ]))
    .expect("bfs with --timeline-out");
    let text = std::fs::read_to_string(&out).expect("timeline written");
    // Chrome trace-event shape: one traceEvents array, per-worker
    // thread_name metadata, "X" complete events with microsecond
    // timestamps, and push/pull direction annotations on engine steps.
    assert!(text.starts_with("{\"traceEvents\":["), "shape: {text}");
    assert!(text.ends_with("]}"));
    assert!(text.contains("\"ph\":\"M\""), "thread_name metadata");
    assert!(text.contains("\"args\":{\"name\":\"worker 0\"}"));
    assert!(text.contains("\"ph\":\"X\""), "complete events");
    assert!(text.contains("\"cat\":\"region\""), "pool region spans");
    assert!(
        text.contains("\"name\":\"vertex_push\""),
        "engine step span"
    );
    assert!(text.contains("\"args\":{\"direction\":\"push\"}"));
    assert!(text.contains("\"ts\":"));
    assert!(text.contains("\"dur\":"));
}

#[test]
fn help_prints() {
    dispatch(&argv(&["help"])).expect("help");
}

#[test]
fn save_results_roundtrip() {
    let graph = tmp("smoke_save.egr");
    let out = tmp("smoke_save_result.egr");
    dispatch(&argv(&[
        "generate", "rmat", "--scale", "9", "--out", &graph,
    ]))
    .unwrap();
    dispatch(&argv(&["run", "bfs", &graph, "--save", &out])).expect("bfs --save");
    let parents =
        egraph_storage::read_u32_result(std::fs::File::open(&out).unwrap()).expect("readable");
    assert_eq!(parents.len(), 512);
}

#[test]
fn convert_roundtrips_through_text() {
    let bin1 = tmp("smoke_conv.egr");
    let snap = tmp("smoke_conv.txt");
    let bin2 = tmp("smoke_conv2.egr");
    dispatch(&argv(&["generate", "rmat", "--scale", "8", "--out", &bin1])).unwrap();
    dispatch(&argv(&["convert", &bin1, &snap])).expect("bin -> snap");
    dispatch(&argv(&["convert", &snap, &bin2])).expect("snap -> bin");
    let a = egraph_storage::read_edge_list::<egraph_core::types::Edge, _>(
        std::fs::File::open(&bin1).unwrap(),
    )
    .unwrap();
    let b = egraph_storage::read_edge_list::<egraph_core::types::Edge, _>(
        std::fs::File::open(&bin2).unwrap(),
    )
    .unwrap();
    assert_eq!(a.edges(), b.edges());
}

#[test]
fn convert_reads_dimacs() {
    let gr = tmp("smoke_conv.gr");
    std::fs::write(&gr, "c tiny\np sp 3 2\na 1 2 4\na 2 3 6\n").unwrap();
    let out = tmp("smoke_conv_dimacs.egr");
    dispatch(&argv(&["convert", &gr, &out])).expect("dimacs -> bin");
    dispatch(&argv(&["run", "sssp", &out])).expect("sssp on converted dimacs");
}

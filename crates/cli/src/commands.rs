//! Subcommand implementations.

use std::error::Error;
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::time::Instant;

use egraph_core::algo::pagerank;
use egraph_core::exec::ExecCtx;
use egraph_core::metrics::{StepMode, TimeBreakdown};
use egraph_core::preprocess::Strategy;
use egraph_core::roadmap;
use egraph_core::serve::{ServeConfig, ServeDaemon, ServeGraph};
use egraph_core::telemetry::{PhaseProfiler, Recorder, RunTrace, TraceFormat, TraceRecorder};
use egraph_core::trace_diff::{diff_traces, DiffOptions};
use egraph_core::types::{Edge, EdgeList, EdgeRecord, WEdge};
use egraph_core::variant::{
    run_variant, Algo, Direction, Layout, PreparedGraph, RunParams, SyncMode, VariantId,
    VariantOutput,
};
use egraph_numa::Topology;
use egraph_parallel::timeline;
use egraph_storage::{read_edge_list, write_edge_list, FormatError};

use crate::args::Args;

/// Top-level usage text.
pub const USAGE: &str = "\
egraph — multicore graph processing, every technique selectable

USAGE:
  egraph generate <rmat|twitter|road|netflix|uniform> --out FILE [options]
  egraph info <FILE>
  egraph run <bfs|pagerank|sssp|wcc|spmv> <FILE> [options]
  egraph serve <FILE> --listen H:P [options]
  egraph update <FILE> --deltas FILE.ndjson --out FILE  (offline merge)
  egraph update --to H:P --deltas FILE.ndjson [--compact false]
  egraph advise [--algo A] [--vertices N] [--edges M] [--machine a|b|single]
  egraph partition <FILE> [--nodes N]
  egraph convert <IN> <OUT> [--from snap|dimacs|bin] [--to snap|bin] [--weighted true]
  egraph trace diff <OLD> <NEW> [--threshold PCT] [--min-seconds S] [--min-bytes B]
  egraph explain <TRACE>   (per-iteration report: table, density sparkline,
                            and an English narrative of every push/pull switch
                            reconstructed from the trace's decision log)
  egraph conformance [--threads LIST] [--seed N] [--full true]

GENERATE OPTIONS:
  --scale N        log2 of the vertex count (default 16)
  --edge-factor N  edges per vertex for rmat/uniform (default 16)
  --seed N         RNG seed (default 42)
  --width/--height lattice dimensions for road
  --users/--items/--ratings   bipartite shape for netflix
  --weighted true  attach deterministic weights (rmat/road/uniform)

RUN OPTIONS:
  --layout adj|edge|grid|ccsr|delta   data layout (default adj)
  --flow push|pull|push-pull   information flow (default push)
  --sync locks|atomics     synchronization for push (default atomics)
  --strategy radix|count|dynamic   pre-processing (default radix)
  --root N     source vertex for bfs/sssp (default 0)
  --iters N    PageRank iterations (default 10)
  --side N     grid side (default 256 clamped to the graph)
  --sorted true    sort per-vertex neighbor arrays
  --save FILE  store the result array (the end-to-end 'store' phase)
  --threads N  worker threads (or EGRAPH_THREADS)
  --trace-out FILE     write a run-wide telemetry trace (time breakdown,
                       per-iteration records, pool and storage counters,
                       per-phase hardware counters when the host allows)
  --trace-format json|csv   trace file format (default json)
  --timeline-out FILE  write per-worker timeline spans as Chrome
                       trace-event JSON (open in about:tracing/Perfetto)
  --metrics-addr H:P   serve live Prometheus metrics at
                       http://H:P/metrics (plus /healthz) for the
                       duration of the run; port 0 picks a free port
                       and prints the bound address
  --metrics-linger S   keep serving S seconds after the run finishes
                       (default 0), so scrapers can catch the totals

SERVE OPTIONS:
  --listen H:P     query daemon address (required); port 0 picks a
                   free port — the bound address is printed either way
  --threads N      worker threads for wave execution (default: all)
  --max-wave N     most queries batched into one multi-source wave
                   (default 64, the bit-packed frontier width)
  --batch-window-ms MS   how long an admitted query waits for
                   companions before its wave launches anyway (default 2)
  --layout adj|grid|ccsr|delta   resident index layout (default adj);
                   the query-port /healthz reports the chosen layout
                   and its resident bytes once loading completes
  --metrics-addr / --metrics-linger   as for run; /healthz reports
                   'loading' until the layout build finishes
  --slow-query-ms MS   log any query whose total latency reaches MS
                   milliseconds to stderr as one NDJSON line
                   (0 logs every query; off by default)
  --journal-capacity N   flight-recorder ring size in events
                   (default 1024, 0 disables); the query port answers
                   HTTP GET /debug/queries?n=K with the last K
                   completed queries as NDJSON (each line carries the
                   graph epoch its wave executed against)
  --timeline-out FILE  as for run: write per-worker timeline spans of
                   the daemon's lifetime as Chrome trace-event JSON
                   when the daemon shuts down
  The query-port /healthz line also reports queue_depth and inflight.
  The daemon answers newline-delimited JSON point queries
  ({\"id\":1,\"algo\":\"bfs|sssp|khop\",\"source\":N[,\"depth\":K][,\"values\":true]})
  plus edge-delta ops ({\"op\":\"insert|delete\",\"src\":N,\"dst\":N} and
  {\"op\":\"compact\"}) on the same port, and shuts down cleanly on
  SIGINT, SIGTERM or stdin EOF.

UPDATE OPTIONS:
  --deltas FILE    NDJSON edge-delta stream (required): one
                   {\"op\":\"insert\",\"src\":N,\"dst\":N[,\"weight\":W]} or
                   {\"op\":\"delete\",\"src\":N,\"dst\":N} object per line
  --out FILE       offline mode: merge the stream into <FILE> and
                   write the resulting edge list here
  --to H:P         streaming mode: forward each op to a running
                   `egraph serve` daemon instead of merging locally
  --compact true|false   streaming mode: finish with a {\"op\":\"compact\"}
                   so the daemon republishes at a new epoch (default true)
  --trace-out / --trace-format   offline mode: write a telemetry trace
                   whose 'compact' phase times the merge

TRACE DIFF OPTIONS:
  --threshold PCT   relative slowdown that counts as a regression
                    (default 10); exits non-zero when exceeded
  --min-seconds S   ignore time metrics where both runs stayed under
                    S seconds (default 0.001)
  --min-bytes B     ignore peak-memory metrics where both runs stayed
                    under B bytes (default 1048576)
  --serve-latency true|false   also gate on serve.latency.* percentile
                    counters exported by exp_serve_latency traces
                    (default false; absent counters never gate)

CONFORMANCE OPTIONS:
  --threads LIST   comma-separated thread counts (default 1,4,8)
  --seed N         corpus seed (default EGRAPH_TEST_SEED or built-in)
  --full true      exhaustive tier: larger corpus, thread count 2,
                   paper iteration counts (the nightly-CI matrix)
  Both tiers also run the update oracle: seeded insert/delete batches
  against every corpus graph, with delta-layout and incremental
  results checked against from-scratch recompute after every batch
  and after compaction (--full adds scheduler fault injection)
  --metrics-addr / --metrics-linger   as for run";

type CliResult = Result<(), Box<dyn Error>>;

/// A deliberate non-zero exit (a failed gate, not a usage mistake):
/// `main` reports it without reprinting the usage text.
#[derive(Debug)]
pub struct GateFailure(pub String);

impl std::fmt::Display for GateFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl Error for GateFailure {}

/// Dispatches a parsed command line.
pub fn dispatch(argv: &[String]) -> CliResult {
    let args = Args::parse(argv)?;
    if args.positional_len() == 0 {
        return Err("no command given".into());
    }
    match args.positional(0, "command")? {
        "generate" => cmd_generate(&args),
        "info" => cmd_info(&args),
        "run" => cmd_run(&args),
        "serve" => cmd_serve(&args),
        "update" => cmd_update(&args),
        "advise" => cmd_advise(&args),
        "partition" => cmd_partition(&args),
        "convert" => cmd_convert(&args),
        "trace" => cmd_trace(&args),
        "explain" => cmd_explain(&args),
        "conformance" => cmd_conformance(&args),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'").into()),
    }
}

fn cmd_generate(args: &Args) -> CliResult {
    let kind = args.positional(1, "generator kind")?.to_string();
    let out = args
        .get("out")
        .ok_or("generate needs --out FILE")?
        .to_string();
    let scale: u32 = args.get_parsed_or("scale", 16, "integer")?;
    let seed: u64 = args.get_parsed_or("seed", 42, "integer")?;
    let edge_factor: usize = args.get_parsed_or("edge-factor", 16, "integer")?;
    let weighted = args.get_or("weighted", "false") == "true";

    let started = Instant::now();
    let unweighted: Option<EdgeList<Edge>> = match kind.as_str() {
        "rmat" => Some(egraph_graphgen::rmat(scale, edge_factor, seed)),
        "twitter" => Some(egraph_graphgen::twitter_like(scale, seed)),
        "road" => {
            let nv = 1usize << scale;
            let width: usize =
                args.get_parsed_or("width", (nv as f64 / 4.0).sqrt() as usize, "integer")?;
            let height: usize = args.get_parsed_or("height", nv / width.max(1), "integer")?;
            Some(egraph_graphgen::road_like(width, height))
        }
        "uniform" => Some(egraph_graphgen::uniform(
            1usize << scale,
            edge_factor << scale,
            seed,
        )),
        "netflix" => {
            let users: usize = args.get_parsed_or("users", 1usize << scale, "integer")?;
            let items: usize = args.get_parsed_or("items", (users / 32).max(16), "integer")?;
            let ratings: usize = args.get_parsed_or("ratings", 40, "integer")?;
            args.reject_unknown()?;
            let graph = egraph_graphgen::netflix_like(users, items, ratings, seed);
            let mut w = BufWriter::new(File::create(&out)?);
            write_edge_list(&mut w, &graph)?;
            println!(
                "wrote {} ({} users + {} items, {} weighted ratings) in {:.2}s",
                out,
                users,
                items,
                graph.num_edges(),
                started.elapsed().as_secs_f64()
            );
            return Ok(());
        }
        other => return Err(format!("unknown generator '{other}'").into()),
    };
    args.reject_unknown()?;

    let graph = unweighted.expect("handled above");
    let mut w = BufWriter::new(File::create(&out)?);
    if weighted {
        let weighted_graph: EdgeList<WEdge> = graph.map_records(|e| {
            let h = (e.src as u64 ^ ((e.dst as u64) << 32)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            WEdge::new(e.src, e.dst, 0.25 + (h >> 40) as f32 % 16.0)
        });
        write_edge_list(&mut w, &weighted_graph)?;
    } else {
        write_edge_list(&mut w, &graph)?;
    }
    println!(
        "wrote {} ({} vertices, {} edges{}) in {:.2}s",
        out,
        graph.num_vertices(),
        graph.num_edges(),
        if weighted { ", weighted" } else { "" },
        started.elapsed().as_secs_f64()
    );
    Ok(())
}

/// Loads a file as unweighted or weighted, whichever the header says.
enum AnyGraph {
    Unweighted(EdgeList<Edge>),
    Weighted(EdgeList<WEdge>),
}

fn load_any(path: &str) -> Result<AnyGraph, Box<dyn Error>> {
    let r = BufReader::new(File::open(path)?);
    match read_edge_list::<Edge, _>(r) {
        Ok(g) => Ok(AnyGraph::Unweighted(g)),
        Err(FormatError::WeightednessMismatch { .. }) => {
            let r = BufReader::new(File::open(path)?);
            Ok(AnyGraph::Weighted(read_edge_list::<WEdge, _>(r)?))
        }
        Err(e) => Err(e.into()),
    }
}

fn cmd_info(args: &Args) -> CliResult {
    let path = args.positional(1, "input file")?;
    args.reject_unknown()?;
    let graph = load_any(path)?;
    fn describe<E: EdgeRecord>(graph: &EdgeList<E>, weighted: bool) {
        let s = egraph_core::inspect::summarize(graph);
        println!("vertices:     {}", s.num_vertices);
        println!("edges:        {}", s.num_edges);
        println!("weighted:     {weighted}");
        println!("avg degree:   {:.2}", s.avg_degree);
        println!(
            "max degree:   {} out / {} in",
            s.max_out_degree, s.max_in_degree
        );
        println!(
            "sinks:        {} ({:.1}%)",
            s.sinks,
            100.0 * s.sinks as f64 / s.num_vertices.max(1) as f64
        );
        println!("isolated:     {}", s.isolated);
        println!("self-loops:   {}", s.self_loops);
        println!("duplicates:   {}", s.duplicate_edges);
        println!("symmetric:    {}", s.symmetric);
        println!(
            "memory:       {:.1} MB as edge array",
            (s.num_edges * std::mem::size_of::<E>()) as f64 / 1e6
        );
    }
    match &graph {
        AnyGraph::Unweighted(g) => describe(g, false),
        AnyGraph::Weighted(g) => describe(g, true),
    }
    Ok(())
}

fn parse_strategy(name: &str) -> Result<Strategy, Box<dyn Error>> {
    match name {
        "radix" => Ok(Strategy::RadixSort),
        "count" => Ok(Strategy::CountSort),
        "dynamic" => Ok(Strategy::Dynamic),
        other => Err(format!("unknown strategy '{other}' (radix|count|dynamic)").into()),
    }
}

fn print_breakdown(b: &TimeBreakdown, extra: &str) {
    println!();
    println!("  load:         {:>8.3}s", b.load);
    println!("  pre-process:  {:>8.3}s", b.preprocess);
    if b.partition > 0.0 {
        println!("  partition:    {:>8.3}s", b.partition);
    }
    println!("  algorithm:    {:>8.3}s", b.algorithm);
    if b.store > 0.0 {
        println!("  store:        {:>8.3}s", b.store);
    }
    println!("  ------------------------");
    println!("  end-to-end:   {:>8.3}s   {}", b.total(), extra);
}

/// Stores a `u32` result array if `--save` was given; returns the
/// seconds spent (the paper's "storing the results" phase).
fn save_u32(save: Option<&str>, values: &[u32]) -> Result<f64, Box<dyn Error>> {
    match save {
        None => Ok(0.0),
        Some(path) => {
            let (res, secs) = egraph_core::metrics::timed(|| -> std::io::Result<()> {
                let w = BufWriter::new(File::create(path)?);
                egraph_storage::write_u32_result(w, values)
            });
            res?;
            println!("saved result to {path}");
            Ok(secs)
        }
    }
}

/// Stores an `f32` result array if `--save` was given.
fn save_f32(save: Option<&str>, values: &[f32]) -> Result<f64, Box<dyn Error>> {
    match save {
        None => Ok(0.0),
        Some(path) => {
            let (res, secs) = egraph_core::metrics::timed(|| -> std::io::Result<()> {
                let w = BufWriter::new(File::create(path)?);
                egraph_storage::write_f32_result(w, values)
            });
            res?;
            println!("saved result to {path}");
            Ok(secs)
        }
    }
}

/// Starts the opt-in `/metrics` endpoint when `--metrics-addr` was
/// given, registering the scrape-time sources (pool, storage,
/// allocator) first. Returns the server handle so the caller controls
/// when it shuts down, plus the `--metrics-linger` grace period.
fn maybe_serve_metrics(
    args: &Args,
) -> Result<(Option<egraph_metrics::MetricsServer>, f64), Box<dyn Error>> {
    let addr = args.get("metrics-addr").map(str::to_string);
    let linger: f64 = args.get_parsed_or("metrics-linger", 0.0, "seconds")?;
    let Some(addr) = addr else {
        return Ok((None, linger));
    };
    egraph_metrics::register_pool_metrics();
    egraph_metrics::register_alloc_metrics();
    egraph_storage::counters::register_metrics();
    let server = egraph_metrics::serve(addr.as_str())?;
    println!("serving metrics on http://{}/metrics", server.addr());
    Ok((Some(server), linger))
}

/// Holds the `/metrics` endpoint open for the `--metrics-linger` grace
/// period, then shuts it down.
fn finish_metrics(server: Option<egraph_metrics::MetricsServer>, linger: f64) {
    if let Some(server) = server {
        if linger > 0.0 {
            std::thread::sleep(std::time::Duration::from_secs_f64(linger));
        }
        server.shutdown();
    }
}

/// Tees algorithm telemetry into the live metrics registry while
/// forwarding everything to the wrapped recorder, so a `/metrics`
/// scrape mid-run reports the same counter totals the final `RunTrace`
/// records (both read the identical stream of deltas).
struct MetricsRecorder<'a, R: Recorder> {
    inner: &'a R,
    iterations: egraph_metrics::Counter,
    edges: egraph_metrics::Counter,
    step_seconds: egraph_metrics::Histogram,
    iter_seconds: egraph_metrics::Histogram,
    iter_density: egraph_metrics::Histogram,
    iter_frontier: egraph_metrics::Histogram,
    direction_flips: egraph_metrics::Counter,
    current_iter: egraph_metrics::Gauge,
    /// Previous step's direction, for live flip counting: 0 = no step
    /// seen yet, 1 = push, 2 = pull. Atomic because `record_iteration`
    /// takes `&self`.
    last_mode: std::sync::atomic::AtomicU8,
}

impl<'a, R: Recorder> MetricsRecorder<'a, R> {
    fn new(inner: &'a R) -> Self {
        let reg = egraph_metrics::global();
        Self {
            inner,
            iterations: reg.counter("egraph_algo_iterations_total", "Algorithm steps executed."),
            edges: reg.counter(
                "egraph_algo_edges_scanned_total",
                "Edges examined across all algorithm steps.",
            ),
            step_seconds: reg
                .histogram_seconds("egraph_algo_step_seconds", "Wall time per algorithm step."),
            iter_seconds: reg
                .histogram_seconds("egraph_iter_seconds", "Wall time per iteration record."),
            iter_density: reg.histogram_with_bounds(
                "egraph_iter_density",
                "Frontier density (observed load / |E|) per iteration; the \
                 Ligra pull cutoff sits at 0.05.",
                &[],
                vec![0.001, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0],
            ),
            iter_frontier: reg.histogram_with_bounds(
                "egraph_iter_frontier_vertices",
                "Active vertices per iteration.",
                &[],
                egraph_metrics::Histogram::log2_bounds(0, 30),
            ),
            direction_flips: reg.counter(
                "egraph_iter_direction_flips_total",
                "Push/pull direction switches observed across iterations.",
            ),
            current_iter: reg.gauge(
                "egraph_iter_current",
                "Step index of the most recent iteration record.",
            ),
            last_mode: std::sync::atomic::AtomicU8::new(0),
        }
    }
}

impl<R: Recorder> Recorder for MetricsRecorder<'_, R> {
    fn record_counter(&self, name: &'static str, delta: u64) {
        egraph_metrics::global()
            .counter(
                &format!(
                    "egraph_{}_total",
                    egraph_metrics::sanitize_metric_name(name)
                ),
                "Engine counter teed from the run recorder.",
            )
            .add(delta);
        self.inner.record_counter(name, delta);
    }

    fn record_iteration(&self, record: egraph_core::telemetry::IterRecord) {
        self.iterations.inc();
        self.edges.add(record.edges_scanned as u64);
        self.step_seconds.observe(record.seconds);
        self.iter_seconds.observe(record.seconds);
        self.iter_density.observe(record.density);
        self.iter_frontier.observe(record.frontier_size as f64);
        self.current_iter.set(record.step as f64);
        let mode = match record.mode {
            StepMode::Push => 1,
            StepMode::Pull => 2,
        };
        let prev = self
            .last_mode
            .swap(mode, std::sync::atomic::Ordering::Relaxed);
        if prev != 0 && prev != mode {
            self.direction_flips.inc();
        }
        self.inner.record_iteration(record);
    }

    fn record_span(&self, name: &'static str, seconds: f64) {
        self.inner.record_span(name, seconds);
    }
}

/// Profiles the store phase only when a `--save` target exists, so
/// traces do not grow a zero-length phase on runs without one.
fn profiled_store(
    spec: &RunSpec<'_>,
    f: impl FnOnce() -> Result<f64, Box<dyn Error>>,
) -> Result<f64, Box<dyn Error>> {
    if spec.save.is_some() {
        spec.prof.profile("store", f)
    } else {
        f()
    }
}

#[allow(clippy::too_many_lines)]
fn cmd_run(args: &Args) -> CliResult {
    let algo = args.positional(1, "algorithm")?.to_string();
    let path = args.positional(2, "input file")?.to_string();
    let layout = args.get_or("layout", "adj").to_string();
    let flow = args.get_or("flow", "push").to_string();
    let sync = args.get_or("sync", "atomics").to_string();
    let strategy = parse_strategy(args.get_or("strategy", "radix"))?;
    let root: u32 = args.get_parsed_or("root", 0, "vertex id")?;
    let iters: usize = args.get_parsed_or("iters", 10, "integer")?;
    let sorted = args.get_or("sorted", "false") == "true";
    if let Some(threads) = args.get("threads") {
        // Must happen before the global pool is first used.
        std::env::set_var("EGRAPH_THREADS", threads);
    }
    let _ = args.get("side"); // consumed later by grid layouts
    let save = args.get("save").map(str::to_string);
    let trace_out = args.get("trace-out").map(str::to_string);
    let trace_format = TraceFormat::parse(args.get_or("trace-format", "json"))?;
    let timeline_out = args.get("timeline-out").map(str::to_string);
    let (metrics_server, metrics_linger) = maybe_serve_metrics(args)?;
    args.reject_unknown()?;

    // The hardware counters only cover threads spawned after they open,
    // so the profiler must exist before anything creates the global
    // pool — including `timeline::enable`, which sizes its per-worker
    // tracks from the pool.
    let profiler = if trace_out.is_some() {
        PhaseProfiler::enabled()
    } else {
        PhaseProfiler::disabled()
    };
    // The per-iteration counter windows share the same constraint as
    // the profiler: their handle must exist before the pool spawns so
    // `inherit` covers every worker thread.
    let mut iter_counters = trace_out
        .as_ref()
        .map(|_| egraph_core::telemetry::PerfCounters::open());
    if trace_out.is_some() || metrics_server.is_some() {
        // Counters must be collecting before the load phase starts.
        // enable() opens a fresh collection window (it zeroes first),
        // so a reused pool cannot leak a previous run's counts.
        egraph_parallel::telemetry::enable();
        egraph_storage::counters::enable();
    }
    if timeline_out.is_some() {
        timeline::reset();
        timeline::enable();
    }

    let load_start = Instant::now();
    let any = profiler.profile("load", || load_any(&path))?;
    let load = load_start.elapsed().as_secs_f64();

    let spec = RunSpec {
        algo: &algo,
        layout: &layout,
        flow: &flow,
        sync: &sync,
        strategy,
        sorted,
        root,
        iters,
        load,
        save: save.as_deref(),
        prof: &profiler,
        args,
    };
    match &trace_out {
        None => {
            let null = egraph_core::telemetry::NullRecorder;
            if metrics_server.is_some() {
                dispatch_run(&spec, any, &MetricsRecorder::new(&null))?;
            } else {
                dispatch_run(&spec, any, &null)?;
            }
        }
        Some(out_path) => {
            let recorder = match iter_counters.take() {
                Some(counters) => TraceRecorder::with_iteration_perf(counters),
                None => TraceRecorder::new(),
            };
            let breakdown = if metrics_server.is_some() {
                dispatch_run(&spec, any, &MetricsRecorder::new(&recorder))?
            } else {
                dispatch_run(&spec, any, &recorder)?
            };
            egraph_parallel::telemetry::disable();
            egraph_storage::counters::disable();
            let mut trace = RunTrace::new(&algo);
            let available = profiler.available_counters();
            trace.config.insert(
                "hw_counters".to_string(),
                if available.is_empty() {
                    "unavailable".to_string()
                } else {
                    available
                        .iter()
                        .map(|k| k.name())
                        .collect::<Vec<_>>()
                        .join(",")
                },
            );
            for (key, value) in [
                ("input", path.as_str()),
                ("layout", layout.as_str()),
                ("flow", flow.as_str()),
                ("sync", sync.as_str()),
                ("strategy", args.get_or("strategy", "radix")),
                ("root", &root.to_string()),
                ("iters", &iters.to_string()),
                (
                    "threads",
                    &egraph_parallel::current_num_threads().to_string(),
                ),
            ] {
                trace.config.insert(key.to_string(), value.to_string());
            }
            trace.breakdown = breakdown;
            trace.absorb(&recorder);
            trace.phases = profiler.take_phases();
            let pool = egraph_parallel::telemetry::snapshot();
            let storage = egraph_storage::counters::snapshot();
            for (name, value) in [
                ("pool.regions", pool.regions as f64),
                ("pool.chunks", pool.chunks as f64),
                ("pool.steals", pool.steals as f64),
                ("pool.tasks", pool.tasks as f64),
                ("pool.workers", pool.busy_seconds.len() as f64),
                ("pool.busy_seconds_total", pool.total_busy_seconds()),
                ("pool.load_imbalance", pool.load_imbalance()),
                ("storage.bytes_read", storage.bytes_read as f64),
                ("storage.records_parsed", storage.records_parsed as f64),
                ("storage.read_seconds", storage.read_seconds),
                (
                    "storage.throughput_bytes_per_sec",
                    storage.throughput_bytes_per_sec(),
                ),
            ] {
                trace.counters.insert(name.to_string(), value);
            }
            std::fs::write(out_path, trace.render(trace_format))?;
            println!("wrote trace to {out_path}");
        }
    }
    if let Some(out_path) = &timeline_out {
        timeline::disable();
        std::fs::write(out_path, timeline::chrome_trace_json())?;
        let dropped = timeline::dropped_spans();
        if dropped > 0 {
            eprintln!("warning: {dropped} timeline spans dropped (per-worker track full)");
        }
        println!("wrote timeline to {out_path}");
    }
    // The counter values survive disable(), so scrapers that arrive
    // during the linger window still read the run's final totals.
    egraph_parallel::telemetry::disable();
    egraph_storage::counters::disable();
    finish_metrics(metrics_server, metrics_linger);
    Ok(())
}

/// Everything `run` needs besides the graph and the recorder.
struct RunSpec<'a> {
    algo: &'a str,
    layout: &'a str,
    flow: &'a str,
    sync: &'a str,
    strategy: Strategy,
    sorted: bool,
    root: u32,
    iters: usize,
    load: f64,
    save: Option<&'a str>,
    prof: &'a PhaseProfiler,
    args: &'a Args,
}

/// Runs the requested variant with the given recorder and returns the
/// end-to-end time breakdown. All dispatch goes through
/// [`run_variant`]; this function only bridges CLI strings and the
/// weighted/unweighted input split.
fn dispatch_run<R: Recorder>(
    spec: &RunSpec<'_>,
    any: AnyGraph,
    recorder: &R,
) -> Result<TimeBreakdown, Box<dyn Error>> {
    let id = VariantId::new(
        spec.algo.parse::<Algo>()?,
        spec.layout.parse::<Layout>()?,
        spec.flow.parse::<Direction>()?,
    );
    let sync = spec.sync.parse::<SyncMode>()?;
    match any {
        AnyGraph::Unweighted(graph) => run_one(spec, &id, sync, &graph, recorder),
        AnyGraph::Weighted(graph) if id.algo.needs_weights() => {
            run_one(spec, &id, sync, &graph, recorder)
        }
        AnyGraph::Weighted(_) => {
            Err("this build of the command expects an unweighted graph for that algorithm".into())
        }
    }
}

fn run_one<E: EdgeRecord, R: Recorder>(
    spec: &RunSpec<'_>,
    id: &VariantId,
    sync: SyncMode,
    graph: &EdgeList<E>,
    recorder: &R,
) -> Result<TimeBreakdown, Box<dyn Error>> {
    let side: usize =
        spec.args
            .get_parsed_or("side", default_side(graph.num_vertices()), "integer")?;
    let prepared = PreparedGraph::new(graph)
        .strategy(spec.strategy)
        .sort_neighbors(spec.sorted)
        .side(side);
    let params = RunParams {
        root: spec.root,
        pagerank: pagerank::PagerankConfig {
            iterations: spec.iters,
            ..Default::default()
        },
        sync,
        ..Default::default()
    };
    let ctx = ExecCtx::new(None).recorder(recorder).profiler(spec.prof);
    let run = run_variant(id, &ctx, &prepared, &params)?;
    let mut breakdown = TimeBreakdown {
        load: spec.load,
        preprocess: run.preprocess_seconds,
        algorithm: run.algorithm_seconds,
        ..Default::default()
    };
    let root = spec.root;
    match &run.output {
        VariantOutput::Bfs(r) => {
            breakdown.store = profiled_store(spec, || save_u32(spec.save, &r.parent))?;
            println!(
                "bfs from {root}: {} reachable, {} iterations",
                r.reachable_count(),
                r.iterations.len()
            );
        }
        VariantOutput::Pagerank(r) => {
            breakdown.store = profiled_store(spec, || save_f32(spec.save, &r.ranks))?;
            println!(
                "pagerank: {} iterations; top vertices {:?}",
                r.iterations,
                r.top_k(3)
            );
        }
        VariantOutput::Wcc(r) => {
            breakdown.store = profiled_store(spec, || save_u32(spec.save, &r.label))?;
            println!("wcc: {} components", r.component_count());
        }
        VariantOutput::Sssp(r) => {
            breakdown.store = profiled_store(spec, || save_f32(spec.save, &r.dist))?;
            println!(
                "sssp from {root}: {} reachable, {} iterations",
                r.reachable_count(),
                r.iterations.len()
            );
        }
        VariantOutput::Spmv(r) => {
            breakdown.store = profiled_store(spec, || save_f32(spec.save, &r.y))?;
            let norm: f64 =
                r.y.iter()
                    .map(|&v| (v as f64) * (v as f64))
                    .sum::<f64>()
                    .sqrt();
            println!("spmv: |y| = {norm:.3}");
        }
    }
    print_breakdown(&breakdown, "");
    Ok(breakdown)
}

/// Set by the signal handlers / stdin watcher; polled by `cmd_serve`.
static SHUTDOWN: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

extern "C" fn on_shutdown_signal(_sig: i32) {
    SHUTDOWN.store(true, std::sync::atomic::Ordering::Relaxed);
}

/// Routes SIGINT and SIGTERM to the shutdown flag. Declared directly
/// (libc is linked on every supported platform) so the workspace stays
/// dependency-free.
#[cfg(unix)]
fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_shutdown_signal);
        signal(SIGTERM, on_shutdown_signal);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

/// A second, portable shutdown trigger: when stdin reaches EOF (the
/// parent closed the pipe) the daemon drains and exits — this is how
/// the integration tests ask for a clean shutdown.
fn watch_stdin_eof() {
    std::thread::spawn(|| {
        use std::io::Read;
        let mut buf = [0u8; 256];
        let mut stdin = std::io::stdin();
        loop {
            match stdin.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(_) => {}
            }
        }
        SHUTDOWN.store(true, std::sync::atomic::Ordering::Relaxed);
    });
}

fn cmd_serve(args: &Args) -> CliResult {
    let path = args.positional(1, "input file")?.to_string();
    let listen = args
        .get("listen")
        .ok_or("serve needs --listen HOST:PORT")?
        .to_string();
    let threads: usize = args.get_parsed_or("threads", 0, "integer")?;
    let max_wave: usize = args.get_parsed_or("max-wave", 64, "integer")?;
    let window_ms: u64 = args.get_parsed_or("batch-window-ms", 2, "integer")?;
    let layout = args.get_or("layout", "adj").parse::<Layout>()?;
    if layout == Layout::EdgeList {
        return Err(
            "the edge layout has no servable per-vertex index; use adj, grid, ccsr or delta".into(),
        );
    }
    let slow_query = match args.get("slow-query-ms") {
        Some(raw) => {
            let ms: u64 = raw
                .parse()
                .map_err(|_| format!("--slow-query-ms expects milliseconds, got '{raw}'"))?;
            Some(std::time::Duration::from_millis(ms))
        }
        None => None,
    };
    let journal_capacity: usize = args.get_parsed_or(
        "journal-capacity",
        ServeConfig::default().journal_capacity,
        "integer",
    )?;
    let timeline_out = args.get("timeline-out").map(str::to_string);
    let (metrics_server, metrics_linger) = maybe_serve_metrics(args)?;
    args.reject_unknown()?;

    // Same ordering constraint as `run`: the track count is fixed when
    // recording first turns on, so enable before the daemon spawns its
    // wave pool.
    if timeline_out.is_some() {
        timeline::reset();
        timeline::enable();
    }

    // Load balancers polling either /healthz (query port or metrics
    // port) see `loading` until the layout build completes.
    egraph_metrics::set_health(egraph_metrics::Health::Loading);
    let graph = match load_any(&path)? {
        AnyGraph::Unweighted(g) => ServeGraph::Unweighted(g),
        AnyGraph::Weighted(g) => ServeGraph::Weighted(g),
    };
    let config = ServeConfig {
        threads,
        max_wave,
        batch_window: std::time::Duration::from_millis(window_ms),
        layout,
        metrics: true,
        journal_capacity,
        slow_query,
    };
    let daemon = ServeDaemon::start(&listen, graph, config)?;
    daemon.wait_ready();
    egraph_metrics::set_health(egraph_metrics::Health::Ready);
    // The integration tests and scripts parse this exact line to learn
    // the ephemeral port.
    println!("serving on {}", daemon.addr());

    install_signal_handlers();
    watch_stdin_eof();
    while !SHUTDOWN.load(std::sync::atomic::Ordering::Relaxed) {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    println!("shutting down: draining in-flight queries");
    daemon.shutdown();
    if let Some(out_path) = &timeline_out {
        timeline::disable();
        std::fs::write(out_path, timeline::chrome_trace_json())?;
        let dropped = timeline::dropped_spans();
        if dropped > 0 {
            eprintln!("warning: {dropped} timeline spans dropped (per-worker track full)");
        }
        println!("wrote timeline to {out_path}");
    }
    finish_metrics(metrics_server, metrics_linger);
    println!("serve: clean shutdown");
    Ok(())
}

/// Applies an NDJSON edge-delta stream: offline (merge into a new edge
/// file, DESIGN.md §16) or streamed to a running daemon with `--to`.
fn cmd_update(args: &Args) -> CliResult {
    if let Some(addr) = args.get("to").map(str::to_string) {
        return cmd_update_stream(args, &addr);
    }
    let path = args.positional(1, "input file")?.to_string();
    let deltas_path = args
        .get("deltas")
        .ok_or("update needs --deltas FILE")?
        .to_string();
    let out = args
        .get("out")
        .ok_or("update needs --out FILE (or --to HOST:PORT to stream to a daemon)")?
        .to_string();
    let trace_out = args.get("trace-out").map(str::to_string);
    let trace_format = TraceFormat::parse(args.get_or("trace-format", "json"))?;
    args.reject_unknown()?;

    let profiler = if trace_out.is_some() {
        PhaseProfiler::enabled()
    } else {
        PhaseProfiler::disabled()
    };
    let started = Instant::now();
    let any = profiler.profile("load", || load_any(&path))?;
    let ndjson = std::fs::read_to_string(&deltas_path)?;
    let load = started.elapsed().as_secs_f64();

    fn merge_and_store<E: EdgeRecord>(
        graph: &EdgeList<E>,
        ndjson: &str,
        out: &str,
        profiler: &PhaseProfiler,
    ) -> Result<(usize, EdgeList<E>, f64), Box<dyn Error>> {
        let batch = egraph_core::layout::DeltaBatch::<E>::parse_ndjson(ndjson)
            .map_err(|e| format!("delta stream: {e}"))?;
        batch
            .validate(graph.num_vertices())
            .map_err(|e| format!("delta stream: {e}"))?;
        let mut log = egraph_core::layout::DeltaLog::new();
        log.append(&batch);
        let merged = profiler.profile(egraph_core::exec::PHASE_COMPACT, || log.merge_into(graph));
        let (res, store) = egraph_core::metrics::timed(|| -> Result<(), Box<dyn Error>> {
            let mut w = BufWriter::new(File::create(out)?);
            write_edge_list(&mut w, &merged)?;
            Ok(())
        });
        res?;
        Ok((batch.len(), merged, store))
    }

    let (applied, nv, ne, store) = match &any {
        AnyGraph::Unweighted(g) => {
            let (applied, merged, store) = merge_and_store(g, &ndjson, &out, &profiler)?;
            (applied, merged.num_vertices(), merged.num_edges(), store)
        }
        AnyGraph::Weighted(g) => {
            let (applied, merged, store) = merge_and_store(g, &ndjson, &out, &profiler)?;
            (applied, merged.num_vertices(), merged.num_edges(), store)
        }
    };
    if let Some(out_path) = &trace_out {
        let mut trace = RunTrace::new("update");
        trace.breakdown.load = load;
        trace.breakdown.store = store;
        trace.phases = profiler.take_phases();
        for phase in &trace.phases {
            if phase.name == egraph_core::exec::PHASE_COMPACT {
                trace.breakdown.preprocess = phase.seconds;
            }
        }
        trace.config.insert("input".to_string(), path.to_string());
        trace.config.insert("deltas".to_string(), deltas_path);
        std::fs::write(out_path, trace.render(trace_format))?;
        println!("wrote trace to {out_path}");
    }
    println!(
        "applied {applied} delta ops: wrote {out} ({nv} vertices, {ne} edges) in {:.2}s",
        started.elapsed().as_secs_f64()
    );
    Ok(())
}

/// Streams each delta op to a running daemon over its query port and
/// (by default) finishes with a compact so the new epoch is queryable.
fn cmd_update_stream(args: &Args, addr: &str) -> CliResult {
    use std::io::{BufRead, Write};
    let deltas_path = args
        .get("deltas")
        .ok_or("update needs --deltas FILE")?
        .to_string();
    let compact = args.get_or("compact", "true") == "true";
    args.reject_unknown()?;

    let ndjson = std::fs::read_to_string(&deltas_path)?;
    let stream = std::net::TcpStream::connect(addr)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut roundtrip = |line: &str| -> Result<String, Box<dyn Error>> {
        writer.write_all(line.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        let mut response = String::new();
        if reader.read_line(&mut response)? == 0 {
            return Err("daemon closed the connection".into());
        }
        if response.contains("\"error\"") {
            return Err(format!("daemon rejected {line}: {}", response.trim()).into());
        }
        Ok(response)
    };

    let mut applied = 0usize;
    for line in ndjson.lines().filter(|l| !l.trim().is_empty()) {
        roundtrip(line)?;
        applied += 1;
    }
    println!("streamed {applied} delta ops to {addr}");
    if compact {
        let response = roundtrip(r#"{"op":"compact"}"#)?;
        println!("compacted: {}", response.trim());
    } else {
        println!("left pending (re-run with an empty stream and --compact true to publish)");
    }
    Ok(())
}

fn cmd_advise(args: &Args) -> CliResult {
    let algo_name = args.get_or("algo", "bfs").to_string();
    let vertices: usize = args.get_parsed_or("vertices", 1 << 26, "integer")?;
    let edges: usize = args.get_parsed_or("edges", 1 << 30, "integer")?;
    let high_diameter = args.get_or("high-diameter", "false") == "true";
    let seconds: f64 = args.get_parsed_or("seconds", 5.0, "number")?;
    let machine = match args.get_or("machine", "b") {
        "a" => Topology::machine_a(),
        "b" => Topology::machine_b(),
        "single" => Topology::single_node(),
        other => return Err(format!("unknown machine '{other}' (a|b|single)").into()),
    };
    args.reject_unknown()?;

    let algo = match algo_name.as_str() {
        "bfs" | "sssp" | "wcc" => roadmap::AlgorithmTraits::traversal(seconds),
        "pagerank" | "als" => roadmap::AlgorithmTraits::full_graph_iterative(seconds),
        "spmv" => roadmap::AlgorithmTraits::single_pass(),
        other => return Err(format!("unknown algorithm '{other}'").into()),
    };
    let graph = roadmap::GraphTraits::new(vertices, edges, high_diameter);
    let r = roadmap::recommend(&algo, &graph, &machine);
    println!(
        "recommendation for {algo_name} on {} ({} nodes):",
        machine.name, machine.num_nodes
    );
    println!(
        "  layout {:?}, flow {:?}, lock-free {}, NUMA-aware {}, build with {}",
        r.layout,
        r.flow,
        r.lock_free,
        r.numa_aware,
        r.preprocessing.name()
    );
    for line in &r.rationale {
        println!("  * {line}");
    }
    Ok(())
}

fn cmd_partition(args: &Args) -> CliResult {
    let path = args.positional(1, "input file")?;
    let nodes: usize = args.get_parsed_or("nodes", 4, "integer")?;
    args.reject_unknown()?;
    let graph = match load_any(path)? {
        AnyGraph::Unweighted(g) => g,
        AnyGraph::Weighted(g) => g.map_records(|e| Edge::new(e.src, e.dst)),
    };
    let partition = egraph_core::numa_sim::partition_by_target(&graph, nodes);
    println!(
        "partitioned into {nodes} nodes in {:.3}s:",
        partition.seconds
    );
    for (node, (range, edges)) in partition
        .vertex_ranges
        .iter()
        .zip(&partition.per_node_edges)
        .enumerate()
    {
        println!(
            "  node {node}: vertices {:>9}..{:<9}  edges {:>9}",
            range.start,
            range.end,
            edges.len()
        );
    }
    Ok(())
}

fn cmd_trace(args: &Args) -> CliResult {
    match args.positional(1, "trace subcommand")? {
        "diff" => cmd_trace_diff(args),
        other => Err(format!("unknown trace subcommand '{other}' (expected 'diff')").into()),
    }
}

/// Reads a [`RunTrace`] back from either serialization, sniffing the
/// format from the first non-blank character.
fn load_trace(path: &str) -> Result<RunTrace, Box<dyn Error>> {
    let text = std::fs::read_to_string(path)?;
    let trace = if text.trim_start().starts_with('{') {
        RunTrace::from_json(&text)?
    } else {
        RunTrace::from_csv(&text)?
    };
    Ok(trace)
}

/// Renders a trace's iteration telemetry as a human-readable report;
/// exits non-zero when the file predates schema v4 only if it cannot be
/// parsed at all (an old trace simply reports "no per-iteration
/// records").
fn cmd_explain(args: &Args) -> CliResult {
    let path = args.positional(1, "trace file")?.to_string();
    args.reject_unknown()?;
    let trace = load_trace(&path)?;
    print!("{}", egraph_core::explain::explain(&trace));
    Ok(())
}

fn cmd_trace_diff(args: &Args) -> CliResult {
    let old_path = args.positional(2, "baseline trace file")?.to_string();
    let new_path = args.positional(3, "candidate trace file")?.to_string();
    let defaults = DiffOptions::default();
    let opts = DiffOptions {
        threshold_pct: args.get_parsed_or("threshold", defaults.threshold_pct, "percent")?,
        min_seconds: args.get_parsed_or("min-seconds", defaults.min_seconds, "seconds")?,
        min_bytes: args.get_parsed_or("min-bytes", defaults.min_bytes, "bytes")?,
        gate_serve_latency: args.get_or("serve-latency", "false") == "true",
    };
    args.reject_unknown()?;

    let old = load_trace(&old_path)?;
    let new = load_trace(&new_path)?;
    let diff = diff_traces(&old, &new, &opts);

    println!("baseline:  {old_path} ({})", old.schema);
    println!("candidate: {new_path} ({})", new.schema);
    println!();
    println!(
        "{:<44} {:>16} {:>16} {:>9}",
        "metric", "old", "new", "delta"
    );
    for row in &diff.rows {
        let delta = row.delta_pct();
        let delta_str = if delta.is_nan() {
            "n/a".to_string()
        } else if delta.is_infinite() {
            "new".to_string()
        } else {
            format!("{delta:+.1}%")
        };
        println!(
            "{:<44} {:>16.6} {:>16.6} {:>9}{}{}",
            row.metric,
            row.old,
            row.new,
            delta_str,
            if row.gating { "" } else { "  (info)" },
            if row.regressed { "  << REGRESSED" } else { "" },
        );
    }
    println!();
    if diff.has_regressions() {
        println!(
            "{} regression(s) beyond the {:.1}% threshold:",
            diff.regressions.len(),
            opts.threshold_pct
        );
        for r in &diff.regressions {
            println!("  {r}");
        }
        return Err(Box::new(GateFailure(format!(
            "{} metric(s) regressed",
            diff.regressions.len()
        ))));
    }
    println!(
        "no regressions beyond the {:.1}% threshold",
        opts.threshold_pct
    );
    Ok(())
}

/// Runs the differential conformance matrix as a gate: every technique
/// combination over the shared corpus, against the serial reference and
/// the single-thread baseline. Non-zero exit on any mismatch.
fn cmd_conformance(args: &Args) -> CliResult {
    let seed = args.get_parsed_or("seed", egraph_testkit::test_seed(), "integer")?;
    let full = args
        .get_or("full", "false")
        .parse::<bool>()
        .unwrap_or(false);
    let mut cfg = if full {
        egraph_testkit::MatrixConfig::exhaustive(seed)
    } else {
        egraph_testkit::MatrixConfig::quick(seed)
    };
    if let Some(list) = args.get("threads") {
        let parsed: Result<Vec<usize>, _> =
            list.split(',').map(|s| s.trim().parse::<usize>()).collect();
        cfg.thread_counts =
            parsed.map_err(|_| format!("invalid --threads '{list}': expected e.g. 1,4,8"))?;
        if cfg.thread_counts.contains(&0) {
            return Err("--threads entries must be positive".into());
        }
    }
    let (metrics_server, metrics_linger) = maybe_serve_metrics(args)?;
    if metrics_server.is_some() {
        egraph_parallel::telemetry::enable();
        egraph_storage::counters::enable();
    }
    args.reject_unknown()?;

    let graphs = if full {
        egraph_testkit::exhaustive_corpus(seed)
    } else {
        egraph_testkit::quick_corpus(seed)
    };
    let start = Instant::now();
    let report = egraph_testkit::run_matrix(&graphs, &cfg);
    println!(
        "conformance: {} combinations over {} graphs at threads {:?} in {:.2}s (seed {seed:#x})",
        report.combos_run,
        graphs.len(),
        cfg.thread_counts,
        start.elapsed().as_secs_f64(),
    );
    let mut update_cfg = if full {
        egraph_testkit::UpdateConfig::exhaustive(seed)
    } else {
        egraph_testkit::UpdateConfig::quick(seed)
    };
    update_cfg.thread_counts.clone_from(&cfg.thread_counts);
    let update_start = Instant::now();
    let update_report = egraph_testkit::run_update_matrix(&graphs, &update_cfg);
    println!(
        "update oracle: {} checks ({} batches x {} ops per graph) in {:.2}s",
        update_report.checks_run,
        update_cfg.batches,
        update_cfg.ops_per_batch,
        update_start.elapsed().as_secs_f64(),
    );
    if metrics_server.is_some() {
        egraph_parallel::telemetry::disable();
        egraph_storage::counters::disable();
    }
    finish_metrics(metrics_server, metrics_linger);
    if report.mismatches.is_empty() && update_report.mismatches.is_empty() {
        println!("all combinations conformant (static matrix + update oracle)");
        return Ok(());
    }
    for m in report.mismatches.iter().chain(&update_report.mismatches) {
        println!("MISMATCH  {m}");
    }
    Err(Box::new(GateFailure(format!(
        "{} of {} combinations mismatched (reproduce with EGRAPH_TEST_SEED={seed:#x})",
        report.mismatches.len() + update_report.mismatches.len(),
        report.combos_run + update_report.checks_run
    ))))
}

fn default_side(num_vertices: usize) -> usize {
    (num_vertices / (1 << 18)).clamp(8, 256)
}

/// Guesses a text/binary format from a file extension.
fn guess_format(path: &str) -> &'static str {
    if path.ends_with(".gr") {
        "dimacs"
    } else if path.ends_with(".txt") || path.ends_with(".snap") || path.ends_with(".el") {
        "snap"
    } else {
        "bin"
    }
}

fn cmd_convert(args: &Args) -> CliResult {
    let input = args.positional(1, "input file")?.to_string();
    let output = args.positional(2, "output file")?.to_string();
    let from = args.get_or("from", guess_format(&input)).to_string();
    let to = args.get_or("to", guess_format(&output)).to_string();
    let weighted = args.get_or("weighted", "false") == "true";
    args.reject_unknown()?;

    // Load into the weighted or unweighted in-memory form.
    let graph: AnyGraph = match from.as_str() {
        "bin" => load_any(&input)?,
        "dimacs" => AnyGraph::Weighted(egraph_storage::read_dimacs(BufReader::new(File::open(
            &input,
        )?))?),
        "snap" => {
            let r = BufReader::new(File::open(&input)?);
            if weighted {
                AnyGraph::Weighted(egraph_storage::read_snap::<WEdge, _>(r, None)?)
            } else {
                AnyGraph::Unweighted(egraph_storage::read_snap::<Edge, _>(r, None)?)
            }
        }
        other => return Err(format!("unknown input format '{other}'").into()),
    };

    let mut w = BufWriter::new(File::create(&output)?);
    let (nv, ne) = match (&graph, to.as_str()) {
        (AnyGraph::Unweighted(g), "bin") => {
            write_edge_list(&mut w, g)?;
            (g.num_vertices(), g.num_edges())
        }
        (AnyGraph::Weighted(g), "bin") => {
            write_edge_list(&mut w, g)?;
            (g.num_vertices(), g.num_edges())
        }
        (AnyGraph::Unweighted(g), "snap") => {
            egraph_storage::write_snap(&mut w, g)?;
            (g.num_vertices(), g.num_edges())
        }
        (AnyGraph::Weighted(g), "snap") => {
            egraph_storage::write_snap(&mut w, g)?;
            (g.num_vertices(), g.num_edges())
        }
        (_, other) => return Err(format!("unknown output format '{other}'").into()),
    };
    println!("converted {input} ({from}) -> {output} ({to}): {nv} vertices, {ne} edges");
    Ok(())
}

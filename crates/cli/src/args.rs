//! A small flag parser: `--name value` pairs plus positional
//! arguments, with typed accessors and helpful errors.

use std::collections::BTreeMap;
use std::fmt;

/// Parsed command-line arguments.
#[derive(Debug, Default)]
pub struct Args {
    positional: Vec<String>,
    flags: BTreeMap<String, String>,
    /// Flags that were read at least once (to report unknown ones).
    consumed: std::cell::RefCell<std::collections::BTreeSet<String>>,
}

/// Argument-parsing errors.
#[derive(Debug)]
pub enum ArgError {
    /// `--flag` appeared with no value.
    MissingValue(String),
    /// A required flag or positional is absent.
    Missing(String),
    /// A value failed to parse.
    Invalid {
        /// Flag name.
        name: String,
        /// Offending value.
        value: String,
        /// What was expected.
        expected: &'static str,
    },
    /// Flags were supplied that the command does not know.
    Unknown(Vec<String>),
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::MissingValue(name) => write!(f, "flag --{name} needs a value"),
            ArgError::Missing(name) => write!(f, "missing required argument: {name}"),
            ArgError::Invalid {
                name,
                value,
                expected,
            } => write!(
                f,
                "invalid value '{value}' for --{name}: expected {expected}"
            ),
            ArgError::Unknown(names) => {
                write!(f, "unknown flags: ")?;
                for (i, n) in names.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "--{n}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses `argv` into positionals and `--name value` flags.
    pub fn parse(argv: &[String]) -> Result<Self, ArgError> {
        let mut args = Args::default();
        let mut i = 0;
        while i < argv.len() {
            if let Some(name) = argv[i].strip_prefix("--") {
                let value = argv
                    .get(i + 1)
                    .filter(|v| !v.starts_with("--"))
                    .cloned()
                    .ok_or_else(|| ArgError::MissingValue(name.to_string()))?;
                args.flags.insert(name.to_string(), value);
                i += 2;
            } else {
                args.positional.push(argv[i].clone());
                i += 1;
            }
        }
        Ok(args)
    }

    /// The `n`-th positional argument, required.
    pub fn positional(&self, n: usize, what: &str) -> Result<&str, ArgError> {
        self.positional
            .get(n)
            .map(String::as_str)
            .ok_or_else(|| ArgError::Missing(what.to_string()))
    }

    /// Number of positional arguments.
    pub fn positional_len(&self) -> usize {
        self.positional.len()
    }

    /// An optional string flag.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.consumed.borrow_mut().insert(name.to_string());
        self.flags.get(name).map(String::as_str)
    }

    /// A string flag with a default.
    pub fn get_or<'a>(&'a self, name: &str, default: &'a str) -> &'a str {
        self.get(name).unwrap_or(default)
    }

    /// A parsed flag with a default.
    pub fn get_parsed_or<T: std::str::FromStr>(
        &self,
        name: &str,
        default: T,
        expected: &'static str,
    ) -> Result<T, ArgError> {
        match self.get(name) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| ArgError::Invalid {
                name: name.to_string(),
                value: raw.to_string(),
                expected,
            }),
        }
    }

    /// Errors if any provided flag was never consumed by the command.
    pub fn reject_unknown(&self) -> Result<(), ArgError> {
        let consumed = self.consumed.borrow();
        let unknown: Vec<String> = self
            .flags
            .keys()
            .filter(|k| !consumed.contains(*k))
            .cloned()
            .collect();
        if unknown.is_empty() {
            Ok(())
        } else {
            Err(ArgError::Unknown(unknown))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_flags_and_positionals() {
        let a = Args::parse(&argv(&["run", "bfs", "--scale", "20", "--flow", "push"])).unwrap();
        assert_eq!(a.positional(0, "cmd").unwrap(), "run");
        assert_eq!(a.positional(1, "algo").unwrap(), "bfs");
        assert_eq!(a.get("scale"), Some("20"));
        assert_eq!(a.get_or("flow", "pull"), "push");
        assert_eq!(a.get_or("strategy", "radix"), "radix");
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(matches!(
            Args::parse(&argv(&["--scale"])),
            Err(ArgError::MissingValue(_))
        ));
        assert!(matches!(
            Args::parse(&argv(&["--scale", "--out"])),
            Err(ArgError::MissingValue(_))
        ));
    }

    #[test]
    fn typed_parsing() {
        let a = Args::parse(&argv(&["--scale", "20"])).unwrap();
        assert_eq!(a.get_parsed_or("scale", 16u32, "integer").unwrap(), 20);
        assert_eq!(a.get_parsed_or("iters", 10u32, "integer").unwrap(), 10);
        let bad = Args::parse(&argv(&["--scale", "banana"])).unwrap();
        assert!(bad.get_parsed_or("scale", 16u32, "integer").is_err());
    }

    #[test]
    fn unknown_flags_detected() {
        let a = Args::parse(&argv(&["--scale", "20", "--bogus", "1"])).unwrap();
        let _ = a.get("scale");
        assert!(matches!(a.reject_unknown(), Err(ArgError::Unknown(_))));
    }

    #[test]
    fn missing_positional() {
        let a = Args::parse(&argv(&[])).unwrap();
        assert!(matches!(
            a.positional(0, "command"),
            Err(ArgError::Missing(_))
        ));
    }
}

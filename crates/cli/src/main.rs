//! `egraph` — the command-line driver of EverythingGraph-rs.
//!
//! ```text
//! egraph generate rmat --scale 20 --out graph.egr
//! egraph info graph.egr
//! egraph run bfs graph.egr --layout adj --flow push --strategy radix
//! egraph advise --algo pagerank --vertices 62000000 --edges 1468000000 --machine b
//! ```

use std::process::ExitCode;

use egraph_cli::commands;

/// Heap accounting is opt-in at build time: `--features alloc-track`
/// swaps the system allocator for the tracking wrapper, which fills the
/// per-phase memory section of traces and the `egraph_alloc_*` metrics.
#[cfg(feature = "alloc-track")]
#[global_allocator]
static ALLOC: egraph_metrics::alloc::TrackingAlloc = egraph_metrics::alloc::TrackingAlloc;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            if !e.is::<commands::GateFailure>() {
                eprintln!();
                eprintln!("{}", commands::USAGE);
            }
            ExitCode::FAILURE
        }
    }
}

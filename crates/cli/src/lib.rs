//! Library surface of the `egraph` command-line driver.
//!
//! The binary is a thin wrapper around [`commands::dispatch`]; exposing
//! the modules as a library lets integration tests drive every
//! subcommand in-process.

pub mod args;
pub mod commands;

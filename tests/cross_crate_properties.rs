//! Cross-crate property tests: for arbitrary random graphs, every
//! layout/strategy/flow combination must agree, and the storage format
//! must roundtrip exactly.

use everything_graph::core::algo::{bfs, pagerank, sssp, wcc};
use everything_graph::core::layout::EdgeDirection;
use everything_graph::core::preprocess::{CsrBuilder, GridBuilder, Strategy as Build};
use everything_graph::core::types::{Edge, EdgeList, WEdge};
use everything_graph::storage::{read_edge_list, write_edge_list};
use proptest::prelude::*;

/// An arbitrary small multigraph (self-loops and duplicates allowed).
fn arb_graph() -> impl Strategy<Value = EdgeList<Edge>> {
    (2usize..120).prop_flat_map(|nv| {
        proptest::collection::vec((0..nv as u32, 0..nv as u32), 0..600).prop_map(move |pairs| {
            EdgeList::new(
                nv,
                pairs.into_iter().map(|(s, d)| Edge::new(s, d)).collect(),
            )
            .expect("endpoints are in range by construction")
        })
    })
}

fn arb_weighted() -> impl Strategy<Value = EdgeList<WEdge>> {
    (2usize..80).prop_flat_map(|nv| {
        proptest::collection::vec((0..nv as u32, 0..nv as u32, 1u32..100), 0..400).prop_map(
            move |triples| {
                EdgeList::new(
                    nv,
                    triples
                        .into_iter()
                        .map(|(s, d, w)| WEdge::new(s, d, w as f32 / 10.0))
                        .collect(),
                )
                .expect("endpoints are in range by construction")
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn storage_roundtrip_is_identity(graph in arb_graph()) {
        let mut file = Vec::new();
        write_edge_list(&mut file, &graph).unwrap();
        let back: EdgeList<Edge> = read_edge_list(&file[..]).unwrap();
        prop_assert_eq!(back, graph);
    }

    #[test]
    fn all_strategies_build_equivalent_adjacency(graph in arb_graph()) {
        let reference = CsrBuilder::new(Build::RadixSort, EdgeDirection::Both).build(&graph);
        for strategy in [Build::CountSort, Build::Dynamic] {
            let other = CsrBuilder::new(strategy, EdgeDirection::Both).build(&graph);
            for v in 0..graph.num_vertices() as u32 {
                let mut a: Vec<u32> =
                    reference.out().neighbors(v).iter().map(|e| e.dst).collect();
                let mut b: Vec<u32> = other.out().neighbors(v).iter().map(|e| e.dst).collect();
                a.sort_unstable();
                b.sort_unstable();
                prop_assert_eq!(a, b, "out-neighbors of {} with {:?}", v, strategy);
                let mut a: Vec<u32> =
                    reference.incoming().neighbors(v).iter().map(|e| e.src).collect();
                let mut b: Vec<u32> =
                    other.incoming().neighbors(v).iter().map(|e| e.src).collect();
                a.sort_unstable();
                b.sort_unstable();
                prop_assert_eq!(a, b, "in-neighbors of {} with {:?}", v, strategy);
            }
        }
    }

    #[test]
    fn grid_is_a_partition_of_the_edge_list(graph in arb_graph(), side in 1usize..9) {
        let grid = GridBuilder::new(Build::RadixSort).side(side).build(&graph);
        prop_assert_eq!(grid.num_edges(), graph.num_edges());
        // Every edge sits in exactly the cell its endpoints map to, and
        // the multiset of edges matches the input.
        let mut from_grid = Vec::new();
        for row in 0..side {
            for col in 0..side {
                for e in grid.cell(row, col) {
                    prop_assert_eq!(grid.cell_of(e.src, e.dst), (row, col));
                    from_grid.push((e.src, e.dst));
                }
            }
        }
        let mut expected: Vec<(u32, u32)> =
            graph.edges().iter().map(|e| (e.src, e.dst)).collect();
        from_grid.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(from_grid, expected);
    }

    #[test]
    fn bfs_variants_agree(graph in arb_graph(), root_ix in any::<prop::sample::Index>()) {
        let root = root_ix.index(graph.num_vertices()) as u32;
        let adj = CsrBuilder::new(Build::RadixSort, EdgeDirection::Both).build(&graph);
        let grid = GridBuilder::new(Build::RadixSort).side(4).build(&graph);
        let expected = bfs::reference(adj.out(), root);
        prop_assert_eq!(&bfs::push(&adj, root).level, &expected);
        prop_assert_eq!(&bfs::pull(&adj, root).level, &expected);
        prop_assert_eq!(&bfs::push_pull(&adj, root).level, &expected);
        prop_assert_eq!(&bfs::edge_centric(&graph, root).level, &expected);
        prop_assert_eq!(&bfs::grid(&grid, root).level, &expected);
    }

    #[test]
    fn wcc_equals_union_find(graph in arb_graph()) {
        let expected = wcc::reference(&graph);
        prop_assert_eq!(&wcc::edge_centric(&graph).label, &expected);
        let undirected = graph.to_undirected();
        let adj = CsrBuilder::new(Build::CountSort, EdgeDirection::Out).build(&undirected);
        prop_assert_eq!(&wcc::push(&adj).label, &expected);
    }

    #[test]
    fn sssp_equals_dijkstra(graph in arb_weighted(), root_ix in any::<prop::sample::Index>()) {
        let root = root_ix.index(graph.num_vertices()) as u32;
        let adj = CsrBuilder::new(Build::RadixSort, EdgeDirection::Out).build(&graph);
        let expected = sssp::reference(&graph, root);
        for (name, dist) in [
            ("push", sssp::push(&adj, root).dist),
            ("edge", sssp::edge_centric(&graph, root).dist),
        ] {
            for v in 0..dist.len() {
                if expected[v].is_finite() {
                    prop_assert!(
                        (dist[v] - expected[v]).abs() < 1e-3 * (1.0 + expected[v]),
                        "{}: dist[{}] = {} vs {}", name, v, dist[v], expected[v]
                    );
                } else {
                    prop_assert!(dist[v].is_infinite(), "{}: dist[{}]", name, v);
                }
            }
        }
    }

    #[test]
    fn pagerank_mass_is_bounded_and_variants_agree(graph in arb_graph()) {
        let degrees: Vec<u32> = graph.out_degrees().iter().map(|&d| d as u32).collect();
        let cfg = pagerank::PagerankConfig { iterations: 3, ..Default::default() };
        let adj = CsrBuilder::new(Build::RadixSort, EdgeDirection::Both).build(&graph);
        let pull = pagerank::pull(adj.incoming(), &degrees, cfg);
        let push = pagerank::push(adj.out(), &degrees, cfg, pagerank::PushSync::Atomics);
        let total: f32 = pull.ranks.iter().sum();
        prop_assert!(total <= 1.0 + 1e-3, "rank mass {}", total);
        for v in 0..pull.ranks.len() {
            prop_assert!(
                (pull.ranks[v] - push.ranks[v]).abs() < 1e-4 + 1e-3 * pull.ranks[v].abs(),
                "rank[{}]: pull {} vs push {}", v, pull.ranks[v], push.ranks[v]
            );
        }
    }
}

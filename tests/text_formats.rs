//! Integration: real-world text dataset formats (SNAP, DIMACS) flow
//! through the whole pipeline and agree with the binary path.

use everything_graph::core::algo::{bfs, sssp};
use everything_graph::core::layout::EdgeDirection;
use everything_graph::core::preprocess::{CsrBuilder, Strategy};
use everything_graph::core::types::{Edge, EdgeList, WEdge};
use everything_graph::graphgen;
use everything_graph::storage::{read_dimacs, read_snap, write_edge_list, write_snap};

#[test]
fn snap_text_agrees_with_binary_pipeline() {
    let graph = graphgen::rmat(10, 8, 77);

    // Route A: binary.
    let mut bin = Vec::new();
    write_edge_list(&mut bin, &graph).unwrap();
    let from_bin: EdgeList<Edge> = everything_graph::storage::read_edge_list(&bin[..]).unwrap();

    // Route B: SNAP text (pin the vertex count — text loses trailing
    // isolated vertices).
    let mut text = Vec::new();
    write_snap(&mut text, &graph).unwrap();
    let from_text: EdgeList<Edge> = read_snap(&text[..], Some(graph.num_vertices())).unwrap();

    assert_eq!(from_bin.edges(), from_text.edges());
    let adj_a = CsrBuilder::new(Strategy::RadixSort, EdgeDirection::Out).build(&from_bin);
    let adj_b = CsrBuilder::new(Strategy::CountSort, EdgeDirection::Out).build(&from_text);
    assert_eq!(
        bfs::push(&adj_a, 0).level,
        bfs::push(&adj_b, 0).level,
        "both routes must compute identical BFS"
    );
}

#[test]
fn dimacs_route_runs_sssp() {
    // A small weighted graph in DIMACS form: a 4-cycle plus a chord.
    let gr = "c 4-cycle with chord\n\
              p sp 4 5\n\
              a 1 2 1\n\
              a 2 3 1\n\
              a 3 4 1\n\
              a 4 1 1\n\
              a 1 3 10\n";
    let graph = read_dimacs(gr.as_bytes()).unwrap();
    assert_eq!(graph.num_vertices(), 4);
    let adj = CsrBuilder::new(Strategy::RadixSort, EdgeDirection::Out).build(&graph);
    let result = sssp::push(&adj, 0);
    // 0 -> 2 via the cycle (2.0) beats the chord (10.0).
    assert_eq!(result.dist[2], 2.0);
    let reference = sssp::reference(&graph, 0);
    for (d, r) in result.dist.iter().zip(&reference) {
        assert_eq!(d, r);
    }
}

#[test]
fn weighted_snap_roundtrip_preserves_weights() {
    let graph = EdgeList::new(
        5,
        vec![
            WEdge::new(0, 1, 0.5),
            WEdge::new(1, 2, 1.25),
            WEdge::new(4, 0, 100.0),
        ],
    )
    .unwrap();
    let mut text = Vec::new();
    write_snap(&mut text, &graph).unwrap();
    let back: EdgeList<WEdge> = read_snap(&text[..], Some(5)).unwrap();
    assert_eq!(back, graph);
}

#[test]
fn small_world_through_the_pipeline() {
    let graph = graphgen::small_world(1000, 3, 0.05, 3);
    let adj = CsrBuilder::new(Strategy::RadixSort, EdgeDirection::Both).build(&graph);
    let result = bfs::push_pull(&adj, 0);
    // Small world: everything reachable, few levels.
    assert_eq!(result.reachable_count(), 1000);
    assert!(
        result.iterations.len() < 40,
        "{} levels",
        result.iterations.len()
    );
}

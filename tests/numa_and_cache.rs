//! Integration of the measurement substrates: NUMA partitioning +
//! locality modeling, and the cache simulator driving real engine runs.

use everything_graph::cachesim::{CacheConfig, LlcProbe};
use everything_graph::core::algo::pagerank;
use everything_graph::core::numa_sim::{
    bfs_locality, pagerank_locality, partition_by_target, DataPolicy,
};
use everything_graph::core::prelude::*;
use everything_graph::graphgen;
use everything_graph::numa::{CostModel, MemoryBoundness, Topology};

fn test_graph() -> EdgeList<Edge> {
    graphgen::rmat(12, 16, 4)
}

#[test]
fn partitioning_preserves_the_graph() {
    let graph = test_graph();
    for nodes in [1usize, 2, 4, 8] {
        let partition = partition_by_target(&graph, nodes);
        assert_eq!(partition.num_edges(), graph.num_edges(), "{nodes} nodes");
        assert_eq!(partition.vertex_ranges.len(), nodes);
        // Edge multiset is preserved.
        let mut got: Vec<(u32, u32)> = partition
            .per_node_edges
            .iter()
            .flatten()
            .map(|e| (e.src, e.dst))
            .collect();
        let mut expected: Vec<(u32, u32)> = graph.edges().iter().map(|e| (e.src, e.dst)).collect();
        got.sort_unstable();
        expected.sort_unstable();
        assert_eq!(got, expected);
    }
}

#[test]
fn numa_model_reproduces_the_papers_directions() {
    let graph = test_graph();
    let model_b = CostModel::new(Topology::machine_b());

    // PageRank (Fig 9b): NUMA-aware placement must model faster.
    let aware = pagerank_locality(&graph, DataPolicy::NumaAware, 4).modeled(
        &model_b,
        10.0,
        MemoryBoundness::PAGERANK,
    );
    let inter = pagerank_locality(&graph, DataPolicy::Interleaved, 4).modeled(
        &model_b,
        10.0,
        MemoryBoundness::PAGERANK,
    );
    assert!(
        aware.modeled_seconds < inter.modeled_seconds,
        "PR on B: aware {} vs inter {}",
        aware.modeled_seconds,
        inter.modeled_seconds
    );

    // The gain on machine B exceeds the gain on machine A ("only on
    // large machines").
    let model_a = CostModel::new(Topology::machine_a());
    let aware_a = pagerank_locality(&graph, DataPolicy::NumaAware, 2).modeled(
        &model_a,
        10.0,
        MemoryBoundness::PAGERANK,
    );
    let inter_a = pagerank_locality(&graph, DataPolicy::Interleaved, 2).modeled(
        &model_a,
        10.0,
        MemoryBoundness::PAGERANK,
    );
    let gain_b = inter.modeled_seconds / aware.modeled_seconds;
    let gain_a = inter_a.modeled_seconds / aware_a.modeled_seconds;
    assert!(gain_b > gain_a, "B gain {gain_b} vs A gain {gain_a}");
}

#[test]
fn road_bfs_contention_punishes_numa_awareness() {
    // Fig. 10's direction: on a high-diameter road-shaped graph the
    // NUMA-aware BFS models *slower* than interleaved.
    let roads = graphgen::road_like(64, 256);
    let model = CostModel::new(Topology::machine_b());
    let aware = bfs_locality(&roads, 0, DataPolicy::NumaAware, 4).modeled(
        &model,
        1.0,
        MemoryBoundness::TRAVERSAL,
    );
    let inter = bfs_locality(&roads, 0, DataPolicy::Interleaved, 4).modeled(
        &model,
        1.0,
        MemoryBoundness::TRAVERSAL,
    );
    assert!(
        aware.modeled_seconds > inter.modeled_seconds,
        "aware {} must exceed inter {}",
        aware.modeled_seconds,
        inter.modeled_seconds
    );
    assert!(aware.contention_factor > 1.2, "hotspot contention expected");
}

#[test]
fn probed_runs_reproduce_grid_cache_advantage() {
    // Table 4's direction on real engine runs: the grid's PageRank
    // miss ratio is lower than the edge array's.
    let graph = graphgen::rmat(13, 16, 21);
    let cfg = pagerank::PagerankConfig {
        iterations: 1,
        ..Default::default()
    };
    let params = RunParams {
        pagerank: cfg,
        ..RunParams::default()
    };
    let prepared = PreparedGraph::new(&graph)
        .strategy(Strategy::RadixSort)
        .side(16);
    // A small simulated LLC so the metadata does not fit.
    let cache = CacheConfig::tiny(16 * 1024, 16);

    let edge_id: VariantId = "pagerank/edge/push".parse().unwrap();
    let probe = LlcProbe::new(cache);
    run_variant(
        &edge_id,
        &ExecCtx::new(None).probe(&probe),
        &prepared,
        &params,
    )
    .unwrap();
    let edge_miss = probe.report().overall_miss_ratio();

    let grid_id: VariantId = "pagerank/grid/push".parse().unwrap();
    let probe = LlcProbe::new(cache);
    run_variant(
        &grid_id,
        &ExecCtx::new(None).probe(&probe),
        &prepared,
        &params,
    )
    .unwrap();
    let grid_miss = probe.report().overall_miss_ratio();

    assert!(
        grid_miss < 0.8 * edge_miss,
        "grid {grid_miss} should clearly beat edge array {edge_miss}"
    );
}

#[test]
fn probed_and_unprobed_runs_compute_identical_results() {
    let graph = test_graph();
    let prepared = PreparedGraph::new(&graph).strategy(Strategy::RadixSort);
    let id: VariantId = "bfs/adj/push".parse().unwrap();
    let probe = LlcProbe::new(CacheConfig::tiny(64 * 1024, 8));
    let probed = run_variant(
        &id,
        &ExecCtx::new(None).probe(&probe),
        &prepared,
        &RunParams::default(),
    )
    .unwrap();
    let plain = run_variant(&id, &ExecCtx::new(None), &prepared, &RunParams::default()).unwrap();
    assert_eq!(
        probed.output.as_bfs().unwrap().level,
        plain.output.as_bfs().unwrap().level
    );
    assert!(probe.report().total().accesses > 0, "probe saw traffic");
}

//! End-to-end integration: generate → store → load (throttled) →
//! pre-process (every strategy) → execute (every algorithm) → validate
//! against serial references. This is the full pipeline a user of the
//! library runs, crossing every crate of the workspace.

use everything_graph::core::algo::{als, bfs, pagerank, spmv, sssp, wcc};
use everything_graph::core::prelude::*;
use everything_graph::graphgen;
use everything_graph::storage::{read_edge_list, write_edge_list, ThrottledReader};

fn rmat_graph() -> EdgeList<Edge> {
    graphgen::rmat(12, 16, 99)
}

#[test]
fn store_load_preprocess_traverse() {
    let graph = rmat_graph();
    // Store into the binary format.
    let mut file = Vec::new();
    write_edge_list(&mut file, &graph).expect("write");
    // Load it back through a (fast) throttled reader.
    let loaded: EdgeList<Edge> =
        read_edge_list(ThrottledReader::new(&file[..], 1e9)).expect("read");
    assert_eq!(loaded, graph);

    // Pre-process with each strategy and verify BFS agrees on all.
    let root = 0u32;
    let mut baselines = Vec::new();
    for strategy in Strategy::ALL {
        let adj = CsrBuilder::new(strategy, EdgeDirection::Both).build(&loaded);
        let result = bfs::push(&adj, root);
        bfs::validate(adj.out(), root, &result);
        baselines.push(result.level);
    }
    assert_eq!(baselines[0], baselines[1]);
    assert_eq!(baselines[1], baselines[2]);
}

#[test]
fn every_bfs_variant_agrees_after_storage_roundtrip() {
    let graph = rmat_graph();
    let mut file = Vec::new();
    write_edge_list(&mut file, &graph).expect("write");
    let graph: EdgeList<Edge> = read_edge_list(&file[..]).expect("read");

    let root = 0u32;
    let adj = CsrBuilder::new(Strategy::RadixSort, EdgeDirection::Both).build(&graph);
    let grid = GridBuilder::new(Strategy::CountSort).side(8).build(&graph);
    let expected = bfs::reference(adj.out(), root);

    assert_eq!(bfs::push(&adj, root).level, expected, "push");
    assert_eq!(bfs::push_locked(&adj, root).level, expected, "push_locked");
    assert_eq!(bfs::pull(&adj, root).level, expected, "pull");
    assert_eq!(bfs::push_pull(&adj, root).level, expected, "push_pull");
    assert_eq!(bfs::edge_centric(&graph, root).level, expected, "edge");
    assert_eq!(bfs::grid(&grid, root).level, expected, "grid");
}

#[test]
fn pagerank_all_layouts_agree() {
    let graph = rmat_graph();
    let degrees: Vec<u32> = graph.out_degrees().iter().map(|&d| d as u32).collect();
    let cfg = pagerank::PagerankConfig {
        iterations: 4,
        ..Default::default()
    };
    let expected = pagerank::reference(&graph, &degrees, cfg);

    let adj = CsrBuilder::new(Strategy::RadixSort, EdgeDirection::Both).build(&graph);
    let grid = GridBuilder::new(Strategy::RadixSort).side(8).build(&graph);
    let grid_t = GridBuilder::new(Strategy::RadixSort)
        .side(8)
        .transposed(true)
        .build(&graph);

    let variants = [
        ("pull", pagerank::pull(adj.incoming(), &degrees, cfg).ranks),
        (
            "push-locks",
            pagerank::push(adj.out(), &degrees, cfg, pagerank::PushSync::Locks).ranks,
        ),
        (
            "edge",
            pagerank::edge_centric(&graph, &degrees, cfg, pagerank::PushSync::Atomics).ranks,
        ),
        (
            "grid-cols",
            pagerank::grid_push(&grid, &degrees, cfg, false).ranks,
        ),
        (
            "grid-pull",
            pagerank::grid_pull(&grid_t, &degrees, cfg).ranks,
        ),
    ];
    for (name, ranks) in variants {
        for v in 0..expected.len() {
            assert!(
                (ranks[v] - expected[v]).abs() < 1e-3 * (1.0 + expected[v].abs()),
                "{name}: rank[{v}] = {} vs {}",
                ranks[v],
                expected[v]
            );
        }
    }
}

#[test]
fn weighted_pipeline_sssp_and_spmv() {
    let graph = rmat_graph();
    let weighted: EdgeList<WEdge> =
        graph.map_records(|e| WEdge::new(e.src, e.dst, 0.5 + ((e.src ^ e.dst) % 8) as f32));
    // Roundtrip through storage (weighted records).
    let mut file = Vec::new();
    write_edge_list(&mut file, &weighted).expect("write");
    let weighted: EdgeList<WEdge> = read_edge_list(&file[..]).expect("read");

    let adj = CsrBuilder::new(Strategy::CountSort, EdgeDirection::Both).build(&weighted);
    let dist = sssp::push(&adj, 0).dist;
    let expected = sssp::reference(&weighted, 0);
    for v in 0..dist.len() {
        if expected[v].is_finite() {
            assert!((dist[v] - expected[v]).abs() < 1e-3, "dist[{v}]");
        } else {
            assert!(dist[v].is_infinite());
        }
    }

    let x: Vec<f32> = (0..weighted.num_vertices())
        .map(|i| (i % 5) as f32)
        .collect();
    let y_ref = spmv::reference(&weighted, &x);
    for (name, y) in [
        ("edge", spmv::edge_centric(&weighted, &x).y),
        ("push", spmv::push(adj.out(), &x).y),
        ("pull", spmv::pull(adj.incoming(), &x).y),
    ] {
        for v in 0..y.len() {
            assert!(
                (y[v] - y_ref[v]).abs() < 1e-2 * (1.0 + y_ref[v].abs()),
                "{name}: y[{v}]"
            );
        }
    }
}

#[test]
fn wcc_push_and_edge_agree_with_union_find() {
    let graph = rmat_graph();
    let expected = wcc::reference(&graph);
    let undirected = graph.to_undirected();
    let adj = CsrBuilder::new(Strategy::RadixSort, EdgeDirection::Out).build(&undirected);
    assert_eq!(wcc::push(&adj).label, expected);
    assert_eq!(wcc::edge_centric(&graph).label, expected);
}

#[test]
fn als_trains_on_generated_ratings() {
    let ratings = graphgen::netflix_like(300, 60, 15, 5);
    let adj = CsrBuilder::new(Strategy::RadixSort, EdgeDirection::Both).build(&ratings);
    let model = als::als(
        adj.out(),
        adj.incoming(),
        300,
        als::AlsConfig {
            iterations: 6,
            ..Default::default()
        },
    );
    let first = model.rmse_history[0];
    let last = *model.rmse_history.last().unwrap();
    assert!(last < first, "RMSE must decrease: {first} -> {last}");
    assert!(last < 1.0, "planted structure should be learnable: {last}");
}

#[test]
fn road_graph_full_pipeline() {
    let roads = graphgen::road_like(60, 40);
    let adj = CsrBuilder::new(Strategy::Dynamic, EdgeDirection::Both).build(&roads);
    let result = bfs::push_pull(&adj, 0);
    // Connected lattice: everything reachable; depth = w + h - 2.
    assert_eq!(result.reachable_count(), 60 * 40);
    let max_level = result.level.iter().max().copied().unwrap();
    assert_eq!(max_level, 60 + 40 - 2);
}

#!/usr/bin/env sh
# Workspace lint gate: formatting + clippy, both deny-by-default.
# Run from the repo root; part of the tier-1 flow alongside
# `cargo build --release && cargo test -q`.
set -eu

cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "lint: OK"

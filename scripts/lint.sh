#!/usr/bin/env sh
# Workspace lint gate: formatting + clippy, both deny-by-default.
# Run from the repo root; part of the tier-1 flow alongside
# `cargo build --release && cargo test -q`.
set -eu

cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

# The parallel and sort crates carry the unsafe worker-local / scatter
# kernels; run them under Miri when the component is available (it is
# not part of the minimal CI toolchain, so skip gracefully).
if rustup component list --installed 2>/dev/null | grep -q '^miri'; then
    echo "== cargo miri test (egraph-parallel, egraph-sort) =="
    cargo miri test -p egraph-parallel -p egraph-sort
else
    echo "== cargo miri test: skipped (miri component not installed) =="
fi

echo "lint: OK"

#!/usr/bin/env sh
# Workspace lint gate: formatting + clippy, both deny-by-default.
# Run from the repo root; part of the tier-1 flow alongside
# `cargo build --release && cargo test -q`.
set -eu

cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

# The vectorized pull paths (AVX2 gather + software prefetch) only
# compile under the `simd` feature; lint them too so the feature can't
# rot behind the default build.
echo "== cargo clippy (simd feature, deny warnings) =="
cargo clippy -p egraph-core -p egraph-bench --all-targets \
    --features egraph-core/simd,egraph-bench/simd -- -D warnings

# The parallel and sort crates carry the unsafe worker-local / scatter
# kernels plus the scoped-pool pointers and lifetime-erased broadcast
# jobs: always try to run their unit tests under Miri. If the component
# is missing, attempt to install it; offline hosts fall back with a
# warning (the nightly CI workflow runs the same stage unconditionally).
if ! rustup component list --installed 2>/dev/null | grep -q '^miri'; then
    echo "== miri not installed; attempting 'rustup component add miri' =="
    rustup component add miri 2>/dev/null || true
fi
if rustup component list --installed 2>/dev/null | grep -q '^miri'; then
    echo "== cargo miri test (egraph-parallel, egraph-sort) =="
    cargo miri test -p egraph-parallel -p egraph-sort
else
    echo "WARNING: miri unavailable on this host (offline toolchain?);"
    echo "         the nightly CI workflow (.github/workflows/nightly.yml)"
    echo "         runs this stage unconditionally."
fi

echo "lint: OK"

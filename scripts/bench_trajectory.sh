#!/usr/bin/env sh
# Cross-PR performance ledger: run each experiment's headline metric at
# a small, CI-friendly scale and append one JSON line per metric to
# bench_results/trajectory.ndjson (see ExperimentCtx::headline). Every
# PR that runs this script extends the same file, so plotting
# value-over-PR per (experiment, metric) pair shows the repo's
# performance trajectory.
#
# Usage:
#   scripts/bench_trajectory.sh [PR_NUMBER]
#
# The PR number may also come from the EGRAPH_PR environment variable
# (the positional argument wins); unset, records carry "pr":null.
# Scale defaults to 12 (fast enough for CI); override with
# EGRAPH_SCALE. Output directory defaults to bench_results; override
# with EGRAPH_OUT.
set -eu

cd "$(dirname "$0")/.."

if [ "${1:-}" != "" ]; then
    EGRAPH_PR="$1"
    export EGRAPH_PR
fi
SCALE="${EGRAPH_SCALE:-12}"
OUT="${EGRAPH_OUT:-bench_results}"

echo "== building experiment binaries (release) =="
cargo build --release -p egraph-bench \
    --bin exp_fig1 --bin exp_fig2 --bin exp_table2 \
    --bin exp_compress --bin exp_update_throughput

# Each binary appends its headline metric(s) itself; the console tables
# still print for humans watching the job.
for exp in exp_fig1 exp_fig2 exp_table2 exp_compress exp_update_throughput; do
    echo "== $exp (scale $SCALE) =="
    "target/release/$exp" --scale "$SCALE" --out "$OUT"
done

echo "== trajectory tail =="
tail -n 20 "$OUT/trajectory.ndjson"
echo "trajectory: $(wc -l <"$OUT/trajectory.ndjson") records in $OUT/trajectory.ndjson"

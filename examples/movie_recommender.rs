//! A movie recommender trained with ALS on a Netflix-shaped bipartite
//! ratings graph (§8's machine-learning workload; adjacency lists in
//! pull mode, lock free).
//!
//! Run with: `cargo run --release --example movie_recommender`

use everything_graph::core::algo::als;
use everything_graph::core::prelude::*;
use everything_graph::graphgen;

fn main() {
    let (num_users, num_items) = (4000usize, 300usize);
    let ratings = graphgen::netflix_like(num_users, num_items, 30, 2024);
    println!(
        "ratings graph: {num_users} users x {num_items} movies, {} ratings",
        ratings.num_edges()
    );

    // ALS is active one bipartite side per half-step, so adjacency
    // lists (both directions) are the right layout (Table 6).
    let (adj, pre) =
        CsrBuilder::new(Strategy::RadixSort, EdgeDirection::Both).build_timed(&ratings);
    let model = als::als(
        adj.out(),
        adj.incoming(),
        num_users,
        als::AlsConfig {
            rank: 8,
            lambda: 0.1,
            iterations: 8,
        },
    );
    println!(
        "trained in {:.3}s (+{:.3}s pre-processing); RMSE per iteration:",
        model.seconds, pre.seconds
    );
    for (i, rmse) in model.rmse_history.iter().enumerate() {
        println!("  iteration {}: {:.4}", i + 1, rmse);
    }

    // Recommend: for a user, rank unseen movies by predicted rating.
    let user = 42u32;
    let seen: std::collections::HashSet<u32> =
        adj.out().neighbors(user).iter().map(|e| e.dst).collect();
    let mut candidates: Vec<(u32, f32)> = (0..num_items as u32)
        .map(|i| num_users as u32 + i)
        .filter(|item| !seen.contains(item))
        .map(|item| (item, model.predict(user, item)))
        .collect();
    candidates.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));

    println!(
        "\nuser {user} has rated {} movies; top recommendations:",
        seen.len()
    );
    for (item, score) in candidates.iter().take(5) {
        println!(
            "  movie {:>4}  predicted rating {:.2}",
            item - num_users as u32,
            score
        );
    }
    let final_rmse = model.rmse_history.last().copied().unwrap_or(f64::NAN);
    assert!(final_rmse < 1.0, "model should fit the planted structure");
}

//! Route planning on a road-network-shaped graph: single-source
//! shortest paths with travel-time weights, on the layout the §9
//! roadmap picks for high-diameter/low-degree graphs.
//!
//! Run with: `cargo run --release --example route_planner`

use everything_graph::core::algo::sssp;
use everything_graph::core::prelude::*;
use everything_graph::core::roadmap;
use everything_graph::graphgen;
use everything_graph::numa::Topology;

fn main() {
    // A 256x128 road lattice: intersections connected to their
    // neighbors with travel-time weights.
    let (width, height) = (256usize, 128usize);
    let roads = graphgen::road_like(width, height);
    let weighted: EdgeList<WEdge> = roads.map_records(|e| {
        // Deterministic per-segment travel time between 1 and 5 min.
        let h = (e.src as u64 ^ ((e.dst as u64) << 32)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        WEdge::new(e.src, e.dst, 1.0 + (h >> 40) as f32 % 4.0)
    });
    println!(
        "road network: {}x{} grid, {} segments",
        width,
        height,
        weighted.num_edges()
    );

    // Ask the roadmap which layout to use for a traversal on a
    // high-diameter graph.
    let advice = roadmap::recommend(
        &roadmap::AlgorithmTraits::traversal(1.0),
        &roadmap::GraphTraits::new(weighted.num_vertices(), weighted.num_edges(), true),
        &Topology::single_node(),
    );
    println!(
        "\nroadmap advice: {:?} + {:?} (lock-free: {})",
        advice.layout, advice.flow, advice.lock_free
    );
    for line in &advice.rationale {
        println!("  - {line}");
    }

    // Follow the advice: adjacency list (radix-built), push mode.
    let (adj, pre) =
        CsrBuilder::new(advice.preprocessing, EdgeDirection::Out).build_timed(&weighted);
    let depot = 0u32; // top-left corner of the map
    let result = sssp::push(&adj, depot);
    println!(
        "\nSSSP from depot {}: pre-process {:.3}s, algorithm {:.3}s, {} iterations",
        depot,
        pre.seconds,
        result.algorithm_seconds(),
        result.iterations.len()
    );

    // Sample a few destinations.
    println!("\nsample travel times from the depot:");
    for (x, y) in [(10, 5), (128, 64), (255, 127)] {
        let dest = (y * width + x) as u32;
        println!(
            "  to intersection ({x:>3},{y:>3}): {:>6.1} min",
            result.dist[dest as usize]
        );
    }
    let reachable = result.reachable_count();
    assert_eq!(reachable, weighted.num_vertices(), "a connected road grid");
    println!("\nall {reachable} intersections reachable.");
}

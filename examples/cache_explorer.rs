//! Explore how data layout drives LLC behaviour: run BFS and PageRank
//! on every layout with the cache simulator attached and print the
//! per-access-kind breakdown (edges vs source metadata vs destination
//! metadata) — §5's three miss sources made visible.
//!
//! Run with: `cargo run --release --example cache_explorer`

use everything_graph::cachesim::{AccessKind, CacheConfig, CacheHierarchy, HierarchyProbe};
use everything_graph::core::algo::pagerank;
use everything_graph::core::prelude::*;

fn probe() -> HierarchyProbe {
    // A small hierarchy so the graph's metadata clearly exceeds it,
    // like RMAT-26 vs machine B's 16 MB LLC.
    HierarchyProbe::new(CacheHierarchy::new(
        CacheConfig {
            capacity: 16 * 1024,
            ways: 16,
            line_size: 64,
        },
        CacheConfig {
            capacity: 128 * 1024,
            ways: 16,
            line_size: 64,
        },
    ))
}

fn print_report(name: &str, probe: &HierarchyProbe) {
    let r = probe.report();
    println!(
        "{name:<22} overall {:>3.0}%  | edges {:>3.0}%  src-meta {:>3.0}%  dst-meta {:>3.0}%  (LLC accesses {})",
        100.0 * r.overall_miss_ratio(),
        100.0 * r.kind(AccessKind::Edge).miss_ratio(),
        100.0 * r.kind(AccessKind::SrcMeta).miss_ratio(),
        100.0 * r.kind(AccessKind::DstMeta).miss_ratio(),
        r.total().accesses,
    );
}

fn main() {
    let graph = everything_graph::graphgen::rmat(14, 16, 77);
    let root = 0u32;
    let cfg = pagerank::PagerankConfig {
        iterations: 1,
        ..Default::default()
    };

    // One prepared graph serves every layout: the CSR and the 32x32
    // grid are built once, on first use, and shared by later runs.
    let prepared = PreparedGraph::new(&graph)
        .strategy(Strategy::RadixSort)
        .side(32);
    let bfs_params = RunParams {
        root,
        ..RunParams::default()
    };
    let pr_params = RunParams {
        pagerank: cfg,
        ..RunParams::default()
    };
    // Every probed run goes through the same resolver; only the
    // VariantId's layout changes between rows.
    let probed = |spec: &str, params: &RunParams<'_>| {
        let id: VariantId = spec.parse().expect("valid variant spec");
        let p = probe();
        run_variant(&id, &ExecCtx::new(None).probe(&p), &prepared, params)
            .expect("variant is in the support matrix");
        p
    };

    println!(
        "graph: {} vertices, {} edges; simulated LLC: 128 KB\n",
        graph.num_vertices(),
        graph.num_edges()
    );
    println!("LLC miss ratio per access kind (lower is better):\n");

    println!("--- BFS ---");
    print_report("adjacency list", &probed("bfs/adj/push", &bfs_params));
    print_report("edge array", &probed("bfs/edge/push", &bfs_params));
    print_report("grid 32x32", &probed("bfs/grid/push", &bfs_params));

    println!("\n--- PageRank (1 iteration) ---");
    print_report("adjacency list", &probed("pagerank/adj/push", &pr_params));
    print_report("edge array", &probed("pagerank/edge/push", &pr_params));
    print_report("grid 32x32", &probed("pagerank/grid/push", &pr_params));

    println!();
    println!("what to look for (§5):");
    println!(" - edge fetches stream: their miss ratio stays low everywhere");
    println!("   (the stream prefetcher covers them);");
    println!(" - destination metadata is the expensive access: random on the");
    println!("   edge array and adjacency list, range-bounded on the grid;");
    println!(" - the grid's overall ratio is roughly half the others' — the");
    println!("   Table 4 effect.");
}

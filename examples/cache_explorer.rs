//! Explore how data layout drives LLC behaviour: run BFS and PageRank
//! on every layout with the cache simulator attached and print the
//! per-access-kind breakdown (edges vs source metadata vs destination
//! metadata) — §5's three miss sources made visible.
//!
//! Run with: `cargo run --release --example cache_explorer`

use everything_graph::cachesim::{AccessKind, CacheConfig, CacheHierarchy, HierarchyProbe};
use everything_graph::core::algo::{bfs, pagerank};
use everything_graph::core::prelude::*;
use everything_graph::graphgen;

fn probe() -> HierarchyProbe {
    // A small hierarchy so the graph's metadata clearly exceeds it,
    // like RMAT-26 vs machine B's 16 MB LLC.
    HierarchyProbe::new(CacheHierarchy::new(
        CacheConfig {
            capacity: 16 * 1024,
            ways: 16,
            line_size: 64,
        },
        CacheConfig {
            capacity: 128 * 1024,
            ways: 16,
            line_size: 64,
        },
    ))
}

fn print_report(name: &str, probe: &HierarchyProbe) {
    let r = probe.report();
    println!(
        "{name:<22} overall {:>3.0}%  | edges {:>3.0}%  src-meta {:>3.0}%  dst-meta {:>3.0}%  (LLC accesses {})",
        100.0 * r.overall_miss_ratio(),
        100.0 * r.kind(AccessKind::Edge).miss_ratio(),
        100.0 * r.kind(AccessKind::SrcMeta).miss_ratio(),
        100.0 * r.kind(AccessKind::DstMeta).miss_ratio(),
        r.total().accesses,
    );
}

fn main() {
    let graph = graphgen::rmat(14, 16, 77);
    let degrees: Vec<u32> = graph.out_degrees().iter().map(|&d| d as u32).collect();
    let root = 0u32;
    let cfg = pagerank::PagerankConfig {
        iterations: 1,
        ..Default::default()
    };

    let adj = CsrBuilder::new(Strategy::RadixSort, EdgeDirection::Out).build(&graph);
    let grid = GridBuilder::new(Strategy::RadixSort).side(32).build(&graph);

    println!(
        "graph: {} vertices, {} edges; simulated LLC: 128 KB\n",
        graph.num_vertices(),
        graph.num_edges()
    );
    println!("LLC miss ratio per access kind (lower is better):\n");

    println!("--- BFS ---");
    let p = probe();
    bfs::push_ctx(&adj, root, &ExecContext::new().with_probe(&p));
    print_report("adjacency list", &p);
    let p = probe();
    bfs::edge_centric_ctx(&graph, root, &ExecContext::new().with_probe(&p));
    print_report("edge array", &p);
    let p = probe();
    bfs::grid_ctx(&grid, root, &ExecContext::new().with_probe(&p));
    print_report("grid 32x32", &p);

    println!("\n--- PageRank (1 iteration) ---");
    let p = probe();
    pagerank::push_ctx(
        adj.out(),
        &degrees,
        cfg,
        pagerank::PushSync::Atomics,
        &ExecContext::new().with_probe(&p),
    );
    print_report("adjacency list", &p);
    let p = probe();
    pagerank::edge_centric_ctx(
        &graph,
        &degrees,
        cfg,
        pagerank::PushSync::Atomics,
        &ExecContext::new().with_probe(&p),
    );
    print_report("edge array", &p);
    let p = probe();
    pagerank::grid_push_ctx(
        &grid,
        &degrees,
        cfg,
        false,
        &ExecContext::new().with_probe(&p),
    );
    print_report("grid 32x32", &p);

    println!();
    println!("what to look for (§5):");
    println!(" - edge fetches stream: their miss ratio stays low everywhere");
    println!("   (the stream prefetcher covers them);");
    println!(" - destination metadata is the expensive access: random on the");
    println!("   edge array and adjacency list, range-bounded on the grid;");
    println!(" - the grid's overall ratio is roughly half the others' — the");
    println!("   Table 4 effect.");
}

//! Importing a real-world-style dataset: read a SNAP text edge list,
//! inspect its structure, convert it to the fast binary format, and
//! run the §9-recommended configuration.
//!
//! Run with: `cargo run --release --example dataset_importer`

use everything_graph::core::algo::bfs;
use everything_graph::core::inspect;
use everything_graph::core::prelude::*;
use everything_graph::core::roadmap;
use everything_graph::graphgen;
use everything_graph::numa::Topology;
use everything_graph::storage::{read_snap, write_edge_list, write_snap};

fn main() {
    // Pretend this came from snap.stanford.edu: a text edge list.
    let original = graphgen::twitter_like(13, 99);
    let mut text = Vec::new();
    write_snap(&mut text, &original).expect("in-memory write");
    println!(
        "'downloaded' a SNAP text file: {:.1} MB, first lines:",
        text.len() as f64 / 1e6
    );
    for line in String::from_utf8_lossy(&text).lines().take(4) {
        println!("    {line}");
    }

    // 1. Import.
    let graph: EdgeList<Edge> =
        read_snap(&text[..], Some(original.num_vertices())).expect("valid SNAP file");

    // 2. Inspect.
    let summary = inspect::summarize(&graph);
    println!("\nstructure:");
    println!(
        "    {} vertices, {} edges, avg degree {:.1}, max out-degree {}",
        summary.num_vertices, summary.num_edges, summary.avg_degree, summary.max_out_degree
    );
    println!(
        "    self-loops {}, duplicate edges {}, symmetric: {}",
        summary.self_loops, summary.duplicate_edges, summary.symmetric
    );

    // 3. Convert to the binary format for fast future loads.
    let mut binary = Vec::new();
    write_edge_list(&mut binary, &graph).expect("binary write");
    println!(
        "\nconverted to binary: {:.1} MB ({}% of the text size)",
        binary.len() as f64 / 1e6,
        100 * binary.len() / text.len().max(1)
    );

    // 4. Ask the roadmap, then follow it.
    let advice = roadmap::recommend(
        &roadmap::AlgorithmTraits::traversal(1.0),
        &roadmap::GraphTraits::new(summary.num_vertices, summary.num_edges, false),
        &Topology::single_node(),
    );
    println!(
        "\nroadmap: {:?} + {:?} built with {}",
        advice.layout,
        advice.flow,
        advice.preprocessing.name()
    );

    let (adj, pre) = CsrBuilder::new(advice.preprocessing, EdgeDirection::Out).build_timed(&graph);
    let root = (0..summary.num_vertices as u32)
        .max_by_key(|&v| adj.out().degree(v))
        .unwrap_or(0);
    let result = bfs::push(&adj, root);
    println!(
        "BFS from {}: {} reachable in {} levels (pre {:.3}s + algo {:.3}s)",
        root,
        result.reachable_count(),
        result.iterations.len(),
        pre.seconds,
        result.algorithm_seconds()
    );
}

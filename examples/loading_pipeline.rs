//! Loading a graph from (simulated) storage and overlapping the
//! pre-processing with the transfer — §3.4 made concrete with a real
//! throttled byte stream.
//!
//! The dynamic builder consumes chunks as they arrive, so its work
//! hides behind the I/O; the radix builder must wait for the full
//! array. On a slow medium this flips the winner (Table 3).
//!
//! Run with: `cargo run --release --example loading_pipeline`

use std::time::Instant;

use everything_graph::core::prelude::*;
use everything_graph::graphgen;
use everything_graph::storage::{read_edge_list_chunked, write_edge_list, ThrottledReader};

fn main() {
    // A small graph so the (real!) throttled transfer stays short.
    let graph = graphgen::rmat(13, 16, 9);
    let mut file = Vec::new();
    write_edge_list(&mut file, &graph).expect("in-memory write cannot fail");
    println!(
        "graph: {} edges, file size {:.2} MB",
        graph.num_edges(),
        file.len() as f64 / 1e6
    );

    // Simulated slow medium: 4 MB/s so the demo takes ~a second.
    let bandwidth = 4.0 * 1e6;
    println!(
        "medium: {:.0} MB/s (throttled in-memory stream)\n",
        bandwidth / 1e6
    );

    // --- Approach 1: dynamic building, overlapped with loading. ---
    let start = Instant::now();
    let mut lists: Vec<Vec<Edge>> = vec![Vec::new(); graph.num_vertices()];
    let header =
        read_edge_list_chunked::<Edge, _>(ThrottledReader::new(&file[..], bandwidth), |chunk| {
            // Consume each chunk the moment it arrives.
            for e in chunk {
                lists[e.src as usize].push(*e);
            }
        })
        .expect("valid file");
    let adj_dynamic = AdjacencyList::new(
        Some(Adjacency::from_per_vertex(
            header.num_vertices as usize,
            lists,
            false,
        )),
        None,
    );
    let dynamic_total = start.elapsed().as_secs_f64();
    println!("dynamic (overlapped):  load+build = {dynamic_total:.2}s");

    // --- Approach 2: radix sort, strictly after loading. ---
    let start = Instant::now();
    let mut edges = Vec::with_capacity(graph.num_edges());
    read_edge_list_chunked::<Edge, _>(ThrottledReader::new(&file[..], bandwidth), |chunk| {
        edges.extend_from_slice(chunk)
    })
    .expect("valid file");
    let load_s = start.elapsed().as_secs_f64();
    let loaded = EdgeList::new(graph.num_vertices(), edges).expect("validated above");
    let (adj_radix, pre) =
        CsrBuilder::new(Strategy::RadixSort, EdgeDirection::Out).build_timed(&loaded);
    let radix_total = load_s + pre.seconds;
    println!(
        "radix (sequential):    load {load_s:.2}s + build {:.3}s = {radix_total:.2}s",
        pre.seconds
    );

    // Same adjacency either way.
    for v in (0..graph.num_vertices() as u32).step_by(997) {
        let mut a: Vec<u32> = adj_dynamic
            .out()
            .neighbors(v)
            .iter()
            .map(|e| e.dst)
            .collect();
        let mut b: Vec<u32> = adj_radix.out().neighbors(v).iter().map(|e| e.dst).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "builders disagree at vertex {v}");
    }

    println!(
        "\non this slow medium the dynamic approach {} by {:.0}% — §3.5's conclusion.",
        if dynamic_total <= radix_total {
            "wins"
        } else {
            "should win; it lost"
        },
        100.0 * (radix_total - dynamic_total).abs() / radix_total
    );
    println!("(with the input already in memory, radix wins ~5x instead — Table 2.)");
}

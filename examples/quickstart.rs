//! Quickstart: the end-to-end life of a graph computation.
//!
//! Generates a power-law graph, wraps it in a [`PreparedGraph`], runs
//! BFS and PageRank through the unified [`run_variant`] API, and
//! prints the end-to-end time breakdown the paper argues everyone
//! should look at.
//!
//! Run with: `cargo run --release --example quickstart`

use everything_graph::core::prelude::*;
use everything_graph::graphgen;

fn main() {
    // 1. The input: an edge array (the universal input format).
    let graph = graphgen::rmat(16, 16, 42);
    println!(
        "graph: {} vertices, {} edges (RMAT-16)",
        graph.num_vertices(),
        graph.num_edges()
    );

    // 2. Pre-processing policy: radix sort is the fastest way to build
    //    adjacency lists from an in-memory edge array (Table 2). The
    //    PreparedGraph builds each layout lazily, on first use, and
    //    caches it for later runs.
    let prepared = PreparedGraph::new(&graph).strategy(Strategy::RadixSort);

    // 3. BFS from the highest-degree vertex, in push mode — the best
    //    configuration for traversals (§9) — with a trace recorder
    //    attached so every level reports its frontier and edge work.
    //    Variants are named `algo/layout/direction`; unsupported
    //    combinations return a typed error instead of panicking.
    let (root, root_degree) = graph.max_degree_vertex().unwrap_or((0, 0));
    let recorder = TraceRecorder::new();
    let bfs_id: VariantId = "bfs/adj/push".parse().expect("valid variant spec");
    let bfs_run = run_variant(
        &bfs_id,
        &ExecCtx::new(None).recorder(&recorder),
        &prepared,
        &RunParams {
            root,
            ..RunParams::default()
        },
    )
    .expect("bfs/adj/push is in the support matrix");
    println!(
        "pre-processing (radix sort, out direction): {:.3}s",
        bfs_run.preprocess_seconds
    );
    let result = bfs_run.output.as_bfs().expect("bfs output");
    println!(
        "BFS from {} (out-degree {}): {} vertices reachable in {} levels, {:.3}s",
        root,
        root_degree,
        result.reachable_count(),
        result.iterations.len(),
        bfs_run.algorithm_seconds
    );
    for rec in recorder.iterations() {
        println!(
            "  level {:>2}: frontier {:>6}, edges scanned {:>8}, {:.4}s ({})",
            rec.step,
            rec.frontier_size,
            rec.edges_scanned,
            rec.seconds,
            rec.mode.as_str()
        );
    }

    // 4. PageRank in pull mode (no locks) over the in-edges — a second
    //    variant through the same API; only the in-direction CSR is
    //    built for it.
    let pr_id: VariantId = "pagerank/adj/pull".parse().expect("valid variant spec");
    let pr_run = run_variant(
        &pr_id,
        &ExecCtx::new(None),
        &prepared,
        &RunParams::default(),
    )
    .expect("pagerank/adj/pull is in the support matrix");
    let pr = pr_run.output.as_pagerank().expect("pagerank output");
    let top = pr.top_k(5);
    println!(
        "PageRank (10 iterations, pull, no locks): {:.3}s",
        pr_run.algorithm_seconds
    );
    println!("top-5 vertices by rank: {top:?}");

    // 5. The end-to-end view: pre-processing is part of the bill.
    let breakdown = TimeBreakdown {
        load: 0.0,
        preprocess: bfs_run.preprocess_seconds + pr_run.preprocess_seconds,
        partition: 0.0,
        algorithm: bfs_run.algorithm_seconds + pr_run.algorithm_seconds,
        store: 0.0,
    };
    println!(
        "end-to-end: {:.3}s total ({:.0}% of it pre-processing)",
        breakdown.total(),
        100.0 * breakdown.preprocess / breakdown.total()
    );
}

//! Quickstart: the end-to-end life of a graph computation.
//!
//! Generates a power-law graph, pre-processes it into the layout the
//! §9 roadmap recommends, runs BFS and PageRank, and prints the
//! end-to-end time breakdown the paper argues everyone should look at.
//!
//! Run with: `cargo run --release --example quickstart`

use everything_graph::core::algo::{bfs, pagerank};
use everything_graph::core::prelude::*;
use everything_graph::graphgen;

fn main() {
    // 1. The input: an edge array (the universal input format).
    let graph = graphgen::rmat(16, 16, 42);
    println!(
        "graph: {} vertices, {} edges (RMAT-16)",
        graph.num_vertices(),
        graph.num_edges()
    );

    // 2. Pre-processing: radix sort is the fastest way to build
    //    adjacency lists from an in-memory edge array (Table 2).
    let (adj, pre) = CsrBuilder::new(Strategy::RadixSort, EdgeDirection::Both).build_timed(&graph);
    println!(
        "pre-processing (radix sort, both directions): {:.3}s",
        pre.seconds
    );

    // 3. BFS from the highest-degree vertex, in push mode — the best
    //    configuration for traversals (§9) — with a trace recorder
    //    attached so every level reports its frontier and edge work.
    let (root, root_degree) = graph.max_degree_vertex().unwrap_or((0, 0));
    let recorder = TraceRecorder::new();
    let result = bfs::push_ctx(&adj, root, &ExecContext::new().with_recorder(&recorder));
    println!(
        "BFS from {} (out-degree {}): {} vertices reachable in {} levels, {:.3}s",
        root,
        root_degree,
        result.reachable_count(),
        result.iterations.len(),
        result.algorithm_seconds()
    );
    for rec in recorder.iterations() {
        println!(
            "  level {:>2}: frontier {:>6}, edges scanned {:>8}, {:.4}s ({})",
            rec.step,
            rec.frontier_size,
            rec.edges_scanned,
            rec.seconds,
            rec.mode.as_str()
        );
    }

    // 4. PageRank in pull mode (no locks) over the in-edges.
    let degrees_u32: Vec<u32> = graph.out_degrees().iter().map(|&d| d as u32).collect();
    let pr = pagerank::pull(
        adj.incoming(),
        &degrees_u32,
        pagerank::PagerankConfig::default(),
    );
    let top = pr.top_k(5);
    println!(
        "PageRank (10 iterations, pull, no locks): {:.3}s",
        pr.seconds
    );
    println!("top-5 vertices by rank: {top:?}");

    // 5. The end-to-end view: pre-processing is part of the bill.
    let breakdown = TimeBreakdown {
        load: 0.0,
        preprocess: pre.seconds,
        partition: 0.0,
        algorithm: result.algorithm_seconds() + pr.seconds,
        store: 0.0,
    };
    println!(
        "end-to-end: {:.3}s total ({:.0}% of it pre-processing)",
        breakdown.total(),
        100.0 * breakdown.preprocess / breakdown.total()
    );
}

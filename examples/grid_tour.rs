//! A guided tour of the grid layout — the paper's Figure 4 example,
//! exactly: the 4-vertex graph {(0,1), (1,0), (0,2), (0,3), (2,3)}
//! transformed into a 2x2 grid, then the column/row ownership that
//! makes lock-free push and pull possible.
//!
//! Run with: `cargo run --example grid_tour`

use everything_graph::core::prelude::*;

fn main() {
    // The Figure 4 graph.
    let graph = EdgeList::new(
        4,
        vec![
            Edge::new(0, 1),
            Edge::new(1, 0),
            Edge::new(0, 2),
            Edge::new(0, 3),
            Edge::new(2, 3),
        ],
    )
    .expect("valid edge list");

    let grid = GridBuilder::new(Strategy::RadixSort).side(2).build(&graph);
    println!("Figure 4: a 4-vertex graph as a 2x2 grid");
    println!("vertex ranges: 0-1 and 2-3\n");
    for row in 0..2 {
        for col in 0..2 {
            let cell: Vec<String> = grid
                .cell(row, col)
                .iter()
                .map(|e| format!("({},{})", e.src, e.dst))
                .collect();
            println!(
                "cell ({row},{col})  src in {:?}, dst in {:?}:  {}",
                grid.vertex_range(row),
                grid.vertex_range(col),
                if cell.is_empty() {
                    "-".to_string()
                } else {
                    cell.join(" ")
                }
            );
        }
    }

    println!("\nwhy this enables lock-free execution (§6.1.2):");
    println!(" - edges in different ROWS have different SOURCE vertices;");
    println!("   give each core its own rows -> source updates need no locks (pull)");
    println!(" - edges in different COLUMNS have different DESTINATION vertices;");
    println!("   give each core its own columns -> destination updates need no locks (push)");

    // Show the column partition concretely.
    println!("\ncolumn ownership for push mode:");
    for col in 0..2 {
        let mut dsts: Vec<u32> = (0..2)
            .flat_map(|row| grid.cell(row, col).iter().map(|e| e.dst))
            .collect();
        dsts.sort_unstable();
        dsts.dedup();
        println!(
            "  core {col} owns column {col}: writes only vertices {dsts:?} (⊆ {:?})",
            grid.vertex_range(col)
        );
    }

    // And the cache-locality motivation: cells bound the working set.
    println!("\ncache motivation (§5.1): while a core processes cell (r,c), the");
    println!("metadata of ranges r and c stays in cache and is reused for every");
    println!("edge of the cell — the paper measures this halving the LLC miss");
    println!("ratio for PageRank (Table 4).");
}

//! Social-network analytics: influencer ranking and community sizes on
//! a Twitter-shaped follower graph.
//!
//! Demonstrates the layouts the paper found best for each phase: a
//! grid (pull, lock free) for the full-graph PageRank, and the raw
//! edge array for the single-shot WCC — plus the end-to-end breakdown
//! that justifies the choices.
//!
//! Run with: `cargo run --release --example social_ranking`

use everything_graph::core::algo::{pagerank, wcc};
use everything_graph::core::prelude::*;
use everything_graph::graphgen;

fn main() {
    let scale = 15;
    let followers = graphgen::twitter_like(scale, 7);
    println!(
        "follower graph: {} users, {} follow edges",
        followers.num_vertices(),
        followers.num_edges()
    );
    if let Some((user, follows)) = followers.max_degree_vertex() {
        println!("most active user: {user} (follows {follows} accounts)");
    }

    // --- Influence ranking: PageRank on a grid, pull mode, no locks
    // (Table 5's best configuration for Twitter-shaped graphs). ---
    let degrees: Vec<u32> = followers.out_degrees().iter().map(|&d| d as u32).collect();
    let side = 16;
    let (grid, pre) = GridBuilder::new(Strategy::RadixSort)
        .side(side)
        .transposed(true) // pull runs over rows of the transposed grid
        .build_timed(&followers);
    let ranks = pagerank::grid_pull(&grid, &degrees, pagerank::PagerankConfig::default());
    println!(
        "\ninfluence ranking (grid {side}x{side}, pull, no locks): \
         pre-process {:.3}s + rank {:.3}s",
        pre.seconds, ranks.seconds
    );
    println!("top influencers:");
    for (i, v) in ranks.top_k(5).iter().enumerate() {
        println!(
            "  #{} user {:>8}  rank {:.5}  followers {}",
            i + 1,
            v,
            ranks.ranks[*v as usize],
            followers.in_degrees()[*v as usize]
        );
    }

    // --- Community structure: WCC straight off the edge array (zero
    // pre-processing — the Table 6 winner for low-diameter graphs). ---
    let components = wcc::edge_centric(&followers);
    let mut sizes = std::collections::HashMap::new();
    for &label in &components.label {
        *sizes.entry(label).or_insert(0usize) += 1;
    }
    let mut sizes: Vec<usize> = sizes.into_values().collect();
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    println!(
        "\ncommunities (edge-centric WCC, no pre-processing, {:.3}s):",
        components.algorithm_seconds()
    );
    println!(
        "  {} components; giant component holds {:.1}% of users",
        components.component_count(),
        100.0 * sizes[0] as f64 / followers.num_vertices() as f64
    );
}

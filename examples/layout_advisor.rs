//! The §9 roadmap as an interactive advisor: for a set of workload
//! descriptions, print the layout/flow/synchronization/NUMA
//! recommendation and its reasoning.
//!
//! Run with: `cargo run --example layout_advisor`

use everything_graph::core::roadmap::{recommend, AlgorithmTraits, GraphTraits};
use everything_graph::numa::Topology;

fn main() {
    let machines = [Topology::machine_a(), Topology::machine_b()];
    let workloads: Vec<(&str, AlgorithmTraits, GraphTraits)> = vec![
        (
            "BFS on Twitter",
            AlgorithmTraits::traversal(2.3),
            GraphTraits::new(62_000_000, 1_468_000_000, false),
        ),
        (
            "PageRank (10 iters) on Twitter",
            AlgorithmTraits::full_graph_iterative(38.0),
            GraphTraits::new(62_000_000, 1_468_000_000, false),
        ),
        (
            "PageRank on US-Road",
            AlgorithmTraits::full_graph_iterative(1.6),
            GraphTraits::new(23_900_000, 58_000_000, true),
        ),
        (
            "SpMV on RMAT-26",
            AlgorithmTraits::single_pass(),
            GraphTraits::new(1 << 26, 1 << 30, false),
        ),
        (
            "SSSP on US-Road",
            AlgorithmTraits::traversal(30.0),
            GraphTraits::new(23_900_000, 58_000_000, true),
        ),
    ];

    for machine in &machines {
        println!(
            "================ {} ({} NUMA nodes) ================",
            machine.name, machine.num_nodes
        );
        for (name, algo, graph) in &workloads {
            let r = recommend(algo, graph, machine);
            println!("\n{name}");
            println!(
                "  -> layout {:?}, flow {:?}, lock-free {}, NUMA-aware {}, build with {}",
                r.layout,
                r.flow,
                r.lock_free,
                r.numa_aware,
                r.preprocessing.name()
            );
            for line in &r.rationale {
                println!("     * {line}");
            }
        }
        println!();
    }
}

//! EverythingGraph-rs — a technique-isolation study of multicore graph
//! processing.
//!
//! This is the umbrella crate of a from-scratch Rust reproduction of
//! *"Everything you always wanted to know about multicore graph
//! processing but were afraid to ask"* (Malicevic, Lepers, Zwaenepoel —
//! USENIX ATC 2017). It re-exports every sub-crate of the workspace so
//! applications can depend on a single crate:
//!
//! * [`core`] — graph layouts (edge array / adjacency list / grid),
//!   pre-processing strategies (dynamic / count sort / radix sort), the
//!   push/pull/push-pull execution engine and the six study algorithms
//!   (BFS, WCC, SSSP, PageRank, SpMV, ALS).
//! * [`parallel`] — the fork-join work-queue runtime (Cilk substitute).
//! * [`sort`] — parallel radix and count sorting kernels.
//! * [`graphgen`] — RMAT, road-like, bipartite and uniform generators.
//! * [`storage`] — the binary edge format and the storage-medium model
//!   (SSD/HDD loading, overlap of loading with pre-processing).
//! * [`cachesim`] — a set-associative LLC simulator for miss-ratio
//!   measurements.
//! * [`numa`] — NUMA topology models, the Polymer/Gemini partitioner
//!   and the locality cost model.
//!
//! # Examples
//!
//! ```
//! use everything_graph::core::algo::bfs;
//! use everything_graph::core::prelude::*;
//! use everything_graph::graphgen;
//!
//! // Generate a small power-law graph and run BFS on an adjacency
//! // list in push mode — the paper's recommended configuration for
//! // traversal algorithms (§9).
//! let edges = graphgen::rmat(10, 16, 42);
//! let graph = CsrBuilder::new(Strategy::RadixSort, EdgeDirection::Out)
//!     .build(&edges);
//! let result = bfs::push(&graph, 0);
//! assert!(result.reachable_count() > 0);
//! ```

pub use egraph_cachesim as cachesim;
pub use egraph_core as core;
pub use egraph_graphgen as graphgen;
pub use egraph_numa as numa;
pub use egraph_parallel as parallel;
pub use egraph_sort as sort;
pub use egraph_storage as storage;

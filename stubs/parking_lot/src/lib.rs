//! Offline stub of `parking_lot`, backed by `std::sync`.
//!
//! Implements the subset of the API this workspace uses: [`Mutex`]
//! (non-poisoning `lock` / `into_inner`) and [`Condvar`] whose `wait`
//! takes `&mut MutexGuard`. Poisoned locks are transparently recovered,
//! matching parking_lot's no-poisoning semantics.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// A mutual-exclusion lock that does not poison on panic.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can temporarily take ownership of the
    // underlying std guard; it is `Some` at all other times.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the inner value.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard is present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard is present outside wait")
    }
}

/// A condition variable compatible with [`Mutex`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until another thread notifies this condvar, releasing the
    /// guard's lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard is present outside wait");
        guard.inner = Some(
            self.inner
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner),
        );
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

/// A reader-writer lock that does not poison on panic.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Mutex::new(0u64);
        *m.lock() += 5;
        assert_eq!(*m.lock(), 5);
        assert_eq!(m.into_inner(), 5);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let handle = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut started = lock.lock();
            while !*started {
                cv.wait(&mut started);
            }
        });
        *pair.0.lock() = true;
        pair.1.notify_all();
        handle.join().unwrap();
    }
}

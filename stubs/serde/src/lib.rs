//! Offline stub of `serde`.
//!
//! [`Serialize`] and [`Deserialize`] are marker traits with blanket
//! implementations, and the derive macros (re-exported behind the
//! `derive` feature) expand to nothing. Types that derive them keep
//! compiling; actual serialization in this workspace is hand-rolled
//! (see `egraph_core::telemetry`), so no serializer backend is needed.

/// Marker for serializable types. Blanket-implemented for every type;
/// the derive is a no-op.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker for deserializable types. Blanket-implemented for every type;
/// the derive is a no-op.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

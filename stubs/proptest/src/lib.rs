//! Offline stub of `proptest`.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro, `prop_assert*` / `prop_assume!`, [`Strategy`]
//! with `prop_map` / `prop_flat_map`, range and tuple strategies,
//! [`any`], [`collection::vec`] and [`sample::Index`]. Cases are drawn
//! from a deterministic seeded generator (override the seed with
//! `EGRAPH_TEST_SEED`; failures log it). Failing cases are shrunk:
//! integers step toward their range's lower bound, vectors toward
//! their minimum length, tuples componentwise — the panic reports the
//! smallest input that still fails.

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{RngExt, SampleUniform};

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the test fails.
    Fail(String),
    /// The case did not satisfy an assumption; it is skipped.
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Proposes smaller variants of a failing `value`, most aggressive
    /// first. The default — no candidates — is correct for strategies
    /// that cannot shrink (e.g. mapped strategies, whose transform
    /// cannot be inverted).
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds
    /// out of it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { base: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.base.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn sample(&self, rng: &mut StdRng) -> S2::Value {
        let inner = (self.f)(self.base.sample(rng));
        inner.sample(rng)
    }
}

/// How a type steps toward a lower bound during shrinking.
pub trait ShrinkStep: Sized {
    /// Candidates strictly between `lo` and `v` (plus `lo` itself),
    /// most aggressive first. Empty when `v` cannot move toward `lo`.
    fn shrink_toward(lo: &Self, v: &Self) -> Vec<Self>;
}

macro_rules! impl_shrink_step_int {
    ($($t:ty),*) => {$(
        impl ShrinkStep for $t {
            fn shrink_toward(lo: &Self, v: &Self) -> Vec<Self> {
                let (lo, v) = (*lo, *v);
                if v <= lo {
                    return Vec::new();
                }
                let mut out = vec![lo];
                let mid = lo + (v - lo) / 2;
                if mid != lo && mid != v {
                    out.push(mid);
                }
                if v - 1 != lo && v - 1 != mid {
                    out.push(v - 1);
                }
                out
            }
        }
    )*};
}

impl_shrink_step_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_shrink_step_noop {
    ($($t:ty),*) => {$(
        impl ShrinkStep for $t {
            fn shrink_toward(_lo: &Self, _v: &Self) -> Vec<Self> {
                Vec::new()
            }
        }
    )*};
}

impl_shrink_step_noop!(f32, f64);

impl<T: SampleUniform + ShrinkStep> Strategy for Range<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        rng.random_range(self.clone())
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        T::shrink_toward(&self.start, value)
    }
}

impl<T: SampleUniform + ShrinkStep> Strategy for RangeInclusive<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        rng.random_range(self.clone())
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        T::shrink_toward(self.start(), value)
    }
}

impl Strategy for () {
    type Value = ();

    fn sample(&self, _rng: &mut StdRng) {}
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+)
        where
            $($s::Value: Clone),+
        {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for candidate in self.$idx.shrink(&value.$idx) {
                        let mut v = value.clone();
                        v.$idx = candidate;
                        out.push(v);
                    }
                )+
                out
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
}

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;

    /// Proposes smaller variants of a failing value (see
    /// [`Strategy::shrink`]). Integers step toward zero.
    fn arbitrary_shrink(&self) -> Vec<Self> {
        Vec::new()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.random()
            }

            fn arbitrary_shrink(&self) -> Vec<Self> {
                let v = *self;
                if v == 0 {
                    return Vec::new();
                }
                let mut out = vec![0];
                let half = v / 2;
                if half != 0 && half != v {
                    out.push(half);
                }
                out
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_arbitrary_plain {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.random()
            }
        }
    )*};
}

impl_arbitrary_plain!(f32, f64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.random()
    }

    fn arbitrary_shrink(&self) -> Vec<Self> {
        if *self {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        value.arbitrary_shrink()
    }
}

/// Full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

pub mod sample {
    //! Index sampling, for picking an element of a runtime-sized
    //! collection.

    use super::{Arbitrary, StdRng};
    use rand::RngCore;

    /// An abstract index, concretized against a length via
    /// [`Index::index`].
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        /// Maps this abstract index into `0..len`.
        ///
        /// # Panics
        ///
        /// Panics if `len == 0`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "cannot index an empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut StdRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{StdRng, Strategy};
    use rand::RngExt;
    use std::ops::{Range, RangeInclusive};

    /// Admissible lengths for a generated collection (half-open).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            Self {
                lo: r.start,
                hi: r.end.max(r.start),
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            let (lo, hi) = r.into_inner();
            Self { lo, hi: hi + 1 }
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.hi > self.size.lo {
                rng.random_range(self.size.lo..self.size.hi)
            } else {
                self.size.lo
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }

        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let mut out = Vec::new();
            let lo = self.size.lo;
            // Structural shrinks first: shorter vectors (never below the
            // strategy's minimum length).
            if value.len() > lo {
                out.push(value[..lo].to_vec());
                let half = (value.len() / 2).max(lo);
                if half < value.len() && half > lo {
                    out.push(value[..half].to_vec());
                }
                out.push(value[..value.len() - 1].to_vec());
                out.push(value[1..].to_vec());
            }
            // Then elementwise shrinks, a couple of candidates per slot.
            for (i, v) in value.iter().enumerate() {
                for candidate in self.element.shrink(v).into_iter().take(2) {
                    let mut w = value.clone();
                    w[i] = candidate;
                    out.push(w);
                }
            }
            out
        }
    }

    /// A `Vec` whose length is drawn from `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    //! The glob-imported surface: `use proptest::prelude::*;`.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError,
    };

    /// Alias so `prop::sample::Index`-style paths resolve.
    pub use crate as prop;
}

/// Default generator seed when `EGRAPH_TEST_SEED` is not set.
const DEFAULT_SEED: u64 = 0xE6_2017_ECF5;

/// Maximum accepted shrink steps before reporting the current smallest
/// failing input (a budget, so pathological strategies cannot loop).
const MAX_SHRINK_STEPS: usize = 200;

fn runner_seed() -> u64 {
    match std::env::var("EGRAPH_TEST_SEED") {
        Ok(raw) => {
            let raw = raw.trim();
            let parsed = match raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
                Some(hex) => u64::from_str_radix(hex, 16),
                None => raw.parse::<u64>(),
            };
            parsed.unwrap_or(DEFAULT_SEED)
        }
        Err(_) => DEFAULT_SEED,
    }
}

/// Runs `cases` deterministic random draws of `strategy` through the
/// property body, shrinking the first failure to a minimal
/// counterexample. Used by the [`proptest!`] macro; not public API.
#[doc(hidden)]
pub fn __run_cases<S: Strategy>(
    cases: u32,
    strategy: &S,
    mut case: impl FnMut(&S::Value) -> Result<(), TestCaseError>,
) where
    S::Value: Clone + fmt::Debug,
{
    use rand::SeedableRng;
    let seed = runner_seed();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ran = 0u32;
    let mut attempts = 0u32;
    let max_attempts = cases.saturating_mul(16).max(64);
    while ran < cases && attempts < max_attempts {
        attempts += 1;
        let value = strategy.sample(&mut rng);
        match case(&value) {
            Ok(()) => ran += 1,
            Err(TestCaseError::Reject(_)) => {}
            Err(TestCaseError::Fail(msg)) => {
                let (minimal, msg, steps) = shrink_failure(strategy, &mut case, value, msg);
                panic!(
                    "property failed on case {ran} (seed {seed:#x}, shrunk {steps} step(s)): \
                     {msg}\nminimal failing input: {minimal:?}"
                );
            }
        }
    }
}

/// Greedily walks shrink candidates while they keep failing, up to
/// [`MAX_SHRINK_STEPS`] accepted steps. Rejected candidates (failed
/// assumptions) and passing candidates are skipped.
fn shrink_failure<S: Strategy>(
    strategy: &S,
    case: &mut impl FnMut(&S::Value) -> Result<(), TestCaseError>,
    mut current: S::Value,
    mut message: String,
) -> (S::Value, String, usize) {
    let mut steps = 0;
    'outer: while steps < MAX_SHRINK_STEPS {
        for candidate in strategy.shrink(&current) {
            if let Err(TestCaseError::Fail(msg)) = case(&candidate) {
                current = candidate;
                message = msg;
                steps += 1;
                continue 'outer;
            }
        }
        break; // no candidate still fails: `current` is minimal
    }
    (current, message, steps)
}

/// Declares property tests. Each `fn name(binding in strategy, ...)`
/// becomes a `#[test]` running the body over random samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )* ) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            // All arguments pack into one tuple strategy so a failing
            // case can be shrunk componentwise.
            let __strategy = ($(($strat),)*);
            $crate::__run_cases(config.cases, &__strategy, |__value| {
                let ($($arg,)*) = ::std::clone::Clone::clone(__value);
                $body
                Ok(())
            });
        }
    )*};
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond), file!(), line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "{} at {}:{}",
                format!($($fmt)*), file!(), line!()
            )));
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: {:?} != {:?} at {}:{}",
            left, right, file!(), line!()
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: {:?} == {:?} at {}:{}",
            left,
            right,
            file!(),
            line!()
        );
    }};
}

/// Skips the current case unless the assumption holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::catch_unwind;

    fn failure_message(f: impl FnOnce() + std::panic::UnwindSafe) -> String {
        let payload = catch_unwind(f).expect_err("property must fail");
        payload
            .downcast_ref::<String>()
            .cloned()
            .expect("panic payload is a String")
    }

    #[test]
    fn integer_failure_shrinks_to_the_boundary() {
        // Fails for every x >= 10: the minimal counterexample is
        // exactly 10, and greedy shrinking must find it.
        let msg = failure_message(|| {
            __run_cases(64, &((0u32..1000),), |&(x,)| {
                if x >= 10 {
                    Err(TestCaseError::fail(format!("{x} is too big")))
                } else {
                    Ok(())
                }
            });
        });
        assert!(
            msg.contains("minimal failing input: (10,)"),
            "expected the shrunk boundary value, got: {msg}"
        );
        assert!(msg.contains("seed"), "failure must log the seed: {msg}");
    }

    #[test]
    fn vector_failure_shrinks_length_and_elements() {
        let strategy = (collection::vec(0u32..100, 0..20),);
        let msg = failure_message(|| {
            __run_cases(64, &strategy, |(v,)| {
                if v.len() >= 3 {
                    Err(TestCaseError::fail(format!("len {}", v.len())))
                } else {
                    Ok(())
                }
            });
        });
        assert!(
            msg.contains("minimal failing input: ([0, 0, 0],)"),
            "expected a 3-element all-zero vector, got: {msg}"
        );
    }

    #[test]
    fn tuple_failure_shrinks_componentwise() {
        let strategy = (1u32..50, 1u32..50);
        let msg = failure_message(|| {
            __run_cases(64, &strategy, |&(a, b)| {
                if a + b >= 4 {
                    Err(TestCaseError::fail(format!("{a}+{b}")))
                } else {
                    Ok(())
                }
            });
        });
        // Both components bottom out at their range minimum of 1 while
        // the sum constraint keeps failing.
        assert!(
            msg.contains("minimal failing input: (1, 3)")
                || msg.contains("minimal failing input: (3, 1)")
                || msg.contains("minimal failing input: (2, 2)"),
            "expected a minimal sum-4 pair, got: {msg}"
        );
    }

    #[test]
    fn passing_properties_do_not_shrink() {
        __run_cases(32, &((0u64..100),), |_| Ok(()));
    }

    #[test]
    fn shrink_toward_respects_the_lower_bound() {
        assert!(u32::shrink_toward(&5, &5).is_empty());
        assert!(u32::shrink_toward(&5, &4).is_empty());
        let candidates = u32::shrink_toward(&5, &100);
        assert!(candidates.contains(&5));
        assert!(candidates.iter().all(|&c| (5..100).contains(&c)));
        assert!(i32::shrink_toward(&-10, &-3).contains(&-10));
    }
}

//! Offline stub of `proptest`.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro, `prop_assert*` / `prop_assume!`, [`Strategy`]
//! with `prop_map` / `prop_flat_map`, range and tuple strategies,
//! [`any`], [`collection::vec`] and [`sample::Index`]. Cases are drawn
//! from a deterministic seeded generator; failures report the case
//! number but are not shrunk.

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{RngExt, SampleUniform};

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the test fails.
    Fail(String),
    /// The case did not satisfy an assumption; it is skipped.
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds
    /// out of it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { base: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.base.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn sample(&self, rng: &mut StdRng) -> S2::Value {
        let inner = (self.f)(self.base.sample(rng));
        inner.sample(rng)
    }
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        rng.random_range(self.clone())
    }
}

impl<T: SampleUniform> Strategy for RangeInclusive<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        rng.random_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
}

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.random()
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f32, f64);

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

pub mod sample {
    //! Index sampling, for picking an element of a runtime-sized
    //! collection.

    use super::{Arbitrary, StdRng};
    use rand::RngCore;

    /// An abstract index, concretized against a length via
    /// [`Index::index`].
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        /// Maps this abstract index into `0..len`.
        ///
        /// # Panics
        ///
        /// Panics if `len == 0`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "cannot index an empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut StdRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{StdRng, Strategy};
    use rand::RngExt;
    use std::ops::{Range, RangeInclusive};

    /// Admissible lengths for a generated collection (half-open).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            Self {
                lo: r.start,
                hi: r.end.max(r.start),
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            let (lo, hi) = r.into_inner();
            Self { lo, hi: hi + 1 }
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.hi > self.size.lo {
                rng.random_range(self.size.lo..self.size.hi)
            } else {
                self.size.lo
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A `Vec` whose length is drawn from `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    //! The glob-imported surface: `use proptest::prelude::*;`.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError,
    };

    /// Alias so `prop::sample::Index`-style paths resolve.
    pub use crate as prop;
}

/// Runs `cases` deterministic random cases of a property body. Used by
/// the [`proptest!`] macro; not public API.
#[doc(hidden)]
pub fn __run_cases(cases: u32, mut case: impl FnMut(&mut StdRng) -> Result<(), TestCaseError>) {
    use rand::SeedableRng;
    // Fixed seed: failures reproduce across runs; no shrinking.
    let mut rng = StdRng::seed_from_u64(0xE6_2017_ECF5);
    let mut ran = 0u32;
    let mut attempts = 0u32;
    let max_attempts = cases.saturating_mul(16).max(64);
    while ran < cases && attempts < max_attempts {
        attempts += 1;
        match case(&mut rng) {
            Ok(()) => ran += 1,
            Err(TestCaseError::Reject(_)) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!("property failed on case {ran}: {msg}");
            }
        }
    }
}

/// Declares property tests. Each `fn name(binding in strategy, ...)`
/// becomes a `#[test]` running the body over random samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )* ) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::__run_cases(config.cases, |__rng| {
                $(let $arg = $crate::Strategy::sample(&($strat), __rng);)*
                $body
                Ok(())
            });
        }
    )*};
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond), file!(), line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "{} at {}:{}",
                format!($($fmt)*), file!(), line!()
            )));
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: {:?} != {:?} at {}:{}",
            left, right, file!(), line!()
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: {:?} == {:?} at {}:{}",
            left,
            right,
            file!(),
            line!()
        );
    }};
}

/// Skips the current case unless the assumption holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

//! Offline stub of `serde_derive`: the `Serialize` / `Deserialize`
//! derives accept any input (including `#[serde(...)]` attributes) and
//! expand to nothing. The stub `serde` crate provides blanket trait
//! impls, so deriving types still satisfy `T: Serialize` bounds.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

//! Offline stub of `bytes`: the [`Buf`] / [`BufMut`] traits implemented
//! for `&[u8]` and `Vec<u8>`, covering the little-endian accessors this
//! workspace uses.

/// Read access to a contiguous buffer, consuming from the front.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// Advances the read cursor by `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Copies `dst.len()` bytes out of the buffer, advancing past them.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_le_bytes(self.get_u32_le().to_le_bytes())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        let (head, rest) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = rest;
    }
}

/// Write access to a growable buffer, appending at the back.
pub trait BufMut {
    /// Appends a byte slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_little_endian() {
        let mut buf = Vec::new();
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(42);
        buf.put_f32_le(1.5);
        let mut r: &[u8] = &buf;
        assert_eq!(r.remaining(), 16);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 42);
        assert_eq!(r.get_f32_le(), 1.5);
        assert_eq!(r.remaining(), 0);
    }
}

//! Offline stub of `rand`.
//!
//! Provides a deterministic [`rngs::StdRng`] (xoshiro256++ seeded via
//! SplitMix64) plus the [`SeedableRng`] / [`RngCore`] / [`RngExt`]
//! traits covering the calls this workspace makes: `seed_from_u64`,
//! `random::<T>()` and `random_range(range)`. Streams differ from the
//! real crate, which is fine — callers only rely on determinism per
//! seed and reasonable statistical quality.

use std::ops::{Range, RangeInclusive};

pub mod rngs {
    /// A deterministic pseudo-random generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

use rngs::StdRng;

/// Types constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, the canonical xoshiro seeding routine.
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }
}

/// The core generator interface.
pub trait RngCore {
    /// Produces the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Produces the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Types a generator can produce uniformly over their full domain (or
/// `[0, 1)` for floats).
pub trait StandardUniform: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardUniform for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardUniform for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types samplable uniformly from a sub-range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;

    /// Draws from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty sample range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty sample range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty sample range");
                lo + <$t as StandardUniform>::sample_standard(rng) * (hi - lo)
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                Self::sample_half_open(rng, lo, hi)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Range forms accepted by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Convenience sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait RngExt: RngCore {
    /// Draws a value uniformly over `T`'s full domain (`[0, 1)` for
    /// floats).
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn random_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Draws `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Legacy alias kept for code written against older rand APIs.
pub use RngExt as Rng;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for i in 1usize..200 {
            let v = rng.random_range(0..i);
            assert!(v < i);
            let w = rng.random_range(0..=i);
            assert!(w <= i);
            let f: f32 = rng.random_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mean: f64 = (0..10_000).map(|_| rng.random::<f64>()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }
}

//! Offline stub of `crossbeam`: the `deque` module ([`deque::Worker`],
//! [`deque::Stealer`], [`deque::Injector`], [`deque::Steal`]) backed by
//! mutex-protected `VecDeque`s. Semantics match the real crate (owner
//! pops LIFO, thieves steal FIFO); throughput is lower, which only
//! matters for benchmarks, not correctness.

pub mod deque {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex, PoisonError};

    /// Outcome of a steal attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The queue was observed empty.
        Empty,
        /// One task was stolen.
        Success(T),
        /// The attempt lost a race and should be retried.
        Retry,
    }

    /// A worker-owned deque: the owner pushes and pops LIFO at the
    /// back, thieves steal FIFO from the front.
    pub struct Worker<T> {
        shared: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        /// Creates a LIFO worker deque.
        pub fn new_lifo() -> Self {
            Self {
                shared: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        /// Creates a FIFO worker deque. The stub's owner still pops at
        /// the back; no workspace code relies on FIFO owner order.
        pub fn new_fifo() -> Self {
            Self::new_lifo()
        }

        /// Pushes a task onto the owner end.
        pub fn push(&self, task: T) {
            self.shared
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push_back(task);
        }

        /// Pops a task from the owner end (LIFO).
        pub fn pop(&self) -> Option<T> {
            self.shared
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .pop_back()
        }

        /// Whether the deque is currently empty.
        pub fn is_empty(&self) -> bool {
            self.shared
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .is_empty()
        }

        /// Creates a stealer handle onto this deque.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    /// A handle that steals from the front of a [`Worker`]'s deque.
    pub struct Stealer<T> {
        shared: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Stealer<T> {
        /// Attempts to steal the oldest task.
        pub fn steal(&self) -> Steal<T> {
            match self
                .shared
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .pop_front()
            {
                Some(task) => Steal::Success(task),
                None => Steal::Empty,
            }
        }
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    /// A shared FIFO injector queue all workers push into and drain.
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Injector<T> {
        /// Creates an empty injector.
        pub fn new() -> Self {
            Self {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        /// Enqueues a task.
        pub fn push(&self, task: T) {
            self.queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push_back(task);
        }

        /// Attempts to dequeue the oldest task.
        pub fn steal(&self) -> Steal<T> {
            match self
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .pop_front()
            {
                Some(task) => Steal::Success(task),
                None => Steal::Empty,
            }
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .is_empty()
        }
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn owner_pops_lifo_thief_steals_fifo() {
            let w = Worker::new_lifo();
            let s = w.stealer();
            w.push(1);
            w.push(2);
            w.push(3);
            assert_eq!(s.steal(), Steal::Success(1));
            assert_eq!(w.pop(), Some(3));
            assert_eq!(w.pop(), Some(2));
            assert_eq!(w.pop(), None);
            assert_eq!(s.steal(), Steal::Empty);
        }

        #[test]
        fn injector_is_fifo() {
            let inj = Injector::new();
            inj.push('a');
            inj.push('b');
            assert_eq!(inj.steal(), Steal::Success('a'));
            assert_eq!(inj.steal(), Steal::Success('b'));
            assert_eq!(inj.steal(), Steal::Empty);
        }
    }
}

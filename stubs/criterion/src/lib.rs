//! Offline stub of `criterion`.
//!
//! Keeps the bench sources compiling and runnable: every benchmark
//! closure is executed a fixed small number of iterations and the mean
//! wall time is printed as `bench <name> ... <time>`. There is no
//! statistical analysis, warm-up, or HTML report. Under `cargo test`
//! (harness = false) the benches therefore finish quickly.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Iterations per benchmark. One timed pass keeps `cargo test` cheap
/// while still catching panics and gross regressions.
const STUB_ITERS: u64 = 1;

/// Measurement driver handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f`, running it a fixed number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Throughput annotation attached to a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier composed of a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id `"{name}/{parameter}"`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Creates an id from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// Conversion accepted wherever criterion takes a benchmark name.
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Builder-style no-op kept for config compatibility.
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Builder-style no-op kept for config compatibility.
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        run_one(None, id.into_id(), f);
        self
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Records the group's throughput annotation (ignored by the stub).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Sets the sample count (ignored by the stub).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the measurement time (ignored by the stub).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        run_one(Some(&self.name), id.into_id(), f);
        self
    }

    /// Runs one benchmark that borrows an input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Closes the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(group: Option<&str>, id: String, mut f: F) {
    let mut bencher = Bencher {
        iters: STUB_ITERS,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed.as_secs_f64() / STUB_ITERS as f64;
    match group {
        Some(g) => println!("bench {g}/{id} ... {:.6} s/iter", per_iter),
        None => println!("bench {id} ... {:.6} s/iter", per_iter),
    }
}

/// Declares a group function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
